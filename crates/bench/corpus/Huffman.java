// Huffman code construction over byte frequencies (heap + tree code).
class HNode {
    int freq;
    int symbol;   // -1 for internal
    HNode left; HNode right;
    HNode(int freq, int symbol, HNode left, HNode right) {
        this.freq = freq; this.symbol = symbol; this.left = left; this.right = right;
    }
}

class Heap {
    HNode[] items;
    int size;
    Heap(int cap) { items = new HNode[cap]; }

    void push(HNode n) {
        int i = size++;
        items[i] = n;
        while (i > 0) {
            int p = (i - 1) / 2;
            if (items[p].freq <= items[i].freq) break;
            HNode t = items[p]; items[p] = items[i]; items[i] = t;
            i = p;
        }
    }

    HNode pop() {
        HNode top = items[0];
        size--;
        items[0] = items[size];
        int i = 0;
        while (true) {
            int l = 2 * i + 1; int r = l + 1; int m = i;
            if (l < size && items[l].freq < items[m].freq) m = l;
            if (r < size && items[r].freq < items[m].freq) m = r;
            if (m == i) break;
            HNode t = items[m]; items[m] = items[i]; items[i] = t;
            i = m;
        }
        return top;
    }
}

class Huffman {
    static void depths(HNode n, int d, int[] out) {
        if (n.symbol >= 0) { out[n.symbol] = d; return; }
        depths(n.left, d + 1, out);
        depths(n.right, d + 1, out);
    }

    static int main() {
        String text = "this is an example of a huffman tree built over a short text "
                    + "with skewed letter frequencies eeeeeeeee tttttt aaaa";
        int[] freq = new int[128];
        for (int i = 0; i < text.length(); i++) freq[text.charAt(i)]++;
        Heap heap = new Heap(256);
        int alphabet = 0;
        for (int s = 0; s < 128; s++) {
            if (freq[s] > 0) { heap.push(new HNode(freq[s], s, null, null)); alphabet++; }
        }
        while (heap.size > 1) {
            HNode a = heap.pop();
            HNode b = heap.pop();
            heap.push(new HNode(a.freq + b.freq, -1, a, b));
        }
        HNode root = heap.pop();
        int[] depth = new int[128];
        depths(root, 0, depth);
        long bits = 0;
        for (int s = 0; s < 128; s++) bits += (long) freq[s] * depth[s];
        Sys.println(alphabet);
        Sys.println(bits);
        boolean better = bits < (long) text.length() * 7;
        Sys.println(better);
        return alphabet * 1000 + (int) (bits % 1000);
    }
}
