// Exception-heavy control flow: custom hierarchies, rethrow, finally
// (exercises the try/catch lowering and the handler phi machinery).
class AppError extends Exception {
    int code;
    AppError(int code) { super("app"); this.code = code; }
}
class Fatal extends AppError {
    Fatal(int code) { super(code); }
}

class Exceptions {
    static int risky(int mode, int[] data) {
        if (mode == 0) return data[100];            // bounds
        if (mode == 1) return 10 / (mode - 1);      // arithmetic
        if (mode == 2) { int[] x = null; return x[0]; } // null
        if (mode == 3) throw new AppError(33);
        if (mode == 4) throw new Fatal(44);
        return data[mode];
    }

    static int shielded(int mode, int[] data) {
        int out = 0;
        try {
            out = risky(mode, data);
        } catch (Fatal f) {
            out = 4000 + f.code;
        } catch (AppError a) {
            out = 3000 + a.code;
        } catch (IndexOutOfBoundsException e) {
            out = 1000;
        } catch (ArithmeticException e) {
            out = 1100;
        } catch (NullPointerException e) {
            out = 1200;
        } finally {
            out += 7;
        }
        return out;
    }

    static int nested(int depth) {
        try {
            if (depth == 0) throw new AppError(depth);
            return nested(depth - 1) + 1;
        } catch (AppError e) {
            if (depth < 3) throw new AppError(e.code + 100);
            return e.code;
        }
    }

    static int main() {
        int[] data = new int[8];
        for (int i = 0; i < 8; i++) data[i] = i * 11;
        int total = 0;
        for (int mode = 0; mode <= 5; mode++) {
            int r = shielded(mode, data);
            Sys.println(r);
            total += r;
        }
        int n;
        try { n = nested(6); } catch (AppError e) { n = -e.code; }
        Sys.println(n);
        return total + n;
    }
}
