// Bit-packed sieve of Eratosthenes (the paper's sun.math.BitSieve).
class BitSieve {
    long[] bits;
    int length;

    BitSieve(int n) {
        length = n;
        bits = new long[(n >> 6) + 1];
    }

    boolean get(int i) { return (bits[i >> 6] & (1L << (i & 63))) != 0; }
    void set(int i) { bits[i >> 6] |= 1L << (i & 63); }

    int sieve() {
        int count = 0;
        for (int i = 2; i < length; i++) {
            if (!get(i)) {
                count++;
                for (long j = (long) i * i; j < length; j += i) set((int) j);
            }
        }
        return count;
    }

    static int main() {
        BitSieve s = new BitSieve(20000);
        int primes = s.sieve();
        Sys.println(primes);
        int check = 0;
        for (int i = 19900; i < 20000; i++) if (!s.get(i)) check++;
        Sys.println(check);
        return primes + check;
    }
}
