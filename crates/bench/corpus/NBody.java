// Planar n-body integration (double-precision field arithmetic).
class Body {
    double x; double y;
    double vx; double vy;
    double mass;
    Body(double x, double y, double vx, double vy, double mass) {
        this.x = x; this.y = y; this.vx = vx; this.vy = vy; this.mass = mass;
    }
}

class NBody {
    Body[] bodies;

    NBody(int n) {
        bodies = new Body[n];
        int seed = 17;
        for (int i = 0; i < n; i++) {
            seed = seed * 1103515245 + 12345;
            double px = ((seed >>> 8) % 1000) / 100.0 - 5.0;
            seed = seed * 1103515245 + 12345;
            double py = ((seed >>> 8) % 1000) / 100.0 - 5.0;
            bodies[i] = new Body(px, py, 0.0, 0.0, 1.0 + i % 3);
        }
    }

    void step(double dt) {
        for (int i = 0; i < bodies.length; i++) {
            Body a = bodies[i];
            double fx = 0.0; double fy = 0.0;
            for (int j = 0; j < bodies.length; j++) {
                if (i == j) continue;
                Body b = bodies[j];
                double dx = b.x - a.x;
                double dy = b.y - a.y;
                double d2 = dx * dx + dy * dy + 0.01;
                double inv = b.mass / (d2 * Math.sqrt(d2));
                fx += dx * inv;
                fy += dy * inv;
            }
            a.vx += fx * dt;
            a.vy += fy * dt;
        }
        for (int i = 0; i < bodies.length; i++) {
            Body a = bodies[i];
            a.x += a.vx * dt;
            a.y += a.vy * dt;
        }
    }

    double energy() {
        double e = 0.0;
        for (int i = 0; i < bodies.length; i++) {
            Body a = bodies[i];
            e += 0.5 * a.mass * (a.vx * a.vx + a.vy * a.vy);
        }
        return e;
    }

    static int main() {
        NBody sim = new NBody(24);
        for (int s = 0; s < 50; s++) sim.step(0.01);
        double e = sim.energy();
        boolean sane = e > 0.0 && e < 1e9;
        Sys.println(sane);
        return sane ? (int) (e * 100.0) % 100000 : -1;
    }
}
