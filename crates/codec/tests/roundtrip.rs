//! Codec round-trip and tamper-resistance tests.

use safetsa_codec::{decode_and_verify, decode_module, encode_module, HostEnv};
use safetsa_core::verify::verify_module;
use safetsa_frontend::compile;
use safetsa_rt::Value;
use safetsa_ssa::lower_program;
use safetsa_vm::Vm;

fn encode(src: &str) -> (safetsa_core::Module, Vec<u8>) {
    let prog = compile(src).expect("front-end");
    let lowered = lower_program(&prog).expect("lowering");
    verify_module(&lowered.module).expect("verifies");
    let bytes = encode_module(&lowered.module).expect("encodes");
    (lowered.module, bytes)
}

fn run(m: &safetsa_core::Module, entry: &str) -> (Option<Value>, String) {
    let mut vm = Vm::load(m).expect("loads");
    vm.set_fuel(50_000_000);
    let r = vm.run_entry(entry).expect("runs");
    (r, vm.output.text().to_string())
}

/// Round-trips and checks the decoded module runs identically.
fn round_trip(src: &str, entry: &str) {
    let (original, bytes) = encode(src);
    let host = HostEnv::standard();
    let decoded = decode_and_verify(&bytes, &host)
        .unwrap_or_else(|e| panic!("decode failed: {e}\nsource: {src}"));
    let a = run(&original, entry);
    let b = run(&decoded, entry);
    assert_eq!(a.1, b.1, "output differs after round trip");
    match (a.0, b.0) {
        (Some(x), Some(y)) => assert!(x.bits_eq(y), "{x:?} vs {y:?}"),
        (None, None) => {}
        other => panic!("result mismatch {other:?}"),
    }
    // Re-encoding the decoded module reproduces the byte stream
    // (canonical form).
    let bytes2 = encode_module(&decoded).expect("encodes");
    assert_eq!(bytes, bytes2, "re-encoding is not canonical");
}

#[test]
fn straight_line() {
    round_trip(
        "class A { static int main() { int a = 3; int b = 4; return a * a + b * b; } }",
        "A.main",
    );
}

#[test]
fn control_flow() {
    round_trip(
        "class A { static int main() {
             int s = 0;
             for (int i = 0; i < 10; i++) { if (i % 2 == 0) continue; s += i; }
             while (s < 100) s *= 2;
             do { s--; } while (s % 10 != 0);
             return s;
         } }",
        "A.main",
    );
}

#[test]
fn objects_arrays_strings() {
    round_trip(
        r#"class Point {
               int x; int y;
               Point(int x, int y) { this.x = x; this.y = y; }
               int norm1() { return Math.abs(x) + Math.abs(y); }
           }
           class Main { static int main() {
               Point[] ps = new Point[4];
               for (int i = 0; i < ps.length; i++) ps[i] = new Point(i, -i * 2);
               int s = 0;
               for (int i = 0; i < ps.length; i++) s += ps[i].norm1();
               Sys.println("sum=" + s);
               return s;
           } }"#,
        "Main.main",
    );
}

#[test]
fn exceptions_and_dispatch() {
    round_trip(
        r#"class Base { int f() { return 1; } }
           class Derived extends Base { int f() { return 2; } }
           class Main {
               static int main() {
                   Base b = new Derived();
                   int r = b.f() * 100;
                   try { r += 10 / (b.f() - 2); }
                   catch (ArithmeticException e) { r += 7; }
                   return r;
               }
           }"#,
        "Main.main",
    );
}

#[test]
fn statics_and_clinit() {
    round_trip(
        "class C { static int X = 5; static int[] T = {1, 2, 3};
                   static int main() { return X * T[2]; } }",
        "C.main",
    );
}

#[test]
fn long_double_consts() {
    round_trip(
        r#"class A { static double main() {
            long big = 0x0123456789ABCDEFL;
            double d = 2.718281828459045;
            float f = 1.5f;
            char c = '€';
            Sys.println(big); Sys.println(d); Sys.println((int) c);
            return d * f;
        } }"#,
        "A.main",
    );
}

#[test]
fn optimized_module_round_trips() {
    let src = "class P { int a; int b;
                 static int f(P p) { return p.a + p.b + p.a + p.b; }
                 static int main() { P p = new P(); p.a = 3; p.b = 9; return f(p); } }";
    let prog = compile(src).unwrap();
    let lowered = lower_program(&prog).unwrap();
    let mut module = lowered.module;
    safetsa_opt::optimize_module(&mut module);
    verify_module(&module).unwrap();
    let bytes = encode_module(&module).expect("encodes");
    let host = HostEnv::standard();
    let decoded = decode_and_verify(&bytes, &host).expect("optimized module decodes");
    // The transported program retains the optimization: check counts
    // survive the round trip exactly.
    let count = |m: &safetsa_core::Module| {
        m.functions
            .iter()
            .map(|f| f.count_instrs(|i| matches!(i, safetsa_core::instr::Instr::NullCheck { .. })))
            .sum::<usize>()
    };
    assert_eq!(count(&module), count(&decoded));
    let a = run(&module, "P.main");
    let b = run(&decoded, "P.main");
    assert_eq!(a, b);
}

#[test]
fn compactness_vs_baseline() {
    // §8/Figure 5: SafeTSA is no more voluminous than class files.
    let src = r#"
        class Linpackish {
            static double[] make(int n) {
                double[] v = new double[n];
                for (int i = 0; i < n; i++) v[i] = i * 0.25 - 3.0;
                return v;
            }
            static double daxpy(int n, double a, double[] x, double[] y) {
                double s = 0.0;
                for (int i = 0; i < n; i++) { y[i] += a * x[i]; s += y[i]; }
                return s;
            }
            static int main() {
                double[] x = make(64);
                double[] y = make(64);
                double r = daxpy(64, 1.5, x, y);
                return (int) r;
            }
        }
    "#;
    let (module, bytes) = encode(src);
    let prog = compile(src).unwrap();
    let mut code = safetsa_baseline::compile::compile_program(&prog);
    safetsa_baseline::verify::verify_program(&prog, &mut code).unwrap();
    let class_bytes = safetsa_baseline::classfile::total_size(&prog, &code);
    // The shape claim, not an exact ratio: same order of magnitude and
    // typically smaller.
    assert!(
        bytes.len() < class_bytes * 2,
        "SafeTSA {} vs classfile {}",
        bytes.len(),
        class_bytes
    );
    let _ = module;
}

// ------------------------------------------------------ tamper tests

#[test]
fn truncation_rejected() {
    let (_, bytes) = encode("class A { static int main() { return 1 + 2; } }");
    let host = HostEnv::standard();
    for cut in [1, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            decode_and_verify(&bytes[..cut], &host).is_err(),
            "truncation at {cut} accepted"
        );
    }
}

#[test]
fn bad_magic_rejected() {
    let (_, mut bytes) = encode("class A { static int main() { return 1; } }");
    bytes[0] ^= 0xFF;
    let host = HostEnv::standard();
    assert!(decode_module(&bytes, &host).is_err());
}

#[test]
fn bit_flips_never_yield_unsafe_modules() {
    // The central tamper-resistance property: every single-bit mutation
    // either fails to decode, or decodes to a module that still passes
    // the full verifier (i.e. is a *different but type-safe* program).
    // A mutation can NEVER produce an accepted unsafe program.
    let (_, bytes) = encode(
        "class Acc { int total;
             void add(int x) { total += x; }
         }
         class A { static int main() {
             Acc a = new Acc();
             for (int i = 0; i < 5; i++) a.add(i * i);
             int[] buf = new int[4];
             buf[2] = a.total;
             return buf[2];
         } }",
    );
    let host = HostEnv::standard();
    let total_bits = bytes.len() * 8;
    // Flip a spread of bits (every 7th) to keep the test fast while
    // covering all stream regions.
    let mut decoded_ok = 0;
    let mut rejected = 0;
    for bit in (0..total_bits).step_by(7) {
        let mut mutated = bytes.clone();
        mutated[bit / 8] ^= 1 << (7 - bit % 8);
        match decode_and_verify(&mutated, &host) {
            Ok(_) => decoded_ok += 1,
            Err(_) => rejected += 1,
        }
    }
    // Most flips must be rejected; any accepted one passed the full
    // verifier (checked inside decode_and_verify).
    assert!(rejected > 0, "no mutation was rejected?");
    // Document the ratio for the curious.
    println!("tamper: {rejected} rejected, {decoded_ok} accepted-but-verified");
}

#[test]
fn byte_corruption_never_panics() {
    let (_, bytes) = encode(
        "class A { static int main() { int s = 0; for (int i = 0; i < 3; i++) s += i; return s; } }",
    );
    let host = HostEnv::standard();
    // Zero out / max out whole bytes.
    for i in 0..bytes.len() {
        for val in [0x00u8, 0xFF, 0xA5] {
            let mut m = bytes.clone();
            m[i] = val;
            let _ = decode_and_verify(&m, &host); // must not panic
        }
    }
}

#[test]
fn wrong_host_class_count_rejected() {
    let (_, bytes) = encode("class A { static int main() { return 0; } }");
    let mut host = HostEnv::standard();
    // Add a phantom host class: the module no longer matches.
    host.types.declare_class(safetsa_core::types::ClassInfo {
        name: "Phantom".into(),
        superclass: None,
        fields: vec![],
        methods: vec![],
        imported: true,
    });
    assert!(decode_module(&bytes, &host).is_err());
}

#[test]
fn size_report_sanity() {
    // Encoded size grows with program size but stays lean.
    let small = encode("class A { static int main() { return 1; } }").1;
    let large = encode(
        "class A { static int main() {
             int s = 0;
             for (int i = 0; i < 10; i++)
                 for (int j = 0; j < 10; j++)
                     if ((i ^ j) % 3 == 0) s += i * j; else s -= j;
             return s;
         } }",
    )
    .1;
    assert!(large.len() > small.len());
    assert!(
        small.len() < 400,
        "tiny program stays tiny: {}",
        small.len()
    );
}

/// A function section encoded standalone, decoded against a *fresh*
/// lowering's type table, spliced in, and re-encoded as part of the
/// whole module is byte-identical to encoding the original module —
/// the invariant the driver's incremental store reassembly relies on.
#[test]
fn function_section_splice_is_byte_identical() {
    use safetsa_codec::{decode_function_section, encode_function_section};
    let src = "class Shape {
        int w; int h;
        int area() { return w * h; }
        int perimeter() { return 2 * (w + h); }
        static int main() {
            Shape s = new Shape();
            s.w = 3; s.h = 4;
            int[] xs = new int[5];
            int acc = 0;
            for (int i = 0; i < 5; i++) { xs[i] = s.area() + i; }
            for (int i = 0; i < 5; i++) { if (xs[i] % 2 == 0) acc += xs[i]; }
            try { acc += 100 / (acc - acc); } catch (Throwable t) { acc += s.perimeter(); }
            return acc;
        }
    }";
    let prog = compile(src).expect("front-end");
    let fresh = lower_program(&prog).expect("lowering").module;
    let mut cold = fresh.clone();
    safetsa_opt::optimize_module(&mut cold);
    let cold_bytes = encode_module(&cold).expect("encodes");

    let mut warm = fresh;
    let sites: Vec<_> = warm
        .types
        .classes()
        .flat_map(|(cid, c)| {
            c.methods
                .iter()
                .enumerate()
                .filter_map(move |(mi, m)| m.body.map(|fid| (cid, mi, fid as usize)))
        })
        .collect();
    assert!(sites.len() >= 3, "multi-method fixture");
    for (cid, mi, fid) in sites {
        let (bytes, sec) =
            encode_function_section(&cold.types, &cold.functions[fid]).expect("section encodes");
        assert_eq!(sec.functions, 1);
        let f = decode_function_section(&bytes, &mut warm.types, cid, mi)
            .unwrap_or_else(|e| panic!("section decode failed: {e}"));
        warm.functions[fid] = f;
    }
    verify_module(&warm).expect("spliced module verifies");
    assert_eq!(
        encode_module(&warm).expect("encodes"),
        cold_bytes,
        "spliced re-encode differs from cold build"
    );
}
