//! The SafeTSA encoder: externalizes a module in the three phases of
//! §7 — (1) the Control Structure Tree as a sequence of grammar
//! productions, (2) the instruction stream of each block in the fixed
//! CST-derived order, (3) the phi operands, which may reference
//! forward and are therefore postponed.

use crate::bits::BitWriter;
use crate::layout::{CstTag, Opc, CST_TAGS, MAGIC, OPCODES, VERSION};
use crate::refs::{write_ref, write_type};
use safetsa_core::cfg::{Cfg, EdgeKind};
use safetsa_core::cst::Cst;
use safetsa_core::dom::DomTree;
use safetsa_core::function::Function;
use safetsa_core::instr::Instr;
use safetsa_core::module::Module;
use safetsa_core::primops;
use safetsa_core::types::{FieldRef, MethodKind, MethodRef, TypeKind, TypeTable};
use safetsa_core::value::{BlockId, Literal, ValueId};

/// A module handed to [`encode_module`] was not in the verified shape
/// the encoder requires. Producers that verify before encoding never
/// see these; they exist so a buggy or hostile producer pipeline gets a
/// structured error instead of a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// A function body is not a well-formed CFG.
    UnverifiedFunction(String),
    /// Imported (consumer-generated) classes must precede every
    /// transmitted class.
    ImportedNotPrefix,
    /// A transmitted class has no superclass (only the imported root
    /// `Object` may omit one).
    RootClassTransmitted(String),
    /// An instruction's operand planes could not be derived.
    MalformedInstruction(String),
    /// An operand does not dominate the block that uses it — exactly
    /// the property the `(l, r)` reference coding cannot express.
    OperandNotDominating {
        /// The operand value.
        value: ValueId,
        /// The block containing the use.
        block: BlockId,
    },
    /// An operand is not visible on its type plane at the use site.
    OperandNotVisible {
        /// The operand value.
        value: ValueId,
        /// The block containing the use.
        block: BlockId,
    },
    /// A phi lacks an argument for one of its incoming edges.
    PhiMissingEdge {
        /// The block whose phi is incomplete.
        block: BlockId,
    },
    /// `return v` inside a function declared without a return type.
    MissingReturnType,
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::UnverifiedFunction(s) => write!(f, "unverified function: {s}"),
            EncodeError::ImportedNotPrefix => {
                write!(f, "imported classes must form a prefix")
            }
            EncodeError::RootClassTransmitted(name) => {
                write!(f, "transmitted class {name} has no superclass")
            }
            EncodeError::MalformedInstruction(s) => write!(f, "malformed instruction: {s}"),
            EncodeError::OperandNotDominating { value, block } => {
                write!(f, "operand {value} does not dominate {block}")
            }
            EncodeError::OperandNotVisible { value, block } => {
                write!(f, "operand {value} not visible on its plane in {block}")
            }
            EncodeError::PhiMissingEdge { block } => {
                write!(f, "phi in {block} does not cover all incoming edges")
            }
            EncodeError::MissingReturnType => {
                write!(f, "return value in a void function")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Bit-exact breakdown of one encoded module by wire-format section,
/// the substrate for the paper's encoding-size comparison (Figure 5):
/// where the bytes go, not just how many there are.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sections {
    /// Magic, version, module name, and class counts.
    pub header_bits: u64,
    /// Transmitted class declarations (names, supers, fields, method
    /// signatures) — the type table.
    pub type_table_bits: u64,
    /// Per-function constant pools.
    pub const_pool_bits: u64,
    /// Phase 1: the Control Structure Tree as grammar productions.
    pub cst_bits: u64,
    /// Phase 2a: opcodes, operand types, and member references.
    pub instr_bits: u64,
    /// Phase 2b: dominator-relative `(l, r)` operand references — the
    /// per-type register planes.
    pub operand_ref_bits: u64,
    /// Phase 2c: CST-held value references (conditions, returns,
    /// throws).
    pub cst_ref_bits: u64,
    /// Phase 3: phi operand references.
    pub phi_ref_bits: u64,
    /// Function bodies encoded.
    pub functions: u64,
    /// Final stream length in bytes (including the zero padding of the
    /// last partial byte, which is why this can exceed
    /// `total_bits() / 8`).
    pub total_bytes: u64,
}

impl Sections {
    /// Sum of all section bit counts.
    pub fn total_bits(&self) -> u64 {
        self.header_bits
            + self.type_table_bits
            + self.const_pool_bits
            + self.cst_bits
            + self.instr_bits
            + self.operand_ref_bits
            + self.cst_ref_bits
            + self.phi_ref_bits
    }
}

/// Encodes a module into its wire form.
///
/// The module must verify (`safetsa_core::verify::verify_module`).
///
/// # Errors
///
/// Returns [`EncodeError`] when the module is not in verified shape —
/// the encoder refuses to emit garbage.
pub fn encode_module(m: &Module) -> Result<Vec<u8>, EncodeError> {
    encode_sections(m).map(|(bytes, _)| bytes)
}

/// [`encode_module`] returning the per-section bit breakdown alongside
/// the stream. The accounting is a handful of position reads per
/// function, so it is always on.
///
/// # Errors
///
/// Returns [`EncodeError`] when the module is not in verified shape.
pub fn encode_sections(m: &Module) -> Result<(Vec<u8>, Sections), EncodeError> {
    let mut w = BitWriter::new();
    let mut sec = Sections::default();
    w.bits(MAGIC as u64, 32);
    w.bits(VERSION as u64, 8);
    w.string(&m.name);
    let n_classes = m.types.class_count();
    let n_builtin = m.types.classes().take_while(|(_, c)| c.imported).count();
    // Imported classes must form a prefix (they are generated by the
    // consumer and never transmitted).
    if !m.types.classes().skip(n_builtin).all(|(_, c)| !c.imported) {
        return Err(EncodeError::ImportedNotPrefix);
    }
    w.gamma(n_classes as u64);
    w.gamma(n_builtin as u64);
    sec.header_bits = w.bit_len() as u64;
    for (_, class) in m.types.classes().skip(n_builtin) {
        w.string(&class.name);
        let sup = class
            .superclass
            .ok_or_else(|| EncodeError::RootClassTransmitted(class.name.clone()))?
            .0;
        w.symbol(sup, n_classes as u32);
        w.gamma(class.fields.len() as u64);
        for f in &class.fields {
            w.string(&f.name);
            write_type(&mut w, &m.types, f.ty);
            w.bits(u64::from(f.is_static), 1);
        }
        w.gamma(class.methods.len() as u64);
        for method in &class.methods {
            w.string(&method.name);
            w.gamma(method.params.len() as u64);
            for p in &method.params {
                write_type(&mut w, &m.types, *p);
            }
            match method.ret {
                None => w.bits(0, 1),
                Some(r) => {
                    w.bits(1, 1);
                    write_type(&mut w, &m.types, r);
                }
            }
            let kind = match method.kind {
                MethodKind::Static => 0,
                MethodKind::Virtual => 1,
                MethodKind::Special => 2,
            };
            w.symbol(kind, crate::layout::METHOD_KINDS);
            w.bits(u64::from(method.body.is_some()), 1);
        }
    }
    sec.type_table_bits = w.bit_len() as u64 - sec.header_bits;
    // Function bodies in (class, method) order.
    let mut wtypes = m.types.clone();
    for (_, class) in m.types.classes() {
        for method in &class.methods {
            if let Some(body) = method.body {
                let f = &m.functions[body as usize];
                encode_function(&mut w, &mut wtypes, f, &mut sec)?;
                sec.functions += 1;
            }
        }
    }
    let bytes = w.into_bytes();
    sec.total_bytes = bytes.len() as u64;
    Ok((bytes, sec))
}

/// Encodes one function body as a standalone section: exactly the bits
/// [`encode_sections`] emits for the same function inside a module
/// stream, padded to a byte boundary.
///
/// The per-function encoding is *structural*: it consults the type
/// table only through class identities, class layouts (field/method
/// counts, signatures), and the total class count — never through
/// interning order — so a section encoded against one table re-encodes
/// bit-identically against any table with the same classes. This is
/// what lets the incremental store keep per-method sections and the
/// driver splice reused methods into freshly built modules (see
/// DESIGN.md, "Incremental compilation").
///
/// # Errors
///
/// Returns [`EncodeError`] when the function is not in verified shape.
pub fn encode_function_section(
    types: &TypeTable,
    f: &Function,
) -> Result<(Vec<u8>, Sections), EncodeError> {
    let mut w = BitWriter::new();
    let mut sec = Sections::default();
    let mut wtypes = types.clone();
    encode_function(&mut w, &mut wtypes, f, &mut sec)?;
    sec.functions = 1;
    let bytes = w.into_bytes();
    sec.total_bytes = bytes.len() as u64;
    Ok((bytes, sec))
}

fn encode_function(
    w: &mut BitWriter,
    types: &mut TypeTable,
    f: &Function,
    sec: &mut Sections,
) -> Result<(), EncodeError> {
    let cfg = Cfg::build(f).map_err(|e| EncodeError::UnverifiedFunction(e.to_string()))?;
    let dom = DomTree::build(&cfg);
    let mut mark = w.bit_len() as u64;
    let mut section = |w: &BitWriter, slot: &mut u64| {
        let here = w.bit_len() as u64;
        *slot += here - mark;
        mark = here;
    };
    // Constant pool.
    w.gamma(f.consts.len() as u64);
    for c in &f.consts {
        write_type(w, types, c.ty);
        encode_literal(w, &c.lit);
    }
    section(w, &mut sec.const_pool_bits);
    // Phase 1: the CST as grammar productions.
    let mut depths = (0u32, 0u32);
    encode_cst(w, &f.body, &mut depths);
    section(w, &mut sec.cst_bits);
    // Phase 2a: opcodes, types, and member references of every block in
    // the CST-derived traversal order. Operands are postponed so a
    // streaming consumer knows every plane's register count (and the
    // complete control-flow graph, exception edges included) before the
    // first reference arrives.
    for &b in &cfg.traversal {
        let block = f.block(b);
        w.gamma(block.phis.len() as u64);
        for phi in &block.phis {
            write_type(w, types, phi.ty);
        }
        w.gamma(block.instrs.len() as u64);
        for instr in &block.instrs {
            encode_instr_fields(w, types, instr);
        }
    }
    section(w, &mut sec.instr_bits);
    // Phase 2b: the operand references.
    for &b in &cfg.traversal {
        let block = f.block(b);
        for (k, instr) in block.instrs.iter().enumerate() {
            let planes = crate::planes::operand_planes(types, instr)
                .map_err(|e| EncodeError::MalformedInstruction(e.to_string()))?;
            for (v, plane) in instr.operands().into_iter().zip(planes) {
                write_ref(w, f, &dom, b, Some(k), plane, v)?;
            }
        }
    }
    section(w, &mut sec.operand_ref_bits);
    // Phase 2c: CST value references (conditions, returns, throws) in
    // the frontier-walk order.
    let mut rw = RefWalk {
        w,
        types,
        f,
        cfg: &cfg,
        dom: &dom,
    };
    rw.walk(&f.body, Fr::Start)?;
    section(w, &mut sec.cst_ref_bits);
    // Phase 3: phi operands.
    for &b in &cfg.traversal {
        let preds = cfg.preds_of(b).to_vec();
        for phi in &f.block(b).phis {
            for e in &preds {
                let v = phi
                    .arg_from(e.from)
                    .ok_or(EncodeError::PhiMissingEdge { block: b })?;
                let limit = match e.kind {
                    EdgeKind::Normal => None,
                    EdgeKind::Exception { upto } => Some(upto as usize),
                };
                write_ref(w, f, &dom, e.from, limit, phi.ty, v)?;
            }
        }
    }
    section(w, &mut sec.phi_ref_bits);
    Ok(())
}

fn encode_literal(w: &mut BitWriter, lit: &Literal) {
    match lit {
        Literal::Bool(b) => w.bits(u64::from(*b), 1),
        Literal::Char(c) => w.bits(*c as u64, 16),
        Literal::Int(v) => w.bits(*v as u32 as u64, 32),
        Literal::Long(v) => w.bits(*v as u64, 64),
        Literal::Float(v) => w.bits(v.to_bits() as u64, 32),
        Literal::Double(v) => w.bits(v.to_bits(), 64),
        Literal::Null => w.bits(0, 1),
        Literal::Str(s) => {
            w.bits(1, 1);
            w.string(s);
        }
    }
}

fn encode_cst(w: &mut BitWriter, cst: &Cst, depths: &mut (u32, u32)) {
    match cst {
        Cst::Basic(_) => w.symbol(CstTag::Basic as u32, CST_TAGS),
        Cst::Seq(items) => {
            w.symbol(CstTag::Seq as u32, CST_TAGS);
            w.gamma(items.len() as u64);
            for c in items {
                encode_cst(w, c, depths);
            }
        }
        Cst::If {
            then_br, else_br, ..
        } => {
            w.symbol(CstTag::If as u32, CST_TAGS);
            encode_cst(w, then_br, depths);
            encode_cst(w, else_br, depths);
        }
        Cst::Loop { body, .. } => {
            w.symbol(CstTag::Loop as u32, CST_TAGS);
            depths.1 += 1;
            encode_cst(w, body, depths);
            depths.1 -= 1;
        }
        Cst::Labeled { body, .. } => {
            w.symbol(CstTag::Labeled as u32, CST_TAGS);
            depths.0 += 1;
            encode_cst(w, body, depths);
            depths.0 -= 1;
        }
        Cst::Break(n) => {
            w.symbol(CstTag::Break as u32, CST_TAGS);
            w.symbol(*n, depths.0);
        }
        Cst::Continue(n) => {
            w.symbol(CstTag::Continue as u32, CST_TAGS);
            w.symbol(*n, depths.1);
        }
        Cst::Return(_) => w.symbol(CstTag::Return as u32, CST_TAGS),
        Cst::Throw(_) => w.symbol(CstTag::Throw as u32, CST_TAGS),
        Cst::Try { body, handler, .. } => {
            w.symbol(CstTag::Try as u32, CST_TAGS);
            encode_cst(w, body, depths);
            encode_cst(w, handler, depths);
        }
    }
}

fn write_field_ref(w: &mut BitWriter, types: &TypeTable, fr: FieldRef) {
    w.symbol(fr.class.0, types.class_count() as u32);
    let n = types.class(fr.class).fields.len() as u32;
    w.symbol(fr.index, n);
}

fn write_method_ref(w: &mut BitWriter, types: &TypeTable, mr: MethodRef) {
    w.symbol(mr.class.0, types.class_count() as u32);
    let n = types.class(mr.class).methods.len() as u32;
    w.symbol(mr.index, n);
}

fn encode_instr_fields(w: &mut BitWriter, types: &TypeTable, instr: &Instr) {
    match instr {
        Instr::Primitive { ty, op, .. } | Instr::XPrimitive { ty, op, .. } => {
            let x = matches!(instr, Instr::XPrimitive { .. });
            w.symbol(
                if x { Opc::XPrimitive } else { Opc::Primitive } as u32,
                OPCODES,
            );
            write_type(w, types, *ty);
            let kind = match types.kind(*ty) {
                TypeKind::Prim(p) => p,
                _ => unreachable!("verified primitive type"),
            };
            let table = primops::ops_of(kind);
            w.symbol(op.0 as u32, table.len() as u32);
        }
        Instr::NullCheck { ty, .. } => {
            w.symbol(Opc::NullCheck as u32, OPCODES);
            write_type(w, types, *ty);
        }
        Instr::IndexCheck { arr_ty, .. } => {
            w.symbol(Opc::IndexCheck as u32, OPCODES);
            write_type(w, types, *arr_ty);
        }
        Instr::Upcast { from, to, .. } => {
            w.symbol(Opc::Upcast as u32, OPCODES);
            write_type(w, types, *from);
            write_type(w, types, *to);
        }
        Instr::Downcast { from, to, .. } => {
            w.symbol(Opc::Downcast as u32, OPCODES);
            write_type(w, types, *from);
            write_type(w, types, *to);
        }
        Instr::GetField { ty, field, .. } => {
            w.symbol(Opc::GetField as u32, OPCODES);
            write_type(w, types, *ty);
            write_field_ref(w, types, *field);
        }
        Instr::SetField { ty, field, .. } => {
            w.symbol(Opc::SetField as u32, OPCODES);
            write_type(w, types, *ty);
            write_field_ref(w, types, *field);
        }
        Instr::GetStatic { field } => {
            w.symbol(Opc::GetStatic as u32, OPCODES);
            write_field_ref(w, types, *field);
        }
        Instr::SetStatic { field, .. } => {
            w.symbol(Opc::SetStatic as u32, OPCODES);
            write_field_ref(w, types, *field);
        }
        Instr::GetElt { arr_ty, .. } => {
            w.symbol(Opc::GetElt as u32, OPCODES);
            write_type(w, types, *arr_ty);
        }
        Instr::SetElt { arr_ty, .. } => {
            w.symbol(Opc::SetElt as u32, OPCODES);
            write_type(w, types, *arr_ty);
        }
        Instr::ArrayLength { arr_ty, .. } => {
            w.symbol(Opc::ArrayLength as u32, OPCODES);
            write_type(w, types, *arr_ty);
        }
        Instr::New { class_ty } => {
            w.symbol(Opc::New as u32, OPCODES);
            write_type(w, types, *class_ty);
        }
        Instr::NewArray { arr_ty, .. } => {
            w.symbol(Opc::NewArray as u32, OPCODES);
            write_type(w, types, *arr_ty);
        }
        Instr::XCall {
            base_ty,
            method,
            receiver,
            ..
        } => {
            w.symbol(Opc::XCall as u32, OPCODES);
            write_type(w, types, *base_ty);
            write_method_ref(w, types, *method);
            w.bits(u64::from(receiver.is_some()), 1);
        }
        Instr::XDispatch {
            base_ty, method, ..
        } => {
            w.symbol(Opc::XDispatch as u32, OPCODES);
            write_type(w, types, *base_ty);
            write_method_ref(w, types, *method);
        }
        Instr::RefEq { ty, .. } => {
            w.symbol(Opc::RefEq as u32, OPCODES);
            write_type(w, types, *ty);
        }
        Instr::InstanceOf { from, target, .. } => {
            w.symbol(Opc::InstanceOf as u32, OPCODES);
            write_type(w, types, *from);
            write_type(w, types, *target);
        }
        Instr::Catch { ty } => {
            w.symbol(Opc::Catch as u32, OPCODES);
            write_type(w, types, *ty);
        }
    }
}

// --------------------------------------------------------------------
// Phase 2c: value references held by CST nodes, emitted in the same
// frontier-walk order the decoder replays.

#[derive(Clone, Copy, PartialEq)]
enum Fr {
    Start,
    At(BlockId),
    Dead,
}

struct RefWalk<'a> {
    w: &'a mut BitWriter,
    types: &'a TypeTable,
    f: &'a Function,
    cfg: &'a Cfg,
    dom: &'a DomTree,
}

impl<'a> RefWalk<'a> {
    /// A join is live exactly when it has incoming edges (the CFG was
    /// built once, from the real structure).
    fn live_join(&self, join: BlockId) -> Fr {
        if self.cfg.preds_of(join).is_empty() {
            Fr::Dead
        } else {
            Fr::At(join)
        }
    }

    fn walk(&mut self, cst: &Cst, fr: Fr) -> Result<Fr, EncodeError> {
        Ok(match cst {
            Cst::Basic(b) => match fr {
                Fr::Dead => Fr::Dead,
                _ => Fr::At(*b),
            },
            Cst::Seq(items) => {
                let mut cur = fr;
                for c in items {
                    cur = self.walk(c, cur)?;
                }
                cur
            }
            Cst::If {
                cond,
                then_br,
                else_br,
                join,
            } => {
                if let Fr::At(b) = fr {
                    write_ref(
                        self.w,
                        self.f,
                        self.dom,
                        b,
                        None,
                        self.types.bool_ty(),
                        *cond,
                    )?;
                }
                let _ = self.walk(then_br, fr)?;
                let _ = self.walk(else_br, fr)?;
                self.live_join(*join)
            }
            Cst::Loop { header, body } => {
                let inner = match fr {
                    Fr::Dead => Fr::Dead,
                    _ => Fr::At(*header),
                };
                let _ = self.walk(body, inner)?;
                Fr::Dead
            }
            Cst::Labeled { body, join } => {
                let _ = self.walk(body, fr)?;
                self.live_join(*join)
            }
            Cst::Break(_) | Cst::Continue(_) => Fr::Dead,
            Cst::Return(v) => {
                if let (Fr::At(b), Some(v)) = (fr, v) {
                    let plane = self.f.ret.ok_or(EncodeError::MissingReturnType)?;
                    write_ref(self.w, self.f, self.dom, b, None, plane, *v)?;
                }
                Fr::Dead
            }
            Cst::Throw(v) => {
                if let Fr::At(b) = fr {
                    let plane = self.f.value_ty(*v);
                    write_type(self.w, self.types, plane);
                    write_ref(self.w, self.f, self.dom, b, None, plane, *v)?;
                }
                Fr::Dead
            }
            Cst::Try {
                body,
                handler_entry,
                handler,
                join,
            } => {
                let _ = self.walk(body, fr)?;
                let h = if self.cfg.preds_of(*handler_entry).is_empty() {
                    Fr::Dead
                } else {
                    Fr::At(*handler_entry)
                };
                let _ = self.walk(handler, h)?;
                self.live_join(*join)
            }
        })
    }
}
