//! Bit-level I/O and the paper's "simple prefix encoding".
//!
//! Every symbol of the SafeTSA stream is "chosen from a finite set
//! determined only by the preceding context" (§7); with fixed equal
//! probabilities the optimal prefix code is ⌈log₂ n⌉ bits per symbol,
//! which is what [`BitWriter::symbol`] emits. A set with one element
//! costs zero bits — references to the only value on a plane are free.
//! Unbounded counts use Elias gamma codes.

use std::fmt;

/// A decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The stream ended inside a symbol.
    UnexpectedEof,
    /// A symbol value reached the reader that exceeds its cardinality
    /// (impossible for ⌈log₂ n⌉ codes unless n is not a power of two
    /// and the top code points are unused — the check is the "trivial"
    /// r-bound verification of §2).
    SymbolOutOfRange {
        /// Decoded value.
        value: u32,
        /// Permitted cardinality.
        card: u32,
    },
    /// Structural validation failed during decoding.
    Malformed(String),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof => write!(f, "unexpected end of stream"),
            DecodeError::SymbolOutOfRange { value, card } => {
                write!(f, "symbol {value} out of range (cardinality {card})")
            }
            DecodeError::Malformed(s) => write!(f, "malformed stream: {s}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Number of bits needed for a symbol out of `card` alternatives.
pub fn bits_for(card: u32) -> u32 {
    if card <= 1 {
        0
    } else {
        32 - (card - 1).leading_zeros()
    }
}

/// A growable bit sink.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Number of valid bits in the last byte (0 = byte boundary).
    bit_pos: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `n` bits of `v`, most significant first.
    pub fn bits(&mut self, v: u64, n: u32) {
        debug_assert!(n <= 64);
        debug_assert!(n == 64 || v < (1u64 << n));
        for i in (0..n).rev() {
            let bit = (v >> i) & 1;
            if self.bit_pos == 0 {
                self.bytes.push(0);
            }
            let last = self.bytes.last_mut().expect("pushed above");
            *last |= (bit as u8) << (7 - self.bit_pos);
            self.bit_pos = (self.bit_pos + 1) % 8;
        }
    }

    /// Emits `v` as a symbol out of `card` alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `v >= card` (an encoder bug).
    pub fn symbol(&mut self, v: u32, card: u32) {
        assert!(v < card.max(1), "symbol {v} out of cardinality {card}");
        self.bits(v as u64, bits_for(card));
    }

    /// Elias gamma code for an unbounded count (`v ≥ 0`).
    pub fn gamma(&mut self, v: u64) {
        let x = v + 1;
        let n = 63 - x.leading_zeros() as u64;
        self.bits(0, n as u32);
        self.bits(1, 1);
        self.bits(x & ((1u64 << n) - 1), n as u32);
    }

    /// A length-prefixed UTF-8 string.
    pub fn string(&mut self, s: &str) {
        self.gamma(s.len() as u64);
        for b in s.bytes() {
            self.bits(b as u64, 8);
        }
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> usize {
        self.bytes.len() * 8
            - if self.bit_pos == 0 {
                0
            } else {
                (8 - self.bit_pos) as usize
            }
    }

    /// Finishes and returns the byte buffer (zero-padded).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// A bit source over a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize, // bit position
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Reads `n` bits, most significant first.
    ///
    /// # Errors
    ///
    /// [`DecodeError::UnexpectedEof`] when the stream is exhausted.
    pub fn bits(&mut self, n: u32) -> Result<u64, DecodeError> {
        let mut v = 0u64;
        for _ in 0..n {
            let byte = self
                .bytes
                .get(self.pos / 8)
                .ok_or(DecodeError::UnexpectedEof)?;
            let bit = (byte >> (7 - (self.pos % 8))) & 1;
            v = (v << 1) | bit as u64;
            self.pos += 1;
        }
        Ok(v)
    }

    /// Reads a symbol out of `card` alternatives, enforcing the range.
    ///
    /// # Errors
    ///
    /// EOF or [`DecodeError::SymbolOutOfRange`].
    pub fn symbol(&mut self, card: u32) -> Result<u32, DecodeError> {
        if card == 0 {
            return Err(DecodeError::Malformed(
                "reference into an empty register set".into(),
            ));
        }
        let v = self.bits(bits_for(card))? as u32;
        if v >= card {
            return Err(DecodeError::SymbolOutOfRange { value: v, card });
        }
        Ok(v)
    }

    /// Reads an Elias gamma code.
    ///
    /// # Errors
    ///
    /// EOF, or malformed codes longer than 63 bits.
    pub fn gamma(&mut self) -> Result<u64, DecodeError> {
        let mut n = 0u32;
        loop {
            if self.bits(1)? == 1 {
                break;
            }
            n += 1;
            if n > 63 {
                return Err(DecodeError::Malformed("gamma code too long".into()));
            }
        }
        let rest = self.bits(n)?;
        Ok(((1u64 << n) | rest) - 1)
    }

    /// Reads a length-prefixed UTF-8 string (capped at 1 MiB).
    ///
    /// # Errors
    ///
    /// EOF, oversized lengths, or invalid UTF-8.
    pub fn string(&mut self) -> Result<String, DecodeError> {
        let len = self.gamma()?;
        if len > 1 << 20 {
            return Err(DecodeError::Malformed("string too long".into()));
        }
        let mut out = Vec::with_capacity(len as usize);
        for _ in 0..len {
            out.push(self.bits(8)? as u8);
        }
        String::from_utf8(out).map_err(|_| DecodeError::Malformed("invalid UTF-8".into()))
    }

    /// Current bit position (diagnostics).
    pub fn bit_pos(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_round_trip() {
        let mut w = BitWriter::new();
        w.bits(0b1011, 4);
        w.bits(0xFF, 8);
        w.bits(0, 1);
        w.bits(1, 1);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.bits(4).unwrap(), 0b1011);
        assert_eq!(r.bits(8).unwrap(), 0xFF);
        assert_eq!(r.bits(1).unwrap(), 0);
        assert_eq!(r.bits(1).unwrap(), 1);
    }

    #[test]
    fn symbol_costs() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 0);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(5), 3);
        assert_eq!(bits_for(256), 8);
        assert_eq!(bits_for(257), 9);
    }

    #[test]
    fn singleton_symbols_are_free() {
        let mut w = BitWriter::new();
        for _ in 0..1000 {
            w.symbol(0, 1);
        }
        assert_eq!(w.bit_len(), 0);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for _ in 0..1000 {
            assert_eq!(r.symbol(1).unwrap(), 0);
        }
    }

    #[test]
    fn symbol_range_enforced() {
        let mut w = BitWriter::new();
        w.symbol(2, 3); // 2 bits; value 3 would be out of range
        w.bits(0b11, 2);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.symbol(3).unwrap(), 2);
        assert_eq!(
            r.symbol(3),
            Err(DecodeError::SymbolOutOfRange { value: 3, card: 3 })
        );
    }

    #[test]
    fn gamma_round_trip() {
        let mut w = BitWriter::new();
        let values = [0u64, 1, 2, 3, 7, 8, 100, 1 << 20, u32::MAX as u64];
        for &v in &values {
            w.gamma(v);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.gamma().unwrap(), v);
        }
    }

    #[test]
    fn string_round_trip() {
        let mut w = BitWriter::new();
        w.string("hello κόσμος");
        w.string("");
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.string().unwrap(), "hello κόσμος");
        assert_eq!(r.string().unwrap(), "");
    }

    #[test]
    fn eof_detection() {
        let bytes = [0xAB];
        let mut r = BitReader::new(&bytes);
        assert!(r.bits(8).is_ok());
        assert_eq!(r.bits(1), Err(DecodeError::UnexpectedEof));
    }
}
