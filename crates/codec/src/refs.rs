//! Shared reference-coding machinery: the `(l, r)` dominator-relative
//! register naming of §2, and structural type references.
//!
//! `l` is coded against the dominator depth of the referencing block
//! (cardinality `depth + 1`), `r` against the number of values visible
//! on the operand's plane in the target block — the bound whose trivial
//! check is the *entire* reference verification SafeTSA needs, and
//! which the prefix coder exploits for compactness (§2: "the latter
//! fact can actually be exploited when encoding the (l-r) pair
//! space-efficiently").

use crate::bits::{BitReader, BitWriter, DecodeError};
use crate::enc::EncodeError;
use safetsa_core::dom::DomTree;
use safetsa_core::function::{Function, ENTRY};
use safetsa_core::types::{PrimKind, TypeId, TypeKind, TypeTable};
use safetsa_core::value::{BlockId, ValueId};

/// Values visible on `plane` in block `d`, in register order: entry
/// pre-loads first (entry block only), then phis, then instruction
/// results. `limit` restricts instruction results to indices `< k`
/// (same-block uses and exception-edge visibility).
pub fn visible(f: &Function, d: BlockId, plane: TypeId, limit: Option<usize>) -> Vec<ValueId> {
    let mut out = Vec::new();
    if d == ENTRY {
        for i in 0..f.params.len() {
            let v = ValueId(i as u32);
            if f.value_ty(v) == plane {
                out.push(v);
            }
        }
        for i in 0..f.consts.len() {
            let v = f.const_value(i);
            if f.value_ty(v) == plane {
                out.push(v);
            }
        }
    }
    let block = f.block(d);
    for k in 0..block.phis.len() {
        let v = f.phi_result(d, k);
        if f.value_ty(v) == plane {
            out.push(v);
        }
    }
    let n = limit.unwrap_or(block.instrs.len()).min(block.instrs.len());
    for k in 0..n {
        if let Some(v) = f.instr_result(d, k) {
            if f.value_ty(v) == plane {
                out.push(v);
            }
        }
    }
    out
}

/// Encodes a reference to `v` (on `plane`) made from block `b` with the
/// given same-block instruction `limit`.
///
/// # Errors
///
/// Returns [`EncodeError`] if `v` does not dominate the use or is not
/// visible on `plane` — the properties the `(l, r)` coding cannot
/// express, so the encoder refuses rather than emitting garbage.
pub fn write_ref(
    w: &mut BitWriter,
    f: &Function,
    dom: &DomTree,
    b: BlockId,
    limit: Option<usize>,
    plane: TypeId,
    v: ValueId,
) -> Result<(), EncodeError> {
    let d = f.value(v).block;
    let l = dom
        .level_distance(d, b)
        .ok_or(EncodeError::OperandNotDominating { value: v, block: b })?;
    let depth = dom.depth[b.index()];
    w.symbol(l, depth + 1);
    let lim = if l == 0 { limit } else { None };
    let vis = visible(f, d, plane, lim);
    let r = vis
        .iter()
        .position(|&x| x == v)
        .ok_or(EncodeError::OperandNotVisible { value: v, block: b })?;
    w.symbol(r as u32, vis.len() as u32);
    Ok(())
}

/// Decodes a reference made from block `b` on `plane`.
///
/// # Errors
///
/// Propagates range violations — the intrinsic referential-integrity
/// check.
pub fn read_ref(
    r: &mut BitReader<'_>,
    f: &Function,
    dom: &DomTree,
    b: BlockId,
    limit: Option<usize>,
    plane: TypeId,
) -> Result<ValueId, DecodeError> {
    let depth = dom.depth[b.index()];
    let l = r.symbol(depth + 1)?;
    let d = dom
        .ancestor(b, l)
        .ok_or_else(|| DecodeError::Malformed("dominator walk fell off the tree".into()))?;
    let lim = if l == 0 { limit } else { None };
    let vis = visible(f, d, plane, lim);
    let idx = r.symbol(vis.len() as u32)?;
    Ok(vis[idx as usize])
}

const TYPE_TAGS: u32 = 5;

/// Encodes a structural type reference.
pub fn write_type(w: &mut BitWriter, types: &TypeTable, ty: TypeId) {
    match types.kind(ty) {
        TypeKind::Prim(p) => {
            w.symbol(0, TYPE_TAGS);
            let idx = PrimKind::ALL.iter().position(|&k| k == p).expect("prim");
            w.symbol(idx as u32, PrimKind::ALL.len() as u32);
        }
        TypeKind::Class(c) => {
            w.symbol(1, TYPE_TAGS);
            w.symbol(c.0, types.class_count() as u32);
        }
        TypeKind::Array(e) => {
            w.symbol(2, TYPE_TAGS);
            write_type(w, types, e);
        }
        TypeKind::SafeRef(of) => {
            w.symbol(3, TYPE_TAGS);
            write_type(w, types, of);
        }
        TypeKind::SafeIndex(arr) => {
            w.symbol(4, TYPE_TAGS);
            write_type(w, types, arr);
        }
    }
}

/// Decodes a structural type reference, interning derived planes.
///
/// # Errors
///
/// Rejects ill-kinded compositions (e.g. `safe-ref` of a primitive).
pub fn read_type(
    r: &mut BitReader<'_>,
    types: &mut TypeTable,
    depth: u32,
) -> Result<TypeId, DecodeError> {
    if depth > 32 {
        return Err(DecodeError::Malformed("type nesting too deep".into()));
    }
    match r.symbol(TYPE_TAGS)? {
        0 => {
            let idx = r.symbol(PrimKind::ALL.len() as u32)?;
            Ok(types.prim(PrimKind::ALL[idx as usize]))
        }
        1 => {
            let c = r.symbol(types.class_count() as u32)?;
            Ok(types.class_ty(safetsa_core::types::ClassId(c)))
        }
        2 => {
            let e = read_type(r, types, depth + 1)?;
            Ok(types.array_of(e))
        }
        3 => {
            let of = read_type(r, types, depth + 1)?;
            if !types.is_ref(of) {
                return Err(DecodeError::Malformed("safe-ref of non-reference".into()));
            }
            Ok(types.safe_ref_of(of))
        }
        4 => {
            let arr = read_type(r, types, depth + 1)?;
            if !matches!(types.kind(arr), TypeKind::Array(_)) {
                return Err(DecodeError::Malformed("safe-index of non-array".into()));
            }
            Ok(types.safe_index_of(arr))
        }
        _ => unreachable!("symbol bounded by cardinality"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safetsa_core::types::ClassInfo;

    #[test]
    fn type_refs_round_trip() {
        let mut types = TypeTable::new();
        let (_, obj_ty) = types.declare_class(ClassInfo {
            name: "Object".into(),
            superclass: None,
            fields: vec![],
            methods: vec![],
            imported: true,
        });
        let int = types.prim(PrimKind::Int);
        let arr = types.array_of(int);
        let sr = types.safe_ref_of(arr);
        let si = types.safe_index_of(arr);
        let sobj = types.safe_ref_of(obj_ty);
        let all = [int, obj_ty, arr, sr, si, sobj];
        let mut w = BitWriter::new();
        for &t in &all {
            write_type(&mut w, &types, t);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        // Decode against a table with the same classes but no derived
        // planes — they are interned on demand.
        let mut t2 = TypeTable::new();
        t2.declare_class(ClassInfo {
            name: "Object".into(),
            superclass: None,
            fields: vec![],
            methods: vec![],
            imported: true,
        });
        let decoded: Vec<TypeId> = (0..all.len())
            .map(|_| read_type(&mut r, &mut t2, 0).unwrap())
            .collect();
        for (&orig, &dec) in all.iter().zip(&decoded) {
            assert_eq!(types.type_name(orig), t2.type_name(dec));
        }
    }
}

#[cfg(test)]
mod visible_tests {
    use super::*;
    use safetsa_core::function::Function;
    use safetsa_core::instr::Instr;
    use safetsa_core::primops;
    use safetsa_core::value::{Const, Literal};

    #[test]
    fn visibility_order_and_limits() {
        let mut types = TypeTable::new();
        let int = types.prim(PrimKind::Int);
        let dbl = types.prim(PrimKind::Double);
        let mut f = Function::new("t", None, vec![int, dbl], Some(int));
        let c = f.add_const(Const {
            ty: int,
            lit: Literal::Int(9),
        });
        let add = primops::find(PrimKind::Int, "add").unwrap();
        let r0 = f
            .add_instr(
                &mut types,
                ENTRY,
                Instr::Primitive {
                    ty: int,
                    op: add,
                    args: vec![f.param_value(0), c],
                },
            )
            .unwrap()
            .unwrap();
        let r1 = f
            .add_instr(
                &mut types,
                ENTRY,
                Instr::Primitive {
                    ty: int,
                    op: add,
                    args: vec![r0, c],
                },
            )
            .unwrap()
            .unwrap();
        // Int plane, whole block: param0, const, r0, r1 (double param
        // is filtered out — type separation).
        assert_eq!(
            visible(&f, ENTRY, int, None),
            vec![f.param_value(0), c, r0, r1]
        );
        // Limited to before instruction 1: r1 is not visible.
        assert_eq!(
            visible(&f, ENTRY, int, Some(1)),
            vec![f.param_value(0), c, r0]
        );
        // Double plane: only the double parameter.
        assert_eq!(visible(&f, ENTRY, dbl, None), vec![f.param_value(1)]);
        // A plane with nothing on it.
        let bool_ty = types.bool_ty();
        assert!(visible(&f, ENTRY, bool_ty, None).is_empty());
    }
}
