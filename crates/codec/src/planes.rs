//! Plane computation shared by encoder and decoder: given an
//! instruction's opcode and type/member fields (operands not needed),
//! the planes of its operands — in [`Instr::operands`] order — and of
//! its result are fully determined. This is the "implicit register
//! plane selection" of §3, factored out so both sides of the wire agree
//! byte-for-byte.

use crate::bits::DecodeError;
use safetsa_core::instr::Instr;
use safetsa_core::primops;
use safetsa_core::types::{TypeId, TypeKind, TypeTable};

fn safe_ref(types: &mut TypeTable, ty: TypeId) -> Result<TypeId, DecodeError> {
    if !types.is_ref(ty) {
        return Err(DecodeError::Malformed("safe-ref of non-reference".into()));
    }
    Ok(types.safe_ref_of(ty))
}

/// Operand planes of `instr`, in [`Instr::operands`] order.
///
/// # Errors
///
/// Rejects ill-kinded field combinations (bad member refs, primitives
/// where references are required, …).
pub fn operand_planes(types: &mut TypeTable, instr: &Instr) -> Result<Vec<TypeId>, DecodeError> {
    Ok(match instr {
        Instr::Primitive { ty, op, .. } | Instr::XPrimitive { ty, op, .. } => {
            let kind = match types.kind(*ty) {
                TypeKind::Prim(p) => p,
                _ => return Err(DecodeError::Malformed("primitive on non-prim".into())),
            };
            let desc = primops::resolve(kind, *op)
                .ok_or_else(|| DecodeError::Malformed("bad op".into()))?;
            desc.params.iter().map(|p| types.prim(*p)).collect()
        }
        Instr::NullCheck { ty, .. } => vec![*ty],
        Instr::IndexCheck { arr_ty, .. } => {
            vec![safe_ref(types, *arr_ty)?, types.int_ty()]
        }
        Instr::Upcast { from, .. } | Instr::Downcast { from, .. } => vec![*from],
        Instr::GetField { ty, .. } => vec![safe_ref(types, *ty)?],
        Instr::SetField { ty, field, .. } => {
            let fty = types
                .field(*field)
                .ok_or_else(|| DecodeError::Malformed("bad field".into()))?
                .ty;
            vec![safe_ref(types, *ty)?, fty]
        }
        Instr::GetStatic { .. } | Instr::New { .. } | Instr::Catch { .. } => vec![],
        Instr::SetStatic { field, .. } => {
            let fty = types
                .field(*field)
                .ok_or_else(|| DecodeError::Malformed("bad field".into()))?
                .ty;
            vec![fty]
        }
        Instr::GetElt { arr_ty, .. } => {
            if !matches!(types.kind(*arr_ty), TypeKind::Array(_)) {
                return Err(DecodeError::Malformed("getelt on non-array".into()));
            }
            vec![safe_ref(types, *arr_ty)?, types.safe_index_of(*arr_ty)]
        }
        Instr::SetElt { arr_ty, .. } => {
            let elem = match types.kind(*arr_ty) {
                TypeKind::Array(e) => e,
                _ => return Err(DecodeError::Malformed("setelt on non-array".into())),
            };
            vec![
                safe_ref(types, *arr_ty)?,
                types.safe_index_of(*arr_ty),
                elem,
            ]
        }
        Instr::ArrayLength { arr_ty, .. } => vec![safe_ref(types, *arr_ty)?],
        Instr::NewArray { .. } => vec![types.int_ty()],
        Instr::XCall {
            base_ty,
            method,
            receiver,
            ..
        } => {
            let params = types
                .method(*method)
                .ok_or_else(|| DecodeError::Malformed("bad method".into()))?
                .params
                .clone();
            let mut v = Vec::with_capacity(params.len() + 1);
            if receiver.is_some() {
                v.push(safe_ref(types, *base_ty)?);
            }
            v.extend(params);
            v
        }
        Instr::XDispatch {
            base_ty, method, ..
        } => {
            let params = types
                .method(*method)
                .ok_or_else(|| DecodeError::Malformed("bad method".into()))?
                .params
                .clone();
            let mut v = Vec::with_capacity(params.len() + 1);
            v.push(safe_ref(types, *base_ty)?);
            v.extend(params);
            v
        }
        Instr::RefEq { ty, .. } => vec![*ty, *ty],
        Instr::InstanceOf { from, .. } => vec![*from],
    })
}

/// Result plane of `instr`, independent of operands.
///
/// # Errors
///
/// Rejects ill-kinded field combinations.
pub fn result_plane(types: &mut TypeTable, instr: &Instr) -> Result<Option<TypeId>, DecodeError> {
    Ok(match instr {
        Instr::Primitive { ty, op, .. } | Instr::XPrimitive { ty, op, .. } => {
            let kind = match types.kind(*ty) {
                TypeKind::Prim(p) => p,
                _ => return Err(DecodeError::Malformed("primitive on non-prim".into())),
            };
            let desc = primops::resolve(kind, *op)
                .ok_or_else(|| DecodeError::Malformed("bad op".into()))?;
            Some(types.prim(desc.result))
        }
        Instr::NullCheck { ty, .. } => Some(safe_ref(types, *ty)?),
        Instr::IndexCheck { arr_ty, .. } => {
            if !matches!(types.kind(*arr_ty), TypeKind::Array(_)) {
                return Err(DecodeError::Malformed("indexcheck on non-array".into()));
            }
            Some(types.safe_index_of(*arr_ty))
        }
        Instr::Upcast { to, .. } | Instr::Downcast { to, .. } => Some(*to),
        Instr::GetField { field, .. } | Instr::GetStatic { field } => Some(
            types
                .field(*field)
                .ok_or_else(|| DecodeError::Malformed("bad field".into()))?
                .ty,
        ),
        Instr::SetField { .. } | Instr::SetStatic { .. } | Instr::SetElt { .. } => None,
        Instr::GetElt { arr_ty, .. } => match types.kind(*arr_ty) {
            TypeKind::Array(e) => Some(e),
            _ => return Err(DecodeError::Malformed("getelt on non-array".into())),
        },
        Instr::ArrayLength { .. } => Some(types.int_ty()),
        Instr::New { class_ty } => Some(safe_ref(types, *class_ty)?),
        Instr::NewArray { arr_ty, .. } => Some(safe_ref(types, *arr_ty)?),
        Instr::XCall { method, .. } | Instr::XDispatch { method, .. } => {
            types
                .method(*method)
                .ok_or_else(|| DecodeError::Malformed("bad method".into()))?
                .ret
        }
        Instr::RefEq { .. } | Instr::InstanceOf { .. } => Some(types.bool_ty()),
        Instr::Catch { ty } => {
            if !matches!(types.kind(*ty), TypeKind::Class(_)) {
                return Err(DecodeError::Malformed("catch of non-class".into()));
            }
            Some(*ty)
        }
    })
}
