//! # safetsa-codec
//!
//! The SafeTSA wire format: type-safe, referentially secure
//! externalization of SSA programs.
//!
//! The design follows §2 and §7 of the paper:
//!
//! * value references travel as dominator-relative `(l, r)` pairs, so a
//!   decoded reference can *only* name a value that dominates its use —
//!   cross-branch references (the attack of Figure 1/2) are not
//!   expressible, and the only check needed is the trivial bound on `r`;
//! * every symbol is drawn from a finite, context-determined alphabet
//!   and coded with the "simple prefix encoding" (⌈log₂ n⌉ bits, §7) —
//!   a reference to the only value on a plane costs zero bits;
//! * transmission happens in three phases: the Control Structure Tree
//!   as grammar productions, the per-block instruction streams in the
//!   fixed CST-derived order, and finally the phi operands (which may
//!   reference forward);
//! * primitive types and imported host classes are never transmitted —
//!   the consumer generates them, so they cannot be tampered with (§4);
//!   dispatch-table slots are likewise re-derived by the consumer.
//!
//! # Examples
//!
//! ```
//! use safetsa_codec::{decode_and_verify, encode_module, HostEnv};
//!
//! let prog = safetsa_frontend::compile(
//!     "class M { static int main() { return 7 * 6; } }",
//! )?;
//! let lowered = safetsa_ssa::lower_program(&prog)?;
//! let bytes = encode_module(&lowered.module)?;
//! let host = HostEnv::standard();
//! let decoded = decode_and_verify(&bytes, &host)?;
//! assert!(decoded.find_function("M.main").is_some());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod bits;
pub mod dec;
pub mod enc;
pub mod layout;
pub mod planes;
pub mod refs;

pub use bits::DecodeError;
pub use dec::{decode_and_verify, decode_function_section, decode_module, HostEnv};
pub use enc::{encode_function_section, encode_module, encode_sections, EncodeError, Sections};

use safetsa_telemetry::Telemetry;

/// The canonical instrumented entry point: [`encode_module`] recording
/// the encode wall time (`codec.encode_ns`), the stream size
/// (`codec.total_bytes`), and the per-section bit breakdown
/// (`codec.sections.*_bits`) — where the paper's Figure 5 bytes
/// actually go. A disabled registry records nothing.
///
/// # Errors
///
/// Returns [`EncodeError`] when the module is not in verified shape.
pub fn encode(m: &safetsa_core::Module, tm: &Telemetry) -> Result<Vec<u8>, EncodeError> {
    let (bytes, sec) = tm.time("codec.encode_ns", || encode_sections(m))?;
    record_sections(&sec, tm);
    Ok(bytes)
}

/// Records one [`Sections`] breakdown into the `codec.*` counter plane.
pub fn record_sections(sec: &Sections, tm: &Telemetry) {
    if !tm.is_enabled() {
        return;
    }
    tm.add("codec.total_bytes", sec.total_bytes);
    tm.add("codec.functions", sec.functions);
    tm.add("codec.sections.header_bits", sec.header_bits);
    tm.add("codec.sections.type_table_bits", sec.type_table_bits);
    tm.add("codec.sections.const_pool_bits", sec.const_pool_bits);
    tm.add("codec.sections.cst_bits", sec.cst_bits);
    tm.add("codec.sections.instr_bits", sec.instr_bits);
    tm.add("codec.sections.operand_ref_bits", sec.operand_ref_bits);
    tm.add("codec.sections.cst_ref_bits", sec.cst_ref_bits);
    tm.add("codec.sections.phi_ref_bits", sec.phi_ref_bits);
}

impl HostEnv {
    /// The standard host environment: the same implicit classes the
    /// front-end installs (built by compiling an empty program).
    ///
    /// # Panics
    ///
    /// Never panics in practice: the empty program always compiles.
    pub fn standard() -> HostEnv {
        // Build via the producer pipeline over an empty program: only
        // the implicit host classes remain.
        let prog = safetsa_frontend::compile("").expect("empty program compiles");
        let lowered = safetsa_ssa::lower_program(&prog).expect("empty program lowers");
        HostEnv {
            types: lowered.module.types,
            well_known: lowered.module.well_known,
        }
    }
}
