//! The SafeTSA decoder: the code consumer's loader.
//!
//! Decoding *is* (most of) verification: every reference symbol is
//! range-checked against the registers actually defined at that point
//! (§2's "trivial" check), every instruction is type-checked by the
//! shared typing rules as it is rebuilt, and structures the encoding
//! cannot even express (cross-branch references, wrong planes) are
//! simply unrepresentable. The caller is expected to run the full
//! [`safetsa_core::verify::verify_module`] afterwards as defense in
//! depth; `decode_and_verify` does both.

use crate::bits::{BitReader, DecodeError};
use crate::layout::{CstTag, Opc, CST_TAGS, MAGIC, OPCODES, VERSION};
use crate::refs::{read_ref, read_type};
use safetsa_core::cfg::{Cfg, EdgeKind};
use safetsa_core::cst::Cst;
use safetsa_core::dom::DomTree;
use safetsa_core::function::{Function, ENTRY};
use safetsa_core::instr::Instr;
use safetsa_core::module::{Module, WellKnown};
use safetsa_core::primops::{self, PrimOpId};
use safetsa_core::types::{
    ClassId, ClassInfo, FieldInfo, FieldRef, MethodInfo, MethodKind, MethodRef, PrimKind, TypeId,
    TypeKind, TypeTable,
};
use safetsa_core::value::{BlockId, Const, Literal, ValueId};

/// The host environment: the implicitly generated (and therefore
/// tamper-proof) part of the type table — primitives and imported
/// classes — plus the well-known class handles.
#[derive(Debug, Clone)]
pub struct HostEnv {
    /// Type table containing only imported classes.
    pub types: TypeTable,
    /// Well-known classes.
    pub well_known: WellKnown,
}

const MAX_COUNT: u64 = 1 << 22;

fn cap(v: u64, what: &str) -> Result<usize, DecodeError> {
    if v > MAX_COUNT {
        return Err(DecodeError::Malformed(format!("{what} count too large")));
    }
    Ok(v as usize)
}

/// Decodes a module against the host environment.
///
/// # Errors
///
/// Any structural, referential, or type violation aborts decoding.
pub fn decode_module(bytes: &[u8], host: &HostEnv) -> Result<Module, DecodeError> {
    let mut r = BitReader::new(bytes);
    if r.bits(32)? as u32 != MAGIC {
        return Err(DecodeError::Malformed("bad magic".into()));
    }
    if r.bits(8)? as u8 != VERSION {
        return Err(DecodeError::Malformed("unsupported version".into()));
    }
    let name = r.string()?;
    let n_classes = cap(r.gamma()?, "class")?;
    let n_builtin = cap(r.gamma()?, "builtin class")?;
    let mut types = host.types.clone();
    if n_builtin != types.class_count() {
        return Err(DecodeError::Malformed(format!(
            "module expects {n_builtin} host classes, environment provides {}",
            types.class_count()
        )));
    }
    if n_classes < n_builtin {
        return Err(DecodeError::Malformed("class counts inconsistent".into()));
    }
    // Pre-declare local classes so forward references resolve.
    for i in n_builtin..n_classes {
        types.declare_class(ClassInfo {
            name: format!("<class {i}>"),
            superclass: None,
            fields: vec![],
            methods: vec![],
            imported: false,
        });
    }
    let mut has_body: Vec<(ClassId, usize)> = Vec::new();
    for i in n_builtin..n_classes {
        let cid = ClassId(i as u32);
        let cname = r.string()?;
        let sup = r.symbol(n_classes as u32)?;
        let n_fields = cap(r.gamma()?, "field")?;
        let mut fields = Vec::with_capacity(n_fields);
        for _ in 0..n_fields {
            let fname = r.string()?;
            let ty = read_type(&mut r, &mut types, 0)?;
            let is_static = r.bits(1)? == 1;
            fields.push(FieldInfo {
                name: fname,
                ty,
                is_static,
            });
        }
        let n_methods = cap(r.gamma()?, "method")?;
        let mut methods = Vec::with_capacity(n_methods);
        for mi in 0..n_methods {
            let mname = r.string()?;
            let n_params = cap(r.gamma()?, "parameter")?;
            let mut params = Vec::with_capacity(n_params);
            for _ in 0..n_params {
                params.push(read_type(&mut r, &mut types, 0)?);
            }
            let ret = if r.bits(1)? == 1 {
                Some(read_type(&mut r, &mut types, 0)?)
            } else {
                None
            };
            let kind = match r.symbol(crate::layout::METHOD_KINDS)? {
                0 => MethodKind::Static,
                1 => MethodKind::Virtual,
                _ => MethodKind::Special,
            };
            let body = r.bits(1)? == 1;
            if body {
                has_body.push((cid, mi));
            }
            methods.push(MethodInfo {
                name: mname,
                params,
                ret,
                kind,
                vtable_slot: None,
                body: None,
            });
        }
        let info = types.class_mut(cid);
        info.name = cname;
        info.superclass = Some(ClassId(sup));
        info.fields = fields;
        info.methods = methods;
    }
    // Reject superclass cycles before any recursive walk.
    for i in 0..n_classes {
        let mut seen = 0usize;
        let mut cur = Some(ClassId(i as u32));
        while let Some(c) = cur {
            seen += 1;
            if seen > n_classes {
                return Err(DecodeError::Malformed("superclass cycle".into()));
            }
            cur = types
                .class_checked(c)
                .ok_or_else(|| DecodeError::Malformed("superclass out of range".into()))?
                .superclass;
        }
    }
    // Dispatch-table slots are derived by the consumer — never
    // transmitted, so they cannot be corrupted.
    derive_vtable_slots(&mut types)?;

    // Function bodies.
    let mut functions = Vec::with_capacity(has_body.len());
    for (cid, mi) in has_body {
        let fid = functions.len() as u32;
        let fname = format!(
            "{}.{}",
            types.class(cid).name,
            types.class(cid).methods[mi].name
        );
        let f = decode_function(&mut r, &mut types, cid, mi)
            .map_err(|e| DecodeError::Malformed(format!("in {fname}: {e}")))?;
        types.class_mut(cid).methods[mi].body = Some(fid);
        functions.push(f);
    }
    Ok(Module {
        name,
        types,
        well_known: host.well_known,
        functions,
    })
}

/// Decodes and fully verifies a module.
///
/// # Errors
///
/// Decode errors, or verification failures mapped to
/// [`DecodeError::Malformed`].
pub fn decode_and_verify(bytes: &[u8], host: &HostEnv) -> Result<Module, DecodeError> {
    let m = decode_module(bytes, host)?;
    safetsa_core::verify::verify_module(&m)
        .map_err(|e| DecodeError::Malformed(format!("verification: {e}")))?;
    Ok(m)
}

/// Recomputes virtual-dispatch slots from the method tables (same
/// override rule as the producer: match by name, parameters, and
/// return type along the superclass chain).
fn derive_vtable_slots(types: &mut TypeTable) -> Result<(), DecodeError> {
    let n = types.class_count();
    let mut tables: Vec<Option<Vec<(ClassId, u32)>>> = vec![None; n];
    fn build(
        i: usize,
        types: &mut TypeTable,
        tables: &mut Vec<Option<Vec<(ClassId, u32)>>>,
    ) -> Vec<(ClassId, u32)> {
        if let Some(t) = &tables[i] {
            return t.clone();
        }
        let sup = types.class(ClassId(i as u32)).superclass;
        let mut table = match sup {
            Some(s) => build(s.index(), types, tables),
            None => Vec::new(),
        };
        let n_methods = types.class(ClassId(i as u32)).methods.len();
        for mi in 0..n_methods {
            let (name, params, ret, kind) = {
                let m = &types.class(ClassId(i as u32)).methods[mi];
                (m.name.clone(), m.params.clone(), m.ret, m.kind)
            };
            if kind != MethodKind::Virtual {
                continue;
            }
            let mut slot = None;
            for (s, &(oc, om)) in table.iter().enumerate() {
                let o = &types.class(oc).methods[om as usize];
                if o.name == name && o.params == params && o.ret == ret {
                    slot = Some(s);
                    break;
                }
            }
            let s = match slot {
                Some(s) => {
                    table[s] = (ClassId(i as u32), mi as u32);
                    s
                }
                None => {
                    table.push((ClassId(i as u32), mi as u32));
                    table.len() - 1
                }
            };
            types.class_mut(ClassId(i as u32)).methods[mi].vtable_slot = Some(s as u32);
        }
        tables[i] = Some(table.clone());
        table
    }
    for i in 0..n {
        build(i, types, &mut tables);
    }
    Ok(())
}

/// Decodes one standalone function section (the counterpart of
/// [`crate::enc::encode_function_section`]) against a type table that
/// already declares `class` with the method record at `method_idx` —
/// the signature is derived from that record, exactly as in a full
/// module decode. The incremental store's reassembly path uses this to
/// splice a cached method body into a freshly lowered module.
///
/// # Errors
///
/// Any structural, referential, or type violation aborts decoding —
/// callers treat a failure as a cache miss.
pub fn decode_function_section(
    bytes: &[u8],
    types: &mut TypeTable,
    class: ClassId,
    method_idx: usize,
) -> Result<Function, DecodeError> {
    let ok = types
        .class_checked(class)
        .is_some_and(|c| method_idx < c.methods.len());
    if !ok {
        return Err(DecodeError::Malformed("method record out of range".into()));
    }
    let mut r = BitReader::new(bytes);
    decode_function(&mut r, types, class, method_idx)
}

const PLACEHOLDER: ValueId = ValueId(u32::MAX);

struct FnDecoder<'a, 'b> {
    r: &'a mut BitReader<'b>,
    types: &'a mut TypeTable,
    f: Function,
    entry_used: bool,
    label_depth: u32,
    loop_depth: u32,
    nodes: usize,
}

fn decode_function(
    r: &mut BitReader<'_>,
    types: &mut TypeTable,
    class: ClassId,
    method_idx: usize,
) -> Result<Function, DecodeError> {
    // Derive the signature from the (already decoded) method record.
    let (params, ret, name) = {
        let cinfo = types.class(class);
        let m = &cinfo.methods[method_idx];
        let name = format!("{}.{}", cinfo.name, m.name);
        let mut params = Vec::with_capacity(m.params.len() + 1);
        if m.kind != MethodKind::Static {
            params.push((true, types.class_ty(class)));
        }
        for p in &m.params {
            params.push((false, *p));
        }
        (params, m.ret, name)
    };
    let params: Vec<TypeId> = params
        .into_iter()
        .map(|(recv, ty)| if recv { types.safe_ref_of(ty) } else { ty })
        .collect();
    let f = Function::new(name, Some(class), params, ret);
    let mut d = FnDecoder {
        r,
        types,
        f,
        entry_used: false,
        label_depth: 0,
        loop_depth: 0,
        nodes: 0,
    };
    // Constant pool.
    let n_consts = cap(d.r.gamma()?, "constant")?;
    for _ in 0..n_consts {
        let ty = read_type(d.r, d.types, 0)?;
        let lit = d.read_literal(ty)?;
        d.f.add_const(Const { ty, lit });
    }
    if d.f.consts.len() != n_consts {
        return Err(DecodeError::Malformed("duplicate constant entries".into()));
    }
    // Phase 1: CST structure.
    let body = d.parse_cst()?;
    d.f.body = body;
    // Phase 2a: opcodes, types, and member references of every block in
    // traversal order. Operands arrive in phase 2b, by which point the
    // complete control-flow graph (exception edges included) and every
    // plane's register count are known — this is what makes decoding a
    // single forward pass with context-determined symbol alphabets.
    let structural = build_cfg(&d.f)?;
    let traversal = structural.traversal.clone();
    if traversal.len() != d.f.block_count() {
        return Err(DecodeError::Malformed("blocks not covered by CST".into()));
    }
    for &b in &traversal {
        let n_phis = cap(d.r.gamma()?, "phi")?;
        for _ in 0..n_phis {
            let ty = read_type(d.r, d.types, 0)?;
            d.f.add_phi(b, ty);
        }
        let n_instrs = cap(d.r.gamma()?, "instruction")?;
        for _ in 0..n_instrs {
            let instr = d.read_instr_fields()?;
            let result = crate::planes::result_plane(d.types, &instr)?;
            d.f.add_instr_unchecked(b, instr, result);
        }
    }
    // Final CFG for the reference phases; unreachable blocks must be
    // empty (verified again later, but needed now so reference decoding
    // never consults an unreachable block).
    let cfg = build_cfg(&d.f)?;
    let dom = DomTree::build(&cfg);
    for &b in &traversal {
        if !cfg.reachable[b.index()] && b != ENTRY {
            let blk = d.f.block(b);
            if !blk.phis.is_empty() || !blk.instrs.is_empty() {
                return Err(DecodeError::Malformed(
                    "code in an unreachable block".into(),
                ));
            }
        }
    }
    // Phase 2b: operand references.
    for &b in &traversal {
        let n_instrs = d.f.block(b).instrs.len();
        for k in 0..n_instrs {
            let instr = d.f.block(b).instrs[k].clone();
            let planes = crate::planes::operand_planes(d.types, &instr)?;
            let mut vals = Vec::with_capacity(planes.len());
            for plane in planes {
                let v = read_ref(d.r, &d.f, &dom, b, Some(k), plane).map_err(|e| {
                    DecodeError::Malformed(format!("operand in {b} instr {k}: {e}"))
                })?;
                vals.push(v);
            }
            let mut it = vals.into_iter();
            let blk = &mut d.f.blocks[b.index()];
            blk.instrs[k].map_operands(|_| it.next().expect("plane per operand"));
            if it.next().is_some() {
                return Err(DecodeError::Malformed("operand arity mismatch".into()));
            }
            // Safe-index results are bound to the array they were
            // checked against (Appendix A).
            if let Instr::IndexCheck { array, .. } = d.f.blocks[b.index()].instrs[k] {
                if let Some(res) = d.f.instr_result(b, k) {
                    d.f.set_provenance(res, Some(array));
                }
            }
        }
    }
    // Phase 2c: CST value references.
    let mut body = std::mem::replace(&mut d.f.body, Cst::Seq(vec![]));
    {
        let mut w = PatchWalk {
            r: d.r,
            types: d.types,
            f: &d.f,
            cfg: &cfg,
            dom: &dom,
        };
        w.walk(&mut body, Fr::Start)?;
    }
    d.f.body = body;
    // Phase 3: phi operands.
    for &b in &cfg.traversal {
        let preds = cfg.preds_of(b).to_vec();
        let n_phis = d.f.block(b).phis.len();
        for k in 0..n_phis {
            let ty = d.f.block(b).phis[k].ty;
            let mut args = Vec::with_capacity(preds.len());
            for e in &preds {
                let limit = match e.kind {
                    EdgeKind::Normal => None,
                    EdgeKind::Exception { upto } => Some(upto as usize),
                };
                let v = read_ref(d.r, &d.f, &dom, e.from, limit, ty)?;
                args.push((e.from, v));
            }
            let result = d.f.phi_result(b, k);
            // Safe-index phis inherit their provenance from the
            // operands (Appendix A); the verifier re-checks agreement.
            if d.types.is_safe_index(ty) {
                let prov = args.first().and_then(|(_, v)| d.f.value(*v).provenance);
                d.f.set_provenance(result, prov);
            }
            d.f.set_phi_args(b, k, args);
        }
    }
    Ok(d.f)
}

fn build_cfg(f: &Function) -> Result<Cfg, DecodeError> {
    Cfg::build(f).map_err(|e| DecodeError::Malformed(format!("control structure: {e}")))
}

impl<'a, 'b> FnDecoder<'a, 'b> {
    fn read_literal(&mut self, ty: TypeId) -> Result<Literal, DecodeError> {
        Ok(match self.types.kind(ty) {
            TypeKind::Prim(PrimKind::Bool) => Literal::Bool(self.r.bits(1)? == 1),
            TypeKind::Prim(PrimKind::Char) => Literal::Char(self.r.bits(16)? as u16),
            TypeKind::Prim(PrimKind::Int) => Literal::Int(self.r.bits(32)? as u32 as i32),
            TypeKind::Prim(PrimKind::Long) => Literal::Long(self.r.bits(64)? as i64),
            TypeKind::Prim(PrimKind::Float) => {
                Literal::Float(f32::from_bits(self.r.bits(32)? as u32))
            }
            TypeKind::Prim(PrimKind::Double) => Literal::Double(f64::from_bits(self.r.bits(64)?)),
            TypeKind::Class(_) | TypeKind::Array(_) => {
                if self.r.bits(1)? == 1 {
                    // Strings live on the imported string plane only;
                    // the module verifier re-checks the class.
                    Literal::Str(self.r.string()?)
                } else {
                    Literal::Null
                }
            }
            _ => return Err(DecodeError::Malformed("constant on a derived plane".into())),
        })
    }

    fn alloc_block(&mut self) -> BlockId {
        if !self.entry_used {
            self.entry_used = true;
            ENTRY
        } else {
            self.f.add_block()
        }
    }

    fn parse_cst(&mut self) -> Result<Cst, DecodeError> {
        self.nodes += 1;
        if self.nodes as u64 > MAX_COUNT {
            return Err(DecodeError::Malformed("CST too large".into()));
        }
        let tag = CstTag::from_u32(self.r.symbol(CST_TAGS)?)
            .ok_or_else(|| DecodeError::Malformed("bad CST tag".into()))?;
        Ok(match tag {
            CstTag::Basic => Cst::Basic(self.alloc_block()),
            CstTag::Seq => {
                let n = cap(self.r.gamma()?, "sequence")?;
                let mut items = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    items.push(self.parse_cst()?);
                }
                Cst::Seq(items)
            }
            CstTag::If => {
                let join = self.alloc_block();
                let then_br = Box::new(self.parse_cst()?);
                let else_br = Box::new(self.parse_cst()?);
                Cst::If {
                    cond: PLACEHOLDER,
                    then_br,
                    else_br,
                    join,
                }
            }
            CstTag::Loop => {
                let header = self.alloc_block();
                self.loop_depth += 1;
                let body = Box::new(self.parse_cst()?);
                self.loop_depth -= 1;
                Cst::Loop { header, body }
            }
            CstTag::Labeled => {
                let join = self.alloc_block();
                self.label_depth += 1;
                let body = Box::new(self.parse_cst()?);
                self.label_depth -= 1;
                Cst::Labeled { body, join }
            }
            CstTag::Break => Cst::Break(self.r.symbol(self.label_depth)?),
            CstTag::Continue => Cst::Continue(self.r.symbol(self.loop_depth)?),
            CstTag::Return => Cst::Return(self.f.ret.map(|_| PLACEHOLDER)),
            CstTag::Throw => Cst::Throw(PLACEHOLDER),
            CstTag::Try => {
                let body = Box::new(self.parse_cst()?);
                let handler_entry = self.alloc_block();
                let handler = Box::new(self.parse_cst()?);
                let join = self.alloc_block();
                Cst::Try {
                    body,
                    handler_entry,
                    handler,
                    join,
                }
            }
        })
    }

    fn read_field_ref(&mut self) -> Result<FieldRef, DecodeError> {
        let class = ClassId(self.r.symbol(self.types.class_count() as u32)?);
        let n = self.types.class(class).fields.len() as u32;
        let index = self.r.symbol(n)?;
        Ok(FieldRef { class, index })
    }

    fn read_method_ref(&mut self) -> Result<MethodRef, DecodeError> {
        let class = ClassId(self.r.symbol(self.types.class_count() as u32)?);
        let n = self.types.class(class).methods.len() as u32;
        let index = self.r.symbol(n)?;
        Ok(MethodRef { class, index })
    }

    #[allow(clippy::too_many_lines)]
    fn read_instr_fields(&mut self) -> Result<Instr, DecodeError> {
        const P: ValueId = PLACEHOLDER;
        let opc = Opc::from_u32(self.r.symbol(OPCODES)?)
            .ok_or_else(|| DecodeError::Malformed("bad opcode".into()))?;
        Ok(match opc {
            Opc::Primitive | Opc::XPrimitive => {
                let ty = read_type(self.r, self.types, 0)?;
                let kind = match self.types.kind(ty) {
                    TypeKind::Prim(p) => p,
                    _ => {
                        return Err(DecodeError::Malformed(
                            "primitive on non-primitive plane".into(),
                        ))
                    }
                };
                let table = primops::ops_of(kind);
                let op = PrimOpId(self.r.symbol(table.len() as u32)? as u16);
                let desc = &table[op.index()];
                let wants_x = opc == Opc::XPrimitive;
                if desc.exceptional != wants_x {
                    return Err(DecodeError::Malformed(
                        "operation exceptionality mismatch".into(),
                    ));
                }
                let args = vec![P; desc.params.len()];
                if wants_x {
                    Instr::XPrimitive { ty, op, args }
                } else {
                    Instr::Primitive { ty, op, args }
                }
            }
            Opc::NullCheck => {
                let ty = read_type(self.r, self.types, 0)?;
                Instr::NullCheck { ty, value: P }
            }
            Opc::IndexCheck => {
                let arr_ty = read_type(self.r, self.types, 0)?;
                Instr::IndexCheck {
                    arr_ty,
                    array: P,
                    index: P,
                }
            }
            Opc::Upcast => {
                let from = read_type(self.r, self.types, 0)?;
                let to = read_type(self.r, self.types, 0)?;
                Instr::Upcast { from, to, value: P }
            }
            Opc::Downcast => {
                let from = read_type(self.r, self.types, 0)?;
                let to = read_type(self.r, self.types, 0)?;
                Instr::Downcast { from, to, value: P }
            }
            Opc::GetField => {
                let ty = read_type(self.r, self.types, 0)?;
                let field = self.read_field_ref()?;
                Instr::GetField {
                    ty,
                    object: P,
                    field,
                }
            }
            Opc::SetField => {
                let ty = read_type(self.r, self.types, 0)?;
                let field = self.read_field_ref()?;
                Instr::SetField {
                    ty,
                    object: P,
                    field,
                    value: P,
                }
            }
            Opc::GetStatic => Instr::GetStatic {
                field: self.read_field_ref()?,
            },
            Opc::SetStatic => Instr::SetStatic {
                field: self.read_field_ref()?,
                value: P,
            },
            Opc::GetElt => {
                let arr_ty = read_type(self.r, self.types, 0)?;
                Instr::GetElt {
                    arr_ty,
                    array: P,
                    index: P,
                }
            }
            Opc::SetElt => {
                let arr_ty = read_type(self.r, self.types, 0)?;
                Instr::SetElt {
                    arr_ty,
                    array: P,
                    index: P,
                    value: P,
                }
            }
            Opc::ArrayLength => {
                let arr_ty = read_type(self.r, self.types, 0)?;
                Instr::ArrayLength { arr_ty, array: P }
            }
            Opc::New => {
                let class_ty = read_type(self.r, self.types, 0)?;
                Instr::New { class_ty }
            }
            Opc::NewArray => {
                let arr_ty = read_type(self.r, self.types, 0)?;
                Instr::NewArray { arr_ty, length: P }
            }
            Opc::XCall => {
                let base_ty = read_type(self.r, self.types, 0)?;
                let method = self.read_method_ref()?;
                let has_recv = self.r.bits(1)? == 1;
                let n = self
                    .types
                    .method(method)
                    .ok_or_else(|| DecodeError::Malformed("bad method".into()))?
                    .params
                    .len();
                Instr::XCall {
                    base_ty,
                    method,
                    receiver: has_recv.then_some(P),
                    args: vec![P; n],
                }
            }
            Opc::XDispatch => {
                let base_ty = read_type(self.r, self.types, 0)?;
                let method = self.read_method_ref()?;
                let n = self
                    .types
                    .method(method)
                    .ok_or_else(|| DecodeError::Malformed("bad method".into()))?
                    .params
                    .len();
                Instr::XDispatch {
                    base_ty,
                    method,
                    receiver: P,
                    args: vec![P; n],
                }
            }
            Opc::RefEq => {
                let ty = read_type(self.r, self.types, 0)?;
                Instr::RefEq { ty, a: P, b: P }
            }
            Opc::InstanceOf => {
                let from = read_type(self.r, self.types, 0)?;
                let target = read_type(self.r, self.types, 0)?;
                Instr::InstanceOf {
                    from,
                    target,
                    value: P,
                }
            }
            Opc::Catch => {
                let ty = read_type(self.r, self.types, 0)?;
                Instr::Catch { ty }
            }
        })
    }
}

// --------------------------------------------------------------------
// Phase 2c: patch the CST value references in frontier-walk order.

#[derive(Clone, Copy, PartialEq)]
enum Fr {
    Start,
    At(BlockId),
    Dead,
}

struct PatchWalk<'a, 'b> {
    r: &'a mut BitReader<'b>,
    types: &'a mut TypeTable,
    f: &'a Function,
    cfg: &'a Cfg,
    dom: &'a DomTree,
}

impl<'a, 'b> PatchWalk<'a, 'b> {
    fn live_join(&self, join: BlockId) -> Fr {
        if self.cfg.preds_of(join).is_empty() {
            Fr::Dead
        } else {
            Fr::At(join)
        }
    }

    fn walk(&mut self, cst: &mut Cst, fr: Fr) -> Result<Fr, DecodeError> {
        Ok(match cst {
            Cst::Basic(b) => match fr {
                Fr::Dead => Fr::Dead,
                _ => Fr::At(*b),
            },
            Cst::Seq(items) => {
                let mut cur = fr;
                for c in items {
                    cur = self.walk(c, cur)?;
                }
                cur
            }
            Cst::If {
                cond,
                then_br,
                else_br,
                join,
            } => {
                if let Fr::At(b) = fr {
                    let bool_ty = self.types.bool_ty();
                    *cond = read_ref(self.r, self.f, self.dom, b, None, bool_ty)?;
                }
                let join = *join;
                self.walk(then_br, fr)?;
                self.walk(else_br, fr)?;
                self.live_join(join)
            }
            Cst::Loop { header, body } => {
                let inner = match fr {
                    Fr::Dead => Fr::Dead,
                    _ => Fr::At(*header),
                };
                self.walk(body, inner)?;
                Fr::Dead
            }
            Cst::Labeled { body, join } => {
                let join = *join;
                self.walk(body, fr)?;
                self.live_join(join)
            }
            Cst::Break(_) | Cst::Continue(_) => Fr::Dead,
            Cst::Return(v) => {
                if let (Fr::At(b), Some(slot)) = (fr, v.as_mut()) {
                    let plane = self
                        .f
                        .ret
                        .ok_or_else(|| DecodeError::Malformed("value return in void".into()))?;
                    *slot = read_ref(self.r, self.f, self.dom, b, None, plane)?;
                }
                Fr::Dead
            }
            Cst::Throw(v) => {
                if let Fr::At(b) = fr {
                    let plane = read_type(self.r, self.types, 0)?;
                    *v = read_ref(self.r, self.f, self.dom, b, None, plane)?;
                }
                Fr::Dead
            }
            Cst::Try {
                body,
                handler_entry,
                handler,
                join,
            } => {
                let (he, join) = (*handler_entry, *join);
                self.walk(body, fr)?;
                let h = if self.cfg.preds_of(he).is_empty() {
                    Fr::Dead
                } else {
                    Fr::At(he)
                };
                self.walk(handler, h)?;
                self.live_join(join)
            }
        })
    }
}
