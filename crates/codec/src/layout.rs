//! Wire-layout constants shared by encoder and decoder.

/// Magic number `"STSA"`.
pub const MAGIC: u32 = 0x5354_5341;
/// Format version.
pub const VERSION: u8 = 1;

/// Opcode numbering (cardinality [`OPCODES`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
#[allow(missing_docs)]
pub enum Opc {
    Primitive = 0,
    XPrimitive,
    NullCheck,
    IndexCheck,
    Upcast,
    Downcast,
    GetField,
    SetField,
    GetStatic,
    SetStatic,
    GetElt,
    SetElt,
    ArrayLength,
    New,
    NewArray,
    XCall,
    XDispatch,
    RefEq,
    InstanceOf,
    Catch,
}

/// Number of opcodes.
pub const OPCODES: u32 = 20;

impl Opc {
    /// Decodes an opcode symbol.
    pub fn from_u32(v: u32) -> Option<Opc> {
        use Opc::*;
        Some(match v {
            0 => Primitive,
            1 => XPrimitive,
            2 => NullCheck,
            3 => IndexCheck,
            4 => Upcast,
            5 => Downcast,
            6 => GetField,
            7 => SetField,
            8 => GetStatic,
            9 => SetStatic,
            10 => GetElt,
            11 => SetElt,
            12 => ArrayLength,
            13 => New,
            14 => NewArray,
            15 => XCall,
            16 => XDispatch,
            17 => RefEq,
            18 => InstanceOf,
            19 => Catch,
            _ => return None,
        })
    }
}

/// CST production numbering (cardinality [`CST_TAGS`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum CstTag {
    Basic = 0,
    Seq,
    If,
    Loop,
    Labeled,
    Break,
    Continue,
    Return,
    Throw,
    Try,
}

/// Number of CST productions.
pub const CST_TAGS: u32 = 10;

impl CstTag {
    /// Decodes a CST production symbol.
    pub fn from_u32(v: u32) -> Option<CstTag> {
        use CstTag::*;
        Some(match v {
            0 => Basic,
            1 => Seq,
            2 => If,
            3 => Loop,
            4 => Labeled,
            5 => Break,
            6 => Continue,
            7 => Return,
            8 => Throw,
            9 => Try,
            _ => return None,
        })
    }
}

/// Method-kind numbering (cardinality 3).
pub const METHOD_KINDS: u32 = 3;
