//! Branch-condition guards: path facts the CST hands out for free.
//!
//! SSA facts are per-value and hence path-insensitive, but a branch
//! condition establishes a *relation between values* that holds on
//! every block of the taken subtree: inside `if (i < n) { … }` the
//! relation `i < n` holds wherever that `then` subtree executes,
//! because SSA values are immutable and the CST guarantees the branch
//! entry dominates the whole subtree. Collecting these per block is a
//! single CST walk — no dominator queries needed.
//!
//! Guards power the flow-sensitive part of nullness (`x != null`
//! branches) and range analysis (loop guards `i < a.length`).

use safetsa_core::cst::Cst;
use safetsa_core::function::Function;
use safetsa_core::instr::Instr;
use safetsa_core::primops;
use safetsa_core::types::{PrimKind, TypeKind, TypeTable};
use safetsa_core::value::{BlockId, Def, Literal, ValueId};

/// One relation established by a dominating branch condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Guard {
    /// `a < b` over the `int` plane (signed).
    IntLt(ValueId, ValueId),
    /// `a <= b` over the `int` plane (signed).
    IntLe(ValueId, ValueId),
    /// `a == b` over the `int` plane.
    IntEq(ValueId, ValueId),
    /// The reference value is known non-null on this path.
    NonNull(ValueId),
    /// The reference value is known null on this path.
    IsNull(ValueId),
}

/// The guards active in each block (indexed by block id).
#[derive(Debug, Clone, Default)]
pub struct BlockGuards {
    per_block: Vec<Vec<Guard>>,
}

impl BlockGuards {
    /// Guards that hold whenever `b` executes.
    pub fn at(&self, b: BlockId) -> &[Guard] {
        self.per_block
            .get(b.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

/// Whether `v` is the pre-loaded `null` constant.
fn is_null_const(f: &Function, v: ValueId) -> bool {
    match f.value(v).def {
        Def::Const(i) => matches!(f.consts[i as usize].lit, Literal::Null),
        _ => false,
    }
}

/// The name of the primitive op computing `v`, with its operand plane
/// kind and arguments, if `v` is a primitive result.
fn prim_of(f: &Function, types: &TypeTable, v: ValueId) -> Option<(PrimKind, &'static str, Vec<ValueId>)> {
    let Def::Instr(b, k) = f.value(v).def else {
        return None;
    };
    match &f.block(b).instrs[k as usize] {
        Instr::Primitive { ty, op, args } => {
            let TypeKind::Prim(kind) = types.kind(*ty) else {
                return None;
            };
            let name = primops::resolve(kind, *op)?.name;
            Some((kind, name, args.clone()))
        }
        _ => None,
    }
}

/// Relations implied by `cond` evaluating to `polarity`.
fn cond_guards(f: &Function, types: &TypeTable, cond: ValueId, polarity: bool, out: &mut Vec<Guard>) {
    let Def::Instr(b, k) = f.value(cond).def else {
        return;
    };
    if let Instr::RefEq { a, b: rhs, .. } = &f.block(b).instrs[k as usize] {
        let (a, rhs) = (*a, *rhs);
        let target = if is_null_const(f, a) {
            Some(rhs)
        } else if is_null_const(f, rhs) {
            Some(a)
        } else {
            None
        };
        if let Some(t) = target {
            out.push(if polarity {
                Guard::IsNull(t)
            } else {
                Guard::NonNull(t)
            });
        }
        return;
    }
    let Some((kind, name, args)) = prim_of(f, types, cond) else {
        return;
    };
    match (kind, name) {
        (PrimKind::Bool, "not") => cond_guards(f, types, args[0], !polarity, out),
        (PrimKind::Bool, "and") if polarity => {
            cond_guards(f, types, args[0], true, out);
            cond_guards(f, types, args[1], true, out);
        }
        (PrimKind::Bool, "or") if !polarity => {
            cond_guards(f, types, args[0], false, out);
            cond_guards(f, types, args[1], false, out);
        }
        (PrimKind::Int, cmp) => {
            let (a, b) = (args[0], args[1]);
            match (cmp, polarity) {
                ("lt", true) | ("ge", false) => out.push(Guard::IntLt(a, b)),
                ("le", true) | ("gt", false) => out.push(Guard::IntLe(a, b)),
                ("gt", true) | ("le", false) => out.push(Guard::IntLt(b, a)),
                ("ge", true) | ("lt", false) => out.push(Guard::IntLe(b, a)),
                ("eq", true) | ("ne", false) => out.push(Guard::IntEq(a, b)),
                _ => {}
            }
        }
        _ => {}
    }
}

/// Collects the active guard set for every block of `f` by walking the
/// CST with a stack of branch relations.
pub fn block_guards(f: &Function, types: &TypeTable) -> BlockGuards {
    let mut bg = BlockGuards {
        per_block: vec![Vec::new(); f.blocks.len()],
    };
    let mut active: Vec<Guard> = Vec::new();
    walk(f, types, &f.body, &mut active, &mut bg);
    bg
}

fn assign(bg: &mut BlockGuards, b: BlockId, active: &[Guard]) {
    bg.per_block[b.index()] = active.to_vec();
}

fn walk(f: &Function, types: &TypeTable, cst: &Cst, active: &mut Vec<Guard>, bg: &mut BlockGuards) {
    match cst {
        Cst::Basic(b) => assign(bg, *b, active),
        Cst::Seq(items) => {
            for c in items {
                walk(f, types, c, active, bg);
            }
        }
        Cst::If {
            cond,
            then_br,
            else_br,
            join,
        } => {
            let depth = active.len();
            cond_guards(f, types, *cond, true, active);
            walk(f, types, then_br, active, bg);
            active.truncate(depth);
            cond_guards(f, types, *cond, false, active);
            walk(f, types, else_br, active, bg);
            active.truncate(depth);
            assign(bg, *join, active);
        }
        Cst::Loop { header, body } => {
            assign(bg, *header, active);
            walk(f, types, body, active, bg);
        }
        Cst::Labeled { body, join } => {
            walk(f, types, body, active, bg);
            assign(bg, *join, active);
        }
        Cst::Try {
            body,
            handler_entry,
            handler,
            join,
        } => {
            walk(f, types, body, active, bg);
            // Guards established by scopes enclosing the whole `try`
            // still hold in the handler (the branch entry dominates the
            // try, hence the handler too); guards from inside the body
            // were popped with their subtrees.
            assign(bg, *handler_entry, active);
            walk(f, types, handler, active, bg);
            assign(bg, *join, active);
        }
        Cst::Break(_) | Cst::Continue(_) | Cst::Return(_) | Cst::Throw(_) => {}
    }
}
