//! Integer range analysis with symbolic `arraylength`-relative bounds.
//!
//! Every `int`-plane value gets an interval `[lo, hi]` (clamped to the
//! 32-bit range) plus an optional *symbolic* upper bound
//! `v < length(A) + offset`, where `A` identifies an array by its
//! canonical origin value. The symbolic bound is what lets the classic
//! loop idiom prove its own bounds check redundant:
//!
//! ```text
//! i₂ = phi(0, i₃)            ; i₂ ∈ [0, 2³¹-1]   (see below)
//! len = arraylength a        ; len = length(a), so len < length(a)+1
//! guard: i₂ < len            ; in the body: i₂ < length(a)
//! … indexcheck a, i₂ …       ; 0 ≤ i₂ < length(a)  ⇒ in bounds
//! i₃ = i₂ + 1                ; [1, 2³¹-1] — no wrap, since the add
//!                            ;   happens under the guard i₂ < len
//! ```
//!
//! The lower bound of the loop phi needs the guard too: the back edge
//! only executes under `i₂ < len ≤ 2³¹-1`, so `i₂ + 1` cannot wrap and
//! `i₃ ≥ 1`; joined with the init edge the phi stays `≥ 0`. The engine
//! gets this right because phi arguments are narrowed by the guards of
//! the edge's *source* block ([`crate::framework::ForwardAnalysis::phi_arg`]).
//!
//! ### Soundness of the symbolic bound
//!
//! `length(A)` is a fixed number for the lifetime of the array (Java
//! arrays cannot be resized), and an SSA value names one runtime
//! array, so `v < length(A) + k` is a plain arithmetic statement. Two
//! facts introduce it: the result of `arraylength A` equals
//! `length(A)` exactly, and the length operand of `newarray` equals
//! the new array's length exactly (on every path where the array
//! exists). It propagates through `±constant` only when the numeric
//! interval already excludes 32-bit wraparound, and it dies at any
//! join where the two sides disagree. Array identity is compared by
//! chasing both sides through the reference-preserving instructions
//! (`nullcheck`, `downcast`, `upcast`) to a common origin.

use crate::framework::{run_forward, Facts, Fixpoint, ForwardAnalysis, JoinLattice};
use crate::guards::{block_guards, BlockGuards, Guard};
use safetsa_core::cfg::Cfg;
use safetsa_core::function::Function;
use safetsa_core::instr::Instr;
use safetsa_core::primops;
use safetsa_core::types::{PrimKind, TypeId, TypeKind, TypeTable};
use safetsa_core::value::{BlockId, Def, Literal, ValueId};
use std::collections::HashMap;

const I32_MIN: i64 = i32::MIN as i64;
const I32_MAX: i64 = i32::MAX as i64;

/// A symbolic upper bound: `value < length(array) + offset`, with
/// `array` a canonical origin value (see [`origin`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LenRel {
    /// The canonical origin value of the array.
    pub array: ValueId,
    /// The offset `k` in `value < length(array) + k`.
    pub offset: i64,
}

/// The interval fact for one `int` value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Range {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
    /// Optional symbolic upper bound relative to an array length.
    pub len_rel: Option<LenRel>,
}

impl Range {
    /// The full 32-bit range (lattice top).
    pub const FULL: Range = Range {
        lo: I32_MIN,
        hi: I32_MAX,
        len_rel: None,
    };

    /// The singleton range `[c, c]`.
    pub fn exactly(c: i64) -> Range {
        Range {
            lo: c,
            hi: c,
            len_rel: None,
        }
    }

    /// Clamps a mathematical interval into a valid fact: anything that
    /// escapes the 32-bit range may have wrapped, so it degrades to
    /// [`Range::FULL`].
    fn fit(lo: i64, hi: i64, len_rel: Option<LenRel>) -> Range {
        if lo < I32_MIN || hi > I32_MAX || lo > hi {
            Range::FULL
        } else {
            Range { lo, hi, len_rel }
        }
    }

    /// Whether the range is the single constant `c`.
    pub fn is_exactly(&self, c: i64) -> bool {
        self.lo == c && self.hi == c
    }

    /// The constant this range pins down, if singleton.
    pub fn as_const(&self) -> Option<i64> {
        (self.lo == self.hi).then_some(self.lo)
    }
}

impl JoinLattice for Range {
    fn join(&self, other: &Range) -> Range {
        Range {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
            len_rel: if self.len_rel == other.len_rel {
                self.len_rel
            } else {
                None
            },
        }
    }
}

/// Chases `v` through reference-preserving instructions (`nullcheck`,
/// `downcast`, `upcast`) to its canonical origin value.
pub fn origin(f: &Function, mut v: ValueId) -> ValueId {
    loop {
        let Def::Instr(b, k) = f.value(v).def else {
            return v;
        };
        match &f.block(b).instrs[k as usize] {
            Instr::NullCheck { value, .. }
            | Instr::Downcast { value, .. }
            | Instr::Upcast { value, .. } => v = *value,
            _ => return v,
        }
    }
}

struct Analysis<'a> {
    int_ty: TypeId,
    types: &'a TypeTable,
    guards: &'a BlockGuards,
    /// value → arrays whose exact length it equals (`arraylength`
    /// results and `newarray` length operands).
    len_sources: &'a HashMap<ValueId, Vec<ValueId>>,
}

/// The operand plane kind, op name, and arguments of a primitive
/// instruction (checked or not).
fn prim_parts<'i>(
    types: &TypeTable,
    instr: &'i Instr,
) -> Option<(PrimKind, &'static str, &'i [ValueId])> {
    let (ty, op, args) = match instr {
        Instr::Primitive { ty, op, args } | Instr::XPrimitive { ty, op, args } => (ty, op, args),
        _ => return None,
    };
    let TypeKind::Prim(kind) = types.kind(*ty) else {
        return None;
    };
    Some((kind, primops::resolve(kind, *op)?.name, args))
}

impl Analysis<'_> {
    fn models(&self, f: &Function, v: ValueId) -> bool {
        f.value_ty(v) == self.int_ty
    }

    /// All symbolic bounds `y < length(A) + k` known for `y`: its own
    /// fact plus the exact-length sources (`y = length(A)` gives
    /// `y < length(A) + 1`).
    fn len_rels(&self, facts: &Facts<Range>, y: ValueId) -> Vec<LenRel> {
        let mut out = Vec::new();
        if let Some(r) = facts.get(y) {
            if let Some(lr) = r.len_rel {
                out.push(lr);
            }
        }
        if let Some(arrays) = self.len_sources.get(&y) {
            for &a in arrays {
                out.push(LenRel {
                    array: a,
                    offset: 1,
                });
            }
        }
        out
    }

    /// The raw fact of `v` (top if unmodeled-yet), numeric part only.
    fn raw(&self, facts: &Facts<Range>, v: ValueId) -> Range {
        facts.get(v).copied().unwrap_or(Range::FULL)
    }

    /// `v`'s fact narrowed by the guards active in block `b`.
    fn narrowed(&self, facts: &Facts<Range>, v: ValueId, b: BlockId) -> Range {
        let mut r = self.raw(facts, v);
        for g in self.guards.at(b) {
            match *g {
                Guard::IntLt(x, y) if x == v => {
                    r.hi = r.hi.min(self.raw(facts, y).hi.saturating_sub(1));
                    if r.len_rel.is_none() {
                        r.len_rel = self
                            .len_rels(facts, y)
                            .first()
                            .map(|lr| LenRel {
                                array: lr.array,
                                offset: lr.offset - 1,
                            });
                    }
                }
                Guard::IntLt(y, x) if x == v => {
                    r.lo = r.lo.max(self.raw(facts, y).lo.saturating_add(1));
                }
                Guard::IntLe(x, y) if x == v => {
                    r.hi = r.hi.min(self.raw(facts, y).hi);
                    if r.len_rel.is_none() {
                        r.len_rel = self.len_rels(facts, y).first().copied();
                    }
                }
                Guard::IntLe(y, x) if x == v => {
                    r.lo = r.lo.max(self.raw(facts, y).lo);
                }
                Guard::IntEq(x, y) if x == v => {
                    let o = self.raw(facts, y);
                    r.lo = r.lo.max(o.lo);
                    r.hi = r.hi.min(o.hi);
                }
                Guard::IntEq(y, x) if x == v => {
                    let o = self.raw(facts, y);
                    r.lo = r.lo.max(o.lo);
                    r.hi = r.hi.min(o.hi);
                }
                _ => {}
            }
        }
        if r.lo > r.hi {
            // Contradictory guards: the block is unreachable in
            // practice; keep the fact well formed.
            r = Range {
                lo: r.lo.min(r.hi),
                hi: r.lo.max(r.hi),
                len_rel: r.len_rel,
            };
        }
        r
    }

    fn binary(&self, name: &str, a: Range, b: Range) -> Range {
        let max_abs = |r: Range| r.lo.abs().max(r.hi.abs());
        match name {
            "add" => {
                let len_rel = match (a.len_rel, b.as_const(), b.len_rel, a.as_const()) {
                    // Propagate `x < len + k` through `x + c` only when
                    // the numeric interval proves the add cannot wrap.
                    (Some(lr), Some(c), _, _) if a.hi + c <= I32_MAX && a.lo + c >= I32_MIN => {
                        Some(LenRel {
                            array: lr.array,
                            offset: lr.offset + c,
                        })
                    }
                    (_, _, Some(lr), Some(c)) if b.hi + c <= I32_MAX && b.lo + c >= I32_MIN => {
                        Some(LenRel {
                            array: lr.array,
                            offset: lr.offset + c,
                        })
                    }
                    _ => None,
                };
                Range::fit(a.lo + b.lo, a.hi + b.hi, len_rel)
            }
            "sub" => {
                let len_rel = match (a.len_rel, b.as_const()) {
                    (Some(lr), Some(c)) if a.hi - c <= I32_MAX && a.lo - c >= I32_MIN => {
                        Some(LenRel {
                            array: lr.array,
                            offset: lr.offset - c,
                        })
                    }
                    _ => None,
                };
                Range::fit(a.lo - b.hi, a.hi - b.lo, len_rel)
            }
            "mul" => {
                let ps = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi];
                Range::fit(
                    ps.iter().copied().min().unwrap(),
                    ps.iter().copied().max().unwrap(),
                    None,
                )
            }
            "div" => {
                if a.lo >= 0 && b.lo >= 1 {
                    Range::fit(0, a.hi, None)
                } else {
                    Range::fit(-max_abs(a), max_abs(a), None)
                }
            }
            "rem" => {
                let m = max_abs(b).saturating_sub(1).max(0);
                if a.lo >= 0 {
                    Range::fit(0, m.min(a.hi), None)
                } else {
                    Range::fit(-m, m, None)
                }
            }
            "and" => {
                if a.lo >= 0 && b.lo >= 0 {
                    Range::fit(0, a.hi.min(b.hi), None)
                } else {
                    Range::FULL
                }
            }
            "or" | "xor" => {
                if a.lo >= 0 && b.lo >= 0 {
                    Range::fit(0, I32_MAX, None)
                } else {
                    Range::FULL
                }
            }
            "shr" | "ushr" => {
                if a.lo >= 0 {
                    Range::fit(0, a.hi, None)
                } else {
                    Range::FULL
                }
            }
            _ => Range::FULL,
        }
    }
}

impl ForwardAnalysis for Analysis<'_> {
    type Fact = Range;

    fn preload(&mut self, f: &Function, v: ValueId) -> Option<Range> {
        if !self.models(f, v) {
            return None;
        }
        Some(match f.value(v).def {
            Def::Const(i) => match f.consts[i as usize].lit {
                Literal::Int(c) => Range::exactly(c as i64),
                _ => Range::FULL,
            },
            _ => Range::FULL,
        })
    }

    fn transfer(&mut self, f: &Function, b: BlockId, k: usize, facts: &Facts<Range>) -> Option<Range> {
        let result = f.instr_result(b, k)?;
        if !self.models(f, result) {
            return None;
        }
        let instr = &f.block(b).instrs[k];
        if let Instr::ArrayLength { array, .. } = instr {
            return Some(Range {
                lo: 0,
                hi: I32_MAX,
                len_rel: Some(LenRel {
                    array: origin(f, *array),
                    offset: 1,
                }),
            });
        }
        let Some((kind, name, args)) = prim_parts(self.types, instr) else {
            // Loads, calls, element reads: any int.
            return Some(Range::FULL);
        };
        Some(match (kind, name) {
            (PrimKind::Int, "neg") => {
                let a = self.narrowed(facts, args[0], b);
                Range::fit(-a.hi, -a.lo, None)
            }
            (PrimKind::Int, "not") => {
                let a = self.narrowed(facts, args[0], b);
                Range::fit(-a.hi - 1, -a.lo - 1, None)
            }
            (PrimKind::Int, op2) if args.len() == 2 => {
                let a = self.narrowed(facts, args[0], b);
                let c = self.narrowed(facts, args[1], b);
                self.binary(op2, a, c)
            }
            (PrimKind::Char, "to_int") => Range::fit(0, 0xFFFF, None),
            (PrimKind::Bool, _) => Range::fit(0, 1, None),
            _ => Range::FULL,
        })
    }

    fn phi_arg(
        &mut self,
        _f: &Function,
        pred: BlockId,
        arg: ValueId,
        facts: &Facts<Range>,
    ) -> Option<Range> {
        facts.get(arg)?;
        Some(self.narrowed(facts, arg, pred))
    }

    fn widen(&mut self, old: &Range, new: Range) -> Range {
        Range {
            lo: if new.lo < old.lo { I32_MIN } else { new.lo },
            hi: if new.hi > old.hi { I32_MAX } else { new.hi },
            len_rel: new.len_rel,
        }
    }
}

/// The fixpoint range facts for one function.
#[derive(Debug)]
pub struct RangeAnalysis {
    facts: Facts<Range>,
    guards: BlockGuards,
    len_sources: HashMap<ValueId, Vec<ValueId>>,
    /// Constant array lengths, keyed by the array's origin value.
    const_len: HashMap<ValueId, i64>,
    /// Fixpoint passes until stabilization.
    pub iterations: u64,
}

impl RangeAnalysis {
    /// The flow-insensitive fact for `v` (top if unmodeled).
    pub fn of(&self, v: ValueId) -> Range {
        self.facts.get(v).copied().unwrap_or(Range::FULL)
    }

    /// The fact for `v` as seen from block `b` (narrowed by guards).
    pub fn at(&self, types: &TypeTable, v: ValueId, b: BlockId) -> Range {
        let int_ty = types.int_ty();
        let a = Analysis {
            int_ty,
            types,
            guards: &self.guards,
            len_sources: &self.len_sources,
        };
        a.narrowed(&self.facts, v, b)
    }

    /// Whether `indexcheck array, index` in block `b` is provably in
    /// bounds: `0 ≤ index` and `index < length(array)`.
    pub fn proves_index(
        &self,
        types: &TypeTable,
        f: &Function,
        b: BlockId,
        array: ValueId,
        index: ValueId,
    ) -> bool {
        let a_origin = origin(f, array);
        let r = self.at(types, index, b);
        if r.lo < 0 {
            return false;
        }
        // Symbolic: a matching `index < length(array) + k, k ≤ 0` fact.
        if let Some(lr) = r.len_rel {
            if lr.array == a_origin && lr.offset <= 0 {
                return true;
            }
        }
        // Guard-direct: `index < y` with `y ≤ length(array)` (k ≤ 1),
        // or `index ≤ y` with `y < length(array)` (k ≤ 0).
        let an = Analysis {
            int_ty: types.int_ty(),
            types,
            guards: &self.guards,
            len_sources: &self.len_sources,
        };
        for g in self.guards.at(b) {
            let (y, strict) = match *g {
                Guard::IntLt(x, y) if x == index => (y, true),
                Guard::IntLe(x, y) if x == index => (y, false),
                _ => continue,
            };
            let limit = if strict { 1 } else { 0 };
            if an
                .len_rels(&self.facts, y)
                .iter()
                .any(|lr| lr.array == a_origin && lr.offset <= limit)
            {
                return true;
            }
        }
        // Constant-length arrays: `hi < length`.
        if let Some(&len) = self.const_len.get(&a_origin) {
            if r.hi < len {
                return true;
            }
        }
        false
    }

    /// Whether `indexcheck array, index` in block `b` is provably OUT
    /// of bounds — it traps on every execution.
    pub fn always_out_of_bounds(
        &self,
        types: &TypeTable,
        f: &Function,
        b: BlockId,
        array: ValueId,
        index: ValueId,
    ) -> bool {
        let r = self.at(types, index, b);
        if r.hi < 0 {
            return true;
        }
        if let Some(&len) = self.const_len.get(&origin(f, array)) {
            if r.lo >= len {
                return true;
            }
        }
        false
    }

    /// Number of values with a computed fact (telemetry).
    pub fn facts_computed(&self) -> u64 {
        self.facts.computed()
    }
}

/// Runs range analysis over `f`.
pub fn analyze(types: &TypeTable, f: &Function, cfg: &Cfg) -> RangeAnalysis {
    let guards = block_guards(f, types);
    // Pre-scan: exact-length sources and constant array lengths.
    let mut len_sources: HashMap<ValueId, Vec<ValueId>> = HashMap::new();
    let mut const_len: HashMap<ValueId, i64> = HashMap::new();
    for (bi, block) in f.blocks.iter().enumerate() {
        let b = BlockId(bi as u32);
        for (k, instr) in block.instrs.iter().enumerate() {
            match instr {
                Instr::ArrayLength { array, .. } => {
                    if let Some(r) = f.instr_result(b, k) {
                        len_sources.entry(r).or_default().push(origin(f, *array));
                    }
                }
                Instr::NewArray { length, .. } => {
                    if let Some(r) = f.instr_result(b, k) {
                        len_sources.entry(*length).or_default().push(r);
                        if let Def::Const(i) = f.value(*length).def {
                            if let Literal::Int(c) = f.consts[i as usize].lit {
                                const_len.insert(r, c as i64);
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }
    let mut a = Analysis {
        int_ty: types.int_ty(),
        types,
        guards: &guards,
        len_sources: &len_sources,
    };
    let Fixpoint { facts, iterations } = run_forward(f, cfg, &mut a);
    RangeAnalysis {
        facts,
        guards,
        len_sources,
        const_len,
        iterations,
    }
}
