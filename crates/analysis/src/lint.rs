//! The IR linter: accumulates every diagnostic the analyses can prove
//! about a module, with function/block locations.
//!
//! Severities follow one rule: **errors** are sites that provably trap
//! on every execution reaching them *outside* any `try` region (an
//! always-null dereference, a provably out-of-bounds index) — running
//! the code cannot do what it says. Everything else — dead stores,
//! unreachable branches, constant conditions, unused values — is a
//! **warning**: suspicious, semantics-preserving to remove, and often
//! intentional in test code. A provable trap *inside* a `try` is
//! downgraded to a warning too, because trapping may be exactly the
//! point (exception-path tests). **Notes** are advisory observations
//! that are not even suspicious — facts the heap analyses can see
//! (such as aliasing that pins a load inside a loop) that explain why
//! the optimizer behaves the way it does.

use crate::alias;
use crate::escape;
use crate::liveness::{self, is_pure};
use crate::nullness::{self, Nullity};
use crate::range::{self, origin};
use safetsa_core::cfg::Cfg;
use safetsa_core::cst::Cst;
use safetsa_core::function::Function;
use safetsa_core::instr::Instr;
use safetsa_core::module::Module;
use safetsa_core::primops;
use safetsa_core::types::{FieldRef, PrimKind, TypeId, TypeKind, TypeTable};
use safetsa_core::value::{BlockId, Def, Literal, ValueId};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The code provably traps when executed; almost certainly a bug.
    Error,
    /// Suspicious but semantics-preserving.
    Warning,
    /// Advisory observation; informational only.
    Note,
}

impl Severity {
    /// The lowercase name (`error` / `warning` / `note`).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

/// One linter finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// Stable machine-readable kind slug.
    pub kind: &'static str,
    /// The containing function (`Class.method`).
    pub function: String,
    /// The block of the offending site.
    pub block: BlockId,
    /// Instruction index within the block, when the site is an
    /// instruction.
    pub instr: Option<usize>,
    /// Human-readable explanation.
    pub message: String,
}

/// Lints every function of `m`; diagnostics come out in deterministic
/// (function, block, instruction) order.
pub fn lint_module(m: &Module) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in &m.functions {
        out.extend(lint_function(&m.types, f));
    }
    out
}

/// Blocks inside any `try` body (where a provable trap is plausibly
/// intentional and gets downgraded to a warning).
fn protected_blocks(cst: &Cst, depth: usize, out: &mut HashSet<BlockId>) {
    match cst {
        Cst::Basic(b) if depth > 0 => {
            out.insert(*b);
        }
        Cst::Seq(items) => {
            for c in items {
                protected_blocks(c, depth, out);
            }
        }
        Cst::If {
            then_br, else_br, ..
        } => {
            protected_blocks(then_br, depth, out);
            protected_blocks(else_br, depth, out);
        }
        Cst::Loop { body, .. } | Cst::Labeled { body, .. } => protected_blocks(body, depth, out),
        Cst::Try { body, handler, .. } => {
            protected_blocks(body, depth + 1, out);
            protected_blocks(handler, depth, out);
        }
        _ => {}
    }
}

/// Lints one function.
pub fn lint_function(types: &TypeTable, f: &Function) -> Vec<Diagnostic> {
    let Ok(cfg) = Cfg::build(f) else {
        return Vec::new();
    };
    let nn = nullness::analyze(types, f, &cfg);
    let rg = range::analyze(types, f, &cfg);
    let lv = liveness::analyze(f, &cfg);
    let mut protected = HashSet::new();
    protected_blocks(&f.body, 0, &mut protected);

    let mut out = Vec::new();
    let mut push = |severity, kind, block, instr, message: String| {
        out.push(Diagnostic {
            severity,
            kind,
            function: f.name.clone(),
            block,
            instr,
            message,
        });
    };
    let trap_severity = |b: &BlockId| {
        if protected.contains(b) {
            Severity::Warning
        } else {
            Severity::Error
        }
    };

    for (bi, block) in f.blocks.iter().enumerate() {
        let b = BlockId(bi as u32);
        if !cfg.reachable[bi] {
            continue;
        }
        let mut last_store: HashMap<StoreKey, usize> = HashMap::new();
        for (k, instr) in block.instrs.iter().enumerate() {
            match instr {
                Instr::NullCheck { value, .. } if nn.at(*value, b) == Nullity::Null => {
                    push(
                        trap_severity(&b),
                        "always-null-deref",
                        b,
                        Some(k),
                        format!("{value} is provably null; this dereference always traps"),
                    );
                }
                Instr::IndexCheck { array, index, .. }
                    if rg.always_out_of_bounds(types, f, b, *array, *index) =>
                {
                    let r = rg.at(types, *index, b);
                    push(
                        trap_severity(&b),
                        "out-of-bounds-index",
                        b,
                        Some(k),
                        format!(
                            "index {index} in [{}, {}] is provably out of bounds; this check always traps",
                            r.lo, r.hi
                        ),
                    );
                }
                _ => {}
            }
            // Dead stores: a store overwritten by a later store to the
            // same location with no possible observer in between. An
            // intervening read, call, or *fallible* check re-exposes
            // the first store; checks the analyses prove infallible do
            // not.
            match store_key(f, instr) {
                StoreEvent::Store(key) => {
                    if let Some(&j) = last_store.get(&key) {
                        push(
                            Severity::Warning,
                            "dead-store",
                            b,
                            Some(j),
                            format!("stored value is overwritten at instruction {k} before any read"),
                        );
                    }
                    last_store.insert(key, k);
                }
                StoreEvent::Observer => last_store.clear(),
                StoreEvent::None => {
                    let fallible = match instr {
                        Instr::NullCheck { value, .. } => nn.at(*value, b) != Nullity::NonNull,
                        Instr::IndexCheck { array, index, .. } => {
                            !rg.proves_index(types, f, b, *array, *index)
                        }
                        other => other.is_exceptional(),
                    };
                    if fallible {
                        last_store.clear();
                    }
                }
            }
            // Unused values: pure instructions whose result cannot
            // influence observable behaviour.
            if let Some(r) = f.instr_result(b, k) {
                if is_pure(instr) && !lv.is_live(r) {
                    push(
                        Severity::Warning,
                        "unused-value",
                        b,
                        Some(k),
                        format!("result {r} of `{}` is never used", instr.mnemonic()),
                    );
                }
            }
        }
    }

    // Constant branch conditions and the unreachable code they imply.
    lint_branches(types, f, &f.body, &nn, &rg, &mut out);

    // Heap lints over the allocation-site alias and escape facts.
    lint_heap(types, f, &cfg, &mut out);

    out.sort_by_key(|d| (d.block.0, d.instr));
    out
}

/// Heap lints over the allocation-site alias and escape analyses —
/// the same facts that power `opt`'s load forwarding and dead-store
/// elimination, surfaced as diagnostics:
///
/// * `never-read-store` (warning): a store through a base whose
///   points-to set is complete, non-empty, and all-`NoEscape`, to a
///   field (or array element type) that no load in the function can
///   address through any of those sites. By the escape lemma nothing
///   outside the function holds a reference either, so the stored
///   value is unobservable; dead-store elimination will drop it.
/// * `never-written-load` (warning): a load through such a base of a
///   field (or array element type) that no store in the function can
///   reach through any of those sites — the load always yields the
///   location's default value.
/// * `aliased-mutation-in-loop` (note): inside one loop, a store and
///   a load of the same field (or element type) through *different*
///   references that may alias. Not a bug — but the store pins the
///   load in place: the optimizer must repeat it every iteration.
fn lint_heap(types: &TypeTable, f: &Function, cfg: &Cfg, out: &mut Vec<Diagnostic>) {
    let al = alias::analyze(types, f, cfg);
    let esc = escape::analyze(f, cfg, &al);
    // Contained = every location the base can denote is a known
    // allocation invisible outside the function, so in-function
    // memory operations are the only possible observers.
    let contained = |v: ValueId| {
        al.sites_of(v)
            .is_some_and(|s| !s.is_empty() && esc.all_no_escape(s))
    };
    let field_name = |r: FieldRef| {
        types
            .field(r)
            .map_or_else(|| "<unknown>".to_string(), |i| i.name.clone())
    };

    // Per-field / per-element-type unions of the sites any load reads
    // through and any store writes through. External-tainted bases
    // contribute only their known sites: by the escape lemma the
    // external component can never denote a `NoEscape` site, and only
    // `NoEscape`-site locations are judged below.
    let mut field_reads: HashMap<FieldRef, BTreeSet<alias::AllocSite>> = HashMap::new();
    let mut field_writes: HashMap<FieldRef, BTreeSet<alias::AllocSite>> = HashMap::new();
    let mut elt_reads: HashMap<TypeId, BTreeSet<alias::AllocSite>> = HashMap::new();
    let mut elt_writes: HashMap<TypeId, BTreeSet<alias::AllocSite>> = HashMap::new();
    for (bi, block) in f.blocks.iter().enumerate() {
        if !cfg.reachable[bi] {
            continue;
        }
        for instr in &block.instrs {
            match instr {
                Instr::GetField { object, field, .. } => {
                    field_reads
                        .entry(*field)
                        .or_default()
                        .extend(al.possible_sites(*object));
                }
                Instr::SetField { object, field, .. } => {
                    field_writes
                        .entry(*field)
                        .or_default()
                        .extend(al.possible_sites(*object));
                }
                Instr::GetElt { arr_ty, array, .. } => {
                    elt_reads
                        .entry(*arr_ty)
                        .or_default()
                        .extend(al.possible_sites(*array));
                }
                Instr::SetElt { arr_ty, array, .. } => {
                    elt_writes
                        .entry(*arr_ty)
                        .or_default()
                        .extend(al.possible_sites(*array));
                }
                _ => {}
            }
        }
    }
    let disjoint = |sites: &BTreeSet<alias::AllocSite>,
                    seen: Option<&BTreeSet<alias::AllocSite>>| {
        seen.is_none_or(|r| sites.iter().all(|s| !r.contains(s)))
    };

    for (bi, block) in f.blocks.iter().enumerate() {
        let b = BlockId(bi as u32);
        if !cfg.reachable[bi] {
            continue;
        }
        for (k, instr) in block.instrs.iter().enumerate() {
            let (severity, kind, message) = match instr {
                Instr::SetField { object, field, .. }
                    if contained(*object)
                        && disjoint(al.sites_of(*object).unwrap(), field_reads.get(field)) =>
                {
                    (
                        Severity::Warning,
                        "never-read-store",
                        format!(
                            "field `{}` of this non-escaping object is stored but never read",
                            field_name(*field)
                        ),
                    )
                }
                Instr::SetElt { arr_ty, array, .. }
                    if contained(*array)
                        && disjoint(al.sites_of(*array).unwrap(), elt_reads.get(arr_ty)) =>
                {
                    (
                        Severity::Warning,
                        "never-read-store",
                        "this non-escaping array is stored to but never read".to_string(),
                    )
                }
                Instr::GetField { object, field, .. }
                    if contained(*object)
                        && disjoint(al.sites_of(*object).unwrap(), field_writes.get(field)) =>
                {
                    (
                        Severity::Warning,
                        "never-written-load",
                        format!(
                            "field `{}` of this non-escaping object is never written; the load always yields its default value",
                            field_name(*field)
                        ),
                    )
                }
                Instr::GetElt { arr_ty, array, .. }
                    if contained(*array)
                        && disjoint(al.sites_of(*array).unwrap(), elt_writes.get(arr_ty)) =>
                {
                    (
                        Severity::Warning,
                        "never-written-load",
                        "this non-escaping array is never written; the load always yields zero"
                            .to_string(),
                    )
                }
                _ => continue,
            };
            out.push(Diagnostic {
                severity,
                kind,
                function: f.name.clone(),
                block: b,
                instr: Some(k),
                message,
            });
        }
    }

    let mut noted = HashSet::new();
    lint_loop_aliasing(types, f, &f.body, &al, &esc, &mut noted, out);
}

/// Like [`alias::AliasAnalysis::may_alias`], sharpened by the escape
/// lemma: when one side's points-to set is complete and all-`NoEscape`,
/// no reference outside the function's SSA values denotes those sites,
/// so the other side — however external-tainted — can only alias
/// through a shared known site.
fn may_alias_escape_aware(
    al: &alias::AliasAnalysis,
    esc: &escape::EscapeAnalysis,
    a: ValueId,
    b: ValueId,
) -> bool {
    if !al.may_alias(a, b) {
        return false;
    }
    for (x, y) in [(a, b), (b, a)] {
        if let Some(sx) = al.sites_of(x) {
            if esc.all_no_escape(sx) {
                let sy = al.possible_sites(y);
                return sx.iter().any(|s| sy.contains(s));
            }
        }
    }
    true
}

/// A memory operation inside a loop, for the aliased-mutation note:
/// the partition it touches and the canonical origin of its base.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum LoopLoc {
    Field(FieldRef),
    Elt(TypeId),
}

/// Walks the CST for loops (innermost first, so a store is attributed
/// to the tightest loop containing the aliased pair) and reports
/// stores that may alias a same-partition load through a different
/// reference in the same loop.
fn lint_loop_aliasing(
    types: &TypeTable,
    f: &Function,
    cst: &Cst,
    al: &alias::AliasAnalysis,
    esc: &escape::EscapeAnalysis,
    noted: &mut HashSet<(BlockId, usize)>,
    out: &mut Vec<Diagnostic>,
) {
    match cst {
        Cst::Seq(items) => {
            for c in items {
                lint_loop_aliasing(types, f, c, al, esc, noted, out);
            }
        }
        Cst::If {
            then_br, else_br, ..
        } => {
            lint_loop_aliasing(types, f, then_br, al, esc, noted, out);
            lint_loop_aliasing(types, f, else_br, al, esc, noted, out);
        }
        Cst::Labeled { body, .. } => lint_loop_aliasing(types, f, body, al, esc, noted, out),
        Cst::Try { body, handler, .. } => {
            lint_loop_aliasing(types, f, body, al, esc, noted, out);
            lint_loop_aliasing(types, f, handler, al, esc, noted, out);
        }
        Cst::Loop { body, .. } => {
            lint_loop_aliasing(types, f, body, al, esc, noted, out);
            let mut loads: Vec<(LoopLoc, ValueId)> = Vec::new();
            let mut stores: Vec<(LoopLoc, ValueId, BlockId, usize)> = Vec::new();
            for b in cst.blocks() {
                for (k, instr) in f.block(b).instrs.iter().enumerate() {
                    match instr {
                        Instr::GetField { object, field, .. } => {
                            loads.push((LoopLoc::Field(*field), origin(f, *object)));
                        }
                        Instr::GetElt { arr_ty, array, .. } => {
                            loads.push((LoopLoc::Elt(*arr_ty), origin(f, *array)));
                        }
                        Instr::SetField { object, field, .. } => {
                            stores.push((LoopLoc::Field(*field), origin(f, *object), b, k));
                        }
                        Instr::SetElt { arr_ty, array, .. } => {
                            stores.push((LoopLoc::Elt(*arr_ty), origin(f, *array), b, k));
                        }
                        _ => {}
                    }
                }
            }
            for (loc, sb, b, k) in stores {
                if noted.contains(&(b, k)) {
                    continue;
                }
                let aliased = loads.iter().any(|&(ll, lb)| {
                    ll == loc && lb != sb && may_alias_escape_aware(al, esc, sb, lb)
                });
                if !aliased {
                    continue;
                }
                noted.insert((b, k));
                let what = match loc {
                    LoopLoc::Field(r) => format!(
                        "store to field `{}`",
                        types
                            .field(r)
                            .map_or_else(|| "<unknown>".to_string(), |i| i.name.clone())
                    ),
                    LoopLoc::Elt(_) => "array element store".to_string(),
                };
                out.push(Diagnostic {
                    severity: Severity::Note,
                    kind: "aliased-mutation-in-loop",
                    function: f.name.clone(),
                    block: b,
                    instr: Some(k),
                    message: format!(
                        "{what} may alias a load through a different reference in the same loop; the load must be repeated every iteration"
                    ),
                });
            }
        }
        _ => {}
    }
}

/// What an instruction means to the dead-store scan.
enum StoreEvent {
    Store(StoreKey),
    Observer,
    None,
}

/// A store location: same key ⇒ same runtime location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum StoreKey {
    Field(ValueId, FieldRef),
    Static(FieldRef),
    Elt(ValueId, ValueId),
}

fn store_key(f: &Function, instr: &Instr) -> StoreEvent {
    match instr {
        Instr::SetField { object, field, .. } => {
            StoreEvent::Store(StoreKey::Field(origin(f, *object), *field))
        }
        Instr::SetStatic { field, .. } => StoreEvent::Store(StoreKey::Static(*field)),
        Instr::SetElt { array, index, .. } => {
            StoreEvent::Store(StoreKey::Elt(origin(f, *array), *index))
        }
        Instr::GetField { .. }
        | Instr::GetStatic { .. }
        | Instr::GetElt { .. }
        | Instr::XCall { .. }
        | Instr::XDispatch { .. } => StoreEvent::Observer,
        _ => StoreEvent::None,
    }
}

/// Evaluates whether a branch condition is provably constant.
fn const_cond(
    types: &TypeTable,
    f: &Function,
    nn: &nullness::NullnessAnalysis,
    rg: &range::RangeAnalysis,
    cond: ValueId,
) -> Option<bool> {
    match f.value(cond).def {
        Def::Const(i) => match f.consts[i as usize].lit {
            Literal::Bool(v) => Some(v),
            _ => None,
        },
        Def::Instr(b, k) => {
            let instr = &f.block(b).instrs[k as usize];
            if let Instr::RefEq { a, b: rhs, .. } = instr {
                let null_of = |v: ValueId| match f.value(v).def {
                    Def::Const(i) => matches!(f.consts[i as usize].lit, Literal::Null),
                    _ => false,
                };
                let side = if null_of(*a) {
                    Some(*rhs)
                } else if null_of(*rhs) {
                    Some(*a)
                } else {
                    None
                };
                if let Some(x) = side {
                    return match nn.of(x) {
                        Nullity::Null => Some(true),
                        Nullity::NonNull => Some(false),
                        Nullity::Unknown => None,
                    };
                }
                return None;
            }
            let (ty, op, args) = match instr {
                Instr::Primitive { ty, op, args } | Instr::XPrimitive { ty, op, args } => {
                    (ty, op, args)
                }
                _ => return None,
            };
            let TypeKind::Prim(kind) = types.kind(*ty) else {
                return None;
            };
            let name = primops::resolve(kind, *op)?.name;
            if kind == PrimKind::Bool && name == "not" {
                return const_cond(types, f, nn, rg, args[0]).map(|v| !v);
            }
            if kind != PrimKind::Int || args.len() != 2 {
                return None;
            }
            let a = rg.of(args[0]);
            let c = rg.of(args[1]);
            let lt = |a: range::Range, c: range::Range| {
                if a.hi < c.lo {
                    Some(true)
                } else if a.lo >= c.hi {
                    Some(false)
                } else {
                    None
                }
            };
            let le = |a: range::Range, c: range::Range| {
                if a.hi <= c.lo {
                    Some(true)
                } else if a.lo > c.hi {
                    Some(false)
                } else {
                    None
                }
            };
            let eq = |a: range::Range, c: range::Range| {
                if a.hi < c.lo || c.hi < a.lo {
                    Some(false)
                } else if a.as_const().is_some() && a.as_const() == c.as_const() {
                    Some(true)
                } else {
                    None
                }
            };
            match name {
                "lt" => lt(a, c),
                "gt" => lt(c, a),
                "le" => le(a, c),
                "ge" => le(c, a),
                "eq" => eq(a, c),
                "ne" => eq(a, c).map(|v| !v),
                _ => None,
            }
        }
        _ => None,
    }
}

fn lint_branches(
    types: &TypeTable,
    f: &Function,
    cst: &Cst,
    nn: &nullness::NullnessAnalysis,
    rg: &range::RangeAnalysis,
    out: &mut Vec<Diagnostic>,
) {
    match cst {
        Cst::Seq(items) => {
            for c in items {
                lint_branches(types, f, c, nn, rg, out);
            }
        }
        Cst::If {
            cond,
            then_br,
            else_br,
            join,
        } => {
            if let Some(v) = const_cond(types, f, nn, rg, *cond) {
                let anchor = then_br
                    .blocks()
                    .first()
                    .copied()
                    .or_else(|| else_br.blocks().first().copied())
                    .unwrap_or(*join);
                out.push(Diagnostic {
                    severity: Severity::Warning,
                    kind: "constant-branch",
                    function: f.name.clone(),
                    block: anchor,
                    instr: None,
                    message: format!("branch condition {cond} is always {v}"),
                });
                let dead = if v { else_br } else { then_br };
                let has_code = dead.blocks().iter().any(|b| {
                    !f.block(*b).instrs.is_empty() || !f.block(*b).phis.is_empty()
                });
                if has_code {
                    let first = dead.blocks()[0];
                    out.push(Diagnostic {
                        severity: Severity::Warning,
                        kind: "unreachable-code",
                        function: f.name.clone(),
                        block: first,
                        instr: None,
                        message: format!(
                            "branch is never taken (condition {cond} is always {v})"
                        ),
                    });
                }
            }
            lint_branches(types, f, then_br, nn, rg, out);
            lint_branches(types, f, else_br, nn, rg, out);
        }
        Cst::Loop { body, .. } | Cst::Labeled { body, .. } => {
            lint_branches(types, f, body, nn, rg, out)
        }
        Cst::Try { body, handler, .. } => {
            lint_branches(types, f, body, nn, rg, out);
            lint_branches(types, f, handler, nn, rg, out);
        }
        _ => {}
    }
}
