//! Sparse dataflow analyses over the SafeTSA SSA IR.
//!
//! SafeTSA's type separation already encodes the *checked* safety
//! properties in the planes: a value on a safe-ref plane is non-null,
//! a value on a safe-index plane is in bounds. This crate recovers the
//! *provable* ones — facts that hold but are not (yet) witnessed by a
//! plane — with a small lattice-based sparse dataflow framework and
//! three analyses built on it:
//!
//! - [`nullness`]: which references are provably non-null (or provably
//!   null), seeded by safe-plane membership and propagated through
//!   casts, phis, and `x != null` branch guards.
//! - [`range`]: integer intervals with symbolic `arraylength`-relative
//!   bounds, so a loop guard `i < a.length` proves `indexcheck a, i`
//!   redundant.
//! - [`liveness`]: backward demand propagation; which values can
//!   influence observable behaviour.
//!
//! Facts flow to two consumers: the `checkelim` pass in `crates/opt`
//! (rewriting provably redundant checks) and the IR [`lint`]er
//! (`safetsa analyze`), which reports always-trapping sites, dead
//! stores, unreachable code, constant branches, and unused values.
//!
//! The framework ([`framework`]) is *sparse*: facts live on SSA values
//! rather than program points, with per-block flow sensitivity
//! recovered from branch-condition [`guards`] collected in one CST
//! walk — the CST guarantees a branch entry dominates its subtree, so
//! no dominator queries are needed.

#![warn(missing_docs)]

pub mod framework;
pub mod guards;
pub mod lint;
pub mod liveness;
pub mod nullness;
pub mod range;

pub use framework::{BackwardAnalysis, Facts, Fixpoint, ForwardAnalysis, JoinLattice};
pub use guards::{block_guards, BlockGuards, Guard};
pub use lint::{lint_function, lint_module, Diagnostic, Severity};
pub use liveness::Liveness;
pub use nullness::{Nullity, NullnessAnalysis};
pub use range::{Range, RangeAnalysis};
