//! Sparse dataflow analyses over the SafeTSA SSA IR.
//!
//! SafeTSA's type separation already encodes the *checked* safety
//! properties in the planes: a value on a safe-ref plane is non-null,
//! a value on a safe-index plane is in bounds. This crate recovers the
//! *provable* ones — facts that hold but are not (yet) witnessed by a
//! plane — with a small lattice-based sparse dataflow framework and
//! three analyses built on it:
//!
//! - [`nullness`]: which references are provably non-null (or provably
//!   null), seeded by safe-plane membership and propagated through
//!   casts, phis, and `x != null` branch guards.
//! - [`range`]: integer intervals with symbolic `arraylength`-relative
//!   bounds, so a loop guard `i < a.length` proves `indexcheck a, i`
//!   redundant.
//! - [`liveness`]: backward demand propagation; which values can
//!   influence observable behaviour.
//! - [`alias`]: allocation-site points-to sets over the reference
//!   planes — which local `new`/`newarray` results a reference may
//!   denote.
//! - [`escape`]: the `NoEscape < ArgEscape < GlobalEscape` lattice per
//!   allocation site, layered on the points-to facts — which heap
//!   facts can survive a call.
//!
//! Facts flow to two consumers: the optimization passes in
//! `crates/opt` (`checkelim` rewriting provably redundant checks,
//! `loadfwd`/`dse` forwarding loads and deleting dead stores from the
//! alias/escape facts) and the IR [`lint`]er (`safetsa analyze`),
//! which reports always-trapping sites, dead stores, unreachable
//! code, constant branches, unused values, and the heap diagnostics
//! the same points-to facts prove.
//!
//! The framework ([`framework`]) is *sparse*: facts live on SSA values
//! rather than program points, with per-block flow sensitivity
//! recovered from branch-condition [`guards`] collected in one CST
//! walk — the CST guarantees a branch entry dominates its subtree, so
//! no dominator queries are needed.

#![warn(missing_docs)]

pub mod alias;
pub mod escape;
pub mod framework;
pub mod guards;
pub mod lint;
pub mod liveness;
pub mod nullness;
pub mod range;
pub mod summary;

pub use alias::{AliasAnalysis, AllocSite, PointsTo};
pub use escape::{Escape, EscapeAnalysis};
pub use framework::{BackwardAnalysis, Facts, Fixpoint, ForwardAnalysis, JoinLattice};
pub use guards::{block_guards, BlockGuards, Guard};
pub use lint::{lint_function, lint_module, Diagnostic, Severity};
pub use liveness::Liveness;
pub use nullness::{Nullity, NullnessAnalysis};
pub use range::{Range, RangeAnalysis};
pub use summary::{summarize, FactSummary};
