//! The generic sparse dataflow engine.
//!
//! SafeTSA's SSA form makes *sparse* analysis natural: every value is
//! defined exactly once, so a dataflow fact attaches to the value
//! itself rather than to `(program point, variable)` pairs. An
//! analysis supplies a join-semilattice of facts and a transfer
//! function per instruction; the engine iterates blocks in the
//! deterministic CST traversal order, joins at phis (one contribution
//! per incoming edge), and runs to a fixpoint.
//!
//! Two drivers are provided:
//!
//! * [`run_forward`] — facts flow from definitions to uses (nullness,
//!   ranges). Phi facts are the join of the per-edge argument facts;
//!   the [`ForwardAnalysis::phi_arg`] hook lets an analysis narrow an
//!   argument by the guards of the edge's source block, which is what
//!   makes loop-phi bounds (`i = phi(0, i+1)` under `i < a.length`)
//!   converge to something useful.
//! * [`run_backward`] — facts flow from uses to definitions
//!   (liveness). Roots are the function's observable uses (terminator
//!   operands, effectful instructions); the per-instruction transfer
//!   says what an instruction demands of its operands.
//!
//! ### Contract
//!
//! A forward analysis must be *total on the planes it models*: for
//! every value of a modeled plane the transfer must produce a fact
//! (top at worst). `None` means "plane outside the analysis domain",
//! never "don't know yet" — the engine relies on this to treat a
//! missing phi-argument fact as "not yet computed on this pass"
//! (optimistically skipped; sound because iteration continues until no
//! fact changes, and joins only move up the lattice).

use safetsa_core::cfg::Cfg;
use safetsa_core::function::Function;
use safetsa_core::value::{BlockId, ValueId};

/// A join semilattice of dataflow facts.
pub trait JoinLattice: Clone + PartialEq {
    /// Least upper bound of two facts.
    fn join(&self, other: &Self) -> Self;
}

/// Per-value fact store; a missing entry is the analysis bottom
/// ("no fact computed", for planes outside the domain).
#[derive(Debug, Clone)]
pub struct Facts<L> {
    facts: Vec<Option<L>>,
}

impl<L: JoinLattice> Facts<L> {
    fn new(n: usize) -> Facts<L> {
        Facts {
            facts: vec![None; n],
        }
    }

    /// The fact attached to `v`, if the analysis modeled it.
    pub fn get(&self, v: ValueId) -> Option<&L> {
        self.facts.get(v.index()).and_then(Option::as_ref)
    }

    /// Stores `new` for `v`; returns whether the stored fact changed.
    fn update(&mut self, v: ValueId, new: L) -> bool {
        let slot = &mut self.facts[v.index()];
        match slot {
            Some(old) if *old == new => false,
            _ => {
                *slot = Some(new);
                true
            }
        }
    }

    /// Number of values with a computed fact.
    pub fn computed(&self) -> u64 {
        self.facts.iter().filter(|o| o.is_some()).count() as u64
    }
}

/// A forward (definition-to-use) sparse analysis.
pub trait ForwardAnalysis {
    /// The fact lattice.
    type Fact: JoinLattice;

    /// Fact for a pre-loaded value (parameter or constant-pool entry).
    fn preload(&mut self, f: &Function, v: ValueId) -> Option<Self::Fact>;

    /// Fact for the result of instruction `(b, k)`. Called only for
    /// instructions that produce a result.
    fn transfer(
        &mut self,
        f: &Function,
        b: BlockId,
        k: usize,
        facts: &Facts<Self::Fact>,
    ) -> Option<Self::Fact>;

    /// Fact contributed to a phi by argument `arg` flowing in from
    /// `pred`. Override to narrow by the guards of the source block.
    fn phi_arg(
        &mut self,
        _f: &Function,
        _pred: BlockId,
        arg: ValueId,
        facts: &Facts<Self::Fact>,
    ) -> Option<Self::Fact> {
        facts.get(arg).cloned()
    }

    /// Widening applied to a changing fact once the pass count exceeds
    /// [`WIDEN_AFTER`]; ensures termination on lattices of great
    /// height (integer intervals). Default: no widening.
    fn widen(&mut self, _old: &Self::Fact, new: Self::Fact) -> Self::Fact {
        new
    }
}

/// Passes after which [`ForwardAnalysis::widen`] kicks in.
pub const WIDEN_AFTER: u64 = 3;

/// Hard cap on fixpoint passes (a backstop; widening converges long
/// before this).
pub const MAX_PASSES: u64 = 64;

/// Result of a fixpoint run: the facts plus the pass count (the
/// per-analysis `fixpoint_iterations` telemetry).
#[derive(Debug)]
pub struct Fixpoint<L> {
    /// Per-value facts at the fixpoint.
    pub facts: Facts<L>,
    /// Number of passes over the function until stabilization.
    pub iterations: u64,
}

/// Runs `a` forward over `f` to a fixpoint.
pub fn run_forward<A: ForwardAnalysis>(f: &Function, cfg: &Cfg, a: &mut A) -> Fixpoint<A::Fact> {
    let mut facts = Facts::new(f.values.len());
    for i in 0..f.values.len() {
        let v = ValueId(i as u32);
        if f.value(v).def.is_preload() {
            if let Some(fact) = a.preload(f, v) {
                facts.update(v, fact);
            }
        }
    }
    let mut iterations = 0;
    loop {
        iterations += 1;
        let mut changed = false;
        for &b in &cfg.traversal {
            if !cfg.reachable[b.index()] {
                continue;
            }
            for k in 0..f.block(b).phis.len() {
                let result = f.phi_result(b, k);
                let args = f.block(b).phis[k].args.clone();
                let mut acc: Option<A::Fact> = None;
                for (pred, arg) in args {
                    // A missing contribution is a back edge not yet
                    // computed on this pass; skip it optimistically.
                    if let Some(c) = a.phi_arg(f, pred, arg, &facts) {
                        acc = Some(match acc {
                            None => c,
                            Some(x) => x.join(&c),
                        });
                    }
                }
                if let Some(mut new) = acc {
                    if iterations > WIDEN_AFTER {
                        if let Some(old) = facts.get(result) {
                            new = a.widen(old, new);
                        }
                    }
                    changed |= facts.update(result, new);
                }
            }
            for k in 0..f.block(b).instrs.len() {
                let Some(result) = f.instr_result(b, k) else {
                    continue;
                };
                if let Some(mut new) = a.transfer(f, b, k, &facts) {
                    if iterations > WIDEN_AFTER {
                        if let Some(old) = facts.get(result) {
                            new = a.widen(old, new);
                        }
                    }
                    changed |= facts.update(result, new);
                }
            }
        }
        if !changed || iterations >= MAX_PASSES {
            return Fixpoint { facts, iterations };
        }
    }
}

/// A backward (use-to-definition) sparse analysis.
pub trait BackwardAnalysis {
    /// The fact lattice.
    type Fact: JoinLattice;

    /// Facts demanded unconditionally: terminator uses, provenance
    /// links, and anything else observable at function exit.
    fn roots(&mut self, f: &Function, cfg: &Cfg) -> Vec<(ValueId, Self::Fact)>;

    /// What instruction `(b, k)` demands of its operands, given the
    /// fact (if any) on its own result.
    fn transfer(
        &mut self,
        f: &Function,
        b: BlockId,
        k: usize,
        result: Option<&Self::Fact>,
    ) -> Vec<(ValueId, Self::Fact)>;

    /// What phi `(b, k)` demands of its arguments given the fact on
    /// its result. Default: the result fact propagates to every
    /// argument.
    fn phi(
        &mut self,
        f: &Function,
        b: BlockId,
        k: usize,
        result: Option<&Self::Fact>,
    ) -> Vec<(ValueId, Self::Fact)> {
        let Some(r) = result else { return Vec::new() };
        f.block(b).phis[k]
            .args
            .iter()
            .map(|(_, v)| (*v, r.clone()))
            .collect()
    }
}

/// Runs `a` backward over `f` to a fixpoint (reverse traversal order,
/// instructions visited last-to-first).
pub fn run_backward<A: BackwardAnalysis>(f: &Function, cfg: &Cfg, a: &mut A) -> Fixpoint<A::Fact> {
    let mut facts: Facts<A::Fact> = Facts::new(f.values.len());
    for (v, fact) in a.roots(f, cfg) {
        let joined = match facts.get(v) {
            Some(old) => old.join(&fact),
            None => fact,
        };
        facts.update(v, joined);
    }
    let mut iterations = 0;
    loop {
        iterations += 1;
        let mut changed = false;
        for &b in cfg.traversal.iter().rev() {
            if !cfg.reachable[b.index()] {
                continue;
            }
            for k in (0..f.block(b).instrs.len()).rev() {
                let result = f.instr_result(b, k);
                let rf = result.and_then(|v| facts.get(v).cloned());
                for (v, fact) in a.transfer(f, b, k, rf.as_ref()) {
                    let joined = match facts.get(v) {
                        Some(old) => old.join(&fact),
                        None => fact,
                    };
                    changed |= facts.update(v, joined);
                }
            }
            for k in (0..f.block(b).phis.len()).rev() {
                let result = f.phi_result(b, k);
                let rf = facts.get(result).cloned();
                for (v, fact) in a.phi(f, b, k, rf.as_ref()) {
                    let joined = match facts.get(v) {
                        Some(old) => old.join(&fact),
                        None => fact,
                    };
                    changed |= facts.update(v, joined);
                }
            }
        }
        if !changed || iterations >= MAX_PASSES {
            return Fixpoint { facts, iterations };
        }
    }
}
