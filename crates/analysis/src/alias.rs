//! Allocation-site points-to analysis.
//!
//! The forward instance of the framework over the reference planes:
//! the abstract objects are *allocation sites* — the `(block, instr)`
//! positions of `new` and `newarray` — and the fact on a reference
//! value is the set of local sites it may denote plus an *external*
//! taint bit recording whether the reference can also come from
//! outside the function (parameters, heap loads, call results, caught
//! exceptions). Keeping the set alongside the taint matters: a phi
//! mixing a fresh allocation with a parameter still remembers the
//! site, so the [`crate::escape`] analysis layered on top never loses
//! track of a site flowing into a call or store.
//!
//! SafeTSA's type separation is what keeps the sets small: a value on
//! the `ref(T)`/`safe-ref(T)` plane can only ever denote sites whose
//! allocated type is assignable to `T`, and the planes themselves
//! partition the value space, so sites of unrelated types never meet
//! in one set. The analysis does not need to re-derive that — it falls
//! out of the IR being typed per plane — but it is why a per-function
//! points-to fixpoint is cheap enough to run inside the optimizer on
//! every function.
//!
//! Two consumers share the facts: the `loadfwd`/`dse` passes in
//! `crates/opt` (may-alias queries drive heap-fact invalidation) and
//! the escape analysis. The central query is
//! [`AliasAnalysis::may_alias`]: two references with disjoint known
//! site sets and at most one external taint can never address the same
//! object; everything else is conservatively assumed to alias.

use crate::framework::{run_forward, Facts, ForwardAnalysis, JoinLattice};
use safetsa_core::cfg::Cfg;
use safetsa_core::function::Function;
use safetsa_core::instr::Instr;
use safetsa_core::types::{TypeId, TypeTable};
use safetsa_core::value::{BlockId, ValueId};
use std::collections::BTreeSet;

/// An allocation site: the position of a `new` or `newarray`
/// instruction within the analyzed function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AllocSite {
    /// Block of the allocation.
    pub block: BlockId,
    /// Instruction index within the block.
    pub instr: u32,
}

/// The points-to fact for one reference value: `null`, any of
/// `sites`, and — when `external` — any object reachable from outside
/// the function.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PointsTo {
    /// Local allocation sites the value may denote.
    pub sites: BTreeSet<AllocSite>,
    /// Whether the value may additionally denote an object that
    /// arrived through an external channel (parameter, heap load,
    /// call result, caught exception). External channels can only
    /// carry local sites that already escaped — never a
    /// [`crate::escape::Escape::No`] site (see `escape` module docs).
    pub external: bool,
}

impl PointsTo {
    fn site(s: AllocSite) -> PointsTo {
        PointsTo {
            sites: BTreeSet::from([s]),
            external: false,
        }
    }

    fn external() -> PointsTo {
        PointsTo {
            sites: BTreeSet::new(),
            external: true,
        }
    }

    /// Whether the fact enumerates every possible referent (no
    /// external component).
    pub fn is_complete(&self) -> bool {
        !self.external
    }
}

impl JoinLattice for PointsTo {
    fn join(&self, other: &PointsTo) -> PointsTo {
        PointsTo {
            sites: self.sites.union(&other.sites).copied().collect(),
            external: self.external || other.external,
        }
    }
}

struct Analysis<'a> {
    types: &'a TypeTable,
}

impl<'a> Analysis<'a> {
    fn models(&self, ty: TypeId) -> bool {
        self.types.is_ref(ty) || self.types.is_safe_ref(ty)
    }
}

impl<'a> ForwardAnalysis for Analysis<'a> {
    type Fact = PointsTo;

    fn preload(&mut self, f: &Function, v: ValueId) -> Option<PointsTo> {
        let ty = f.value_ty(v);
        if !self.models(ty) {
            return None;
        }
        // A `null` constant denotes no object at all; parameters and
        // non-null reference constants come from outside the function.
        use safetsa_core::value::{Def, Literal};
        if let Def::Const(i) = f.value(v).def {
            if matches!(f.consts[i as usize].lit, Literal::Null) {
                return Some(PointsTo::default());
            }
        }
        Some(PointsTo::external())
    }

    fn transfer(
        &mut self,
        f: &Function,
        b: BlockId,
        k: usize,
        facts: &Facts<PointsTo>,
    ) -> Option<PointsTo> {
        let result = f.instr_result(b, k)?;
        if !self.models(f.value_ty(result)) {
            return None;
        }
        Some(match &f.block(b).instrs[k] {
            Instr::New { .. } | Instr::NewArray { .. } => PointsTo::site(AllocSite {
                block: b,
                instr: k as u32,
            }),
            // Reference-preserving coercions forward the operand's
            // fact. A not-yet-computed operand (first pass over a back
            // edge) is top for now; later passes tighten it.
            Instr::NullCheck { value, .. }
            | Instr::Downcast { value, .. }
            | Instr::Upcast { value, .. } => {
                facts.get(*value).cloned().unwrap_or_else(PointsTo::external)
            }
            // Heap loads, call results, and caught exceptions may hand
            // back any object the outside world can reach.
            _ => PointsTo::external(),
        })
    }
}

/// The points-to facts for one function.
#[derive(Debug)]
pub struct AliasAnalysis {
    facts: Facts<PointsTo>,
    /// Every allocation site of the function, in program order.
    pub sites: Vec<AllocSite>,
    /// Fixpoint passes until stabilization.
    pub iterations: u64,
}

impl AliasAnalysis {
    /// The points-to fact for `v` (`None` for non-reference planes).
    pub fn points_to(&self, v: ValueId) -> Option<&PointsTo> {
        self.facts.get(v)
    }

    /// The complete site set for `v`: `Some` only when the analysis
    /// can enumerate every object `v` may denote (no external taint).
    pub fn sites_of(&self, v: ValueId) -> Option<&BTreeSet<AllocSite>> {
        match self.facts.get(v) {
            Some(p) if p.is_complete() => Some(&p.sites),
            _ => None,
        }
    }

    /// The local sites `v` may denote, complete or not (empty for
    /// values outside the reference planes).
    pub fn possible_sites(&self, v: ValueId) -> BTreeSet<AllocSite> {
        self.facts
            .get(v)
            .map(|p| p.sites.clone())
            .unwrap_or_default()
    }

    /// Whether `a` and `b` may denote the same object. Disjoint known
    /// site sets with at most one external taint prove they cannot;
    /// a provably-null value (empty complete set) aliases nothing.
    pub fn may_alias(&self, a: ValueId, b: ValueId) -> bool {
        if a == b {
            return true;
        }
        let (Some(pa), Some(pb)) = (self.facts.get(a), self.facts.get(b)) else {
            return true;
        };
        if pa.sites.iter().any(|s| pb.sites.contains(s)) {
            return true;
        }
        // Both external: the two references may denote the same
        // outside object. One external: it may denote the other's
        // sites only if those escaped — conservatively assumed unless
        // the other side is provably null.
        match (pa.external, pb.external) {
            (true, true) => true,
            (true, false) => !pb.sites.is_empty(),
            (false, true) => !pa.sites.is_empty(),
            (false, false) => false,
        }
    }

    /// Number of values with a computed points-to fact.
    pub fn facts_computed(&self) -> u64 {
        self.facts.computed()
    }
}

/// Runs the points-to analysis over `f`.
pub fn analyze(types: &TypeTable, f: &Function, cfg: &Cfg) -> AliasAnalysis {
    let mut a = Analysis { types };
    let fx = run_forward(f, cfg, &mut a);
    let mut sites = Vec::new();
    for (bi, block) in f.blocks.iter().enumerate() {
        for (k, instr) in block.instrs.iter().enumerate() {
            if matches!(instr, Instr::New { .. } | Instr::NewArray { .. }) {
                sites.push(AllocSite {
                    block: BlockId(bi as u32),
                    instr: k as u32,
                });
            }
        }
    }
    AliasAnalysis {
        facts: fx.facts,
        sites,
        iterations: fx.iterations,
    }
}
