//! Nullness analysis: which reference values are provably non-null
//! (or provably null) at a given block.
//!
//! Type separation does most of the work already: every value on a
//! *safe-ref* plane is non-null by construction (the only producers
//! are `new`, `newarray`, `nullcheck`, `catch`, and safe-to-safe
//! coercions). The analysis extends that guarantee across the
//! *unsafe* planes by following value flow: a `Downcast` from a safe
//! plane yields the same (non-null) reference on the unsafe plane, a
//! phi of non-null arguments is non-null, and an `x != null` branch
//! guard proves `x` non-null inside the taken subtree.
//!
//! The dual facts matter too: a value that is provably *null* makes
//! any `nullcheck` of it an always-trapping dereference, which the
//! linter reports as an error.

use crate::framework::{run_forward, Facts, Fixpoint, ForwardAnalysis, JoinLattice};
use crate::guards::{block_guards, BlockGuards, Guard};
use safetsa_core::cfg::Cfg;
use safetsa_core::function::Function;
use safetsa_core::instr::Instr;
use safetsa_core::types::TypeTable;
use safetsa_core::value::{BlockId, Def, Literal, ValueId};

/// The nullness fact lattice: `NonNull` and `Null` join to `Unknown`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Nullity {
    /// The value can never be the null reference.
    NonNull,
    /// The value is always the null reference.
    Null,
    /// Nothing is known (lattice top).
    Unknown,
}

impl JoinLattice for Nullity {
    fn join(&self, other: &Nullity) -> Nullity {
        if self == other {
            *self
        } else {
            Nullity::Unknown
        }
    }
}

struct Analysis<'a> {
    types: &'a TypeTable,
    guards: &'a BlockGuards,
}

impl Analysis<'_> {
    /// Whether the analysis models values of this plane.
    fn models(&self, f: &Function, v: ValueId) -> bool {
        let ty = f.value_ty(v);
        self.types.is_ref(ty) || self.types.is_safe_ref(ty)
    }

    /// `v`'s base fact narrowed by the guards active in `b`.
    fn narrowed(&self, facts: &Facts<Nullity>, v: ValueId, b: BlockId) -> Option<Nullity> {
        let mut fact = facts.get(v).copied()?;
        for g in self.guards.at(b) {
            match g {
                Guard::NonNull(x) if *x == v => fact = Nullity::NonNull,
                Guard::IsNull(x) if *x == v && fact == Nullity::Unknown => fact = Nullity::Null,
                _ => {}
            }
        }
        Some(fact)
    }
}

impl ForwardAnalysis for Analysis<'_> {
    type Fact = Nullity;

    fn preload(&mut self, f: &Function, v: ValueId) -> Option<Nullity> {
        if !self.models(f, v) {
            return None;
        }
        if self.types.is_safe_ref(f.value_ty(v)) {
            return Some(Nullity::NonNull);
        }
        Some(match f.value(v).def {
            Def::Const(i) => match f.consts[i as usize].lit {
                Literal::Null => Nullity::Null,
                Literal::Str(_) => Nullity::NonNull,
                _ => Nullity::Unknown,
            },
            _ => Nullity::Unknown,
        })
    }

    fn transfer(
        &mut self,
        f: &Function,
        b: BlockId,
        k: usize,
        facts: &Facts<Nullity>,
    ) -> Option<Nullity> {
        let result = f.instr_result(b, k)?;
        if !self.models(f, result) {
            return None;
        }
        // Safe-ref planes are non-null by construction; this covers
        // `new`, `newarray`, `nullcheck`, `catch`, and safe coercions.
        if self.types.is_safe_ref(f.value_ty(result)) {
            return Some(Nullity::NonNull);
        }
        Some(match &f.block(b).instrs[k] {
            // Casts forward the same reference, so the operand's fact
            // (narrowed by this block's guards) carries over; an
            // operand on a safe plane is non-null outright.
            Instr::Downcast { value, .. } | Instr::Upcast { value, .. } => {
                if self.types.is_safe_ref(f.value_ty(*value)) {
                    Nullity::NonNull
                } else {
                    self.narrowed(facts, *value, b).unwrap_or(Nullity::Unknown)
                }
            }
            // Loads and calls can produce any reference.
            _ => Nullity::Unknown,
        })
    }

    fn phi_arg(
        &mut self,
        f: &Function,
        pred: BlockId,
        arg: ValueId,
        facts: &Facts<Nullity>,
    ) -> Option<Nullity> {
        if self.types.is_safe_ref(f.value_ty(arg)) {
            return Some(Nullity::NonNull);
        }
        self.narrowed(facts, arg, pred)
    }
}

/// The fixpoint nullness facts for one function.
#[derive(Debug)]
pub struct NullnessAnalysis {
    facts: Facts<Nullity>,
    guards: BlockGuards,
    /// Fixpoint passes until stabilization.
    pub iterations: u64,
}

impl NullnessAnalysis {
    /// The flow-insensitive fact for `v`.
    pub fn of(&self, v: ValueId) -> Nullity {
        self.facts.get(v).copied().unwrap_or(Nullity::Unknown)
    }

    /// The fact for `v` as seen from block `b` (base fact narrowed by
    /// the branch guards dominating `b`).
    pub fn at(&self, v: ValueId, b: BlockId) -> Nullity {
        let mut fact = self.of(v);
        for g in self.guards.at(b) {
            match g {
                Guard::NonNull(x) if *x == v => fact = Nullity::NonNull,
                Guard::IsNull(x) if *x == v && fact == Nullity::Unknown => fact = Nullity::Null,
                _ => {}
            }
        }
        fact
    }

    /// Number of values with a computed fact (telemetry).
    pub fn facts_computed(&self) -> u64 {
        self.facts.computed()
    }
}

/// Runs nullness analysis over `f`.
pub fn analyze(types: &TypeTable, f: &Function, cfg: &Cfg) -> NullnessAnalysis {
    let guards = block_guards(f, types);
    let mut a = Analysis {
        types,
        guards: &guards,
    };
    let Fixpoint { facts, iterations } = run_forward(f, cfg, &mut a);
    NullnessAnalysis {
        facts,
        guards,
        iterations,
    }
}
