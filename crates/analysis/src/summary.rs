//! Serializable per-function analysis-fact summaries.
//!
//! The incremental store (see `crates/driver`'s `store` module and
//! DESIGN.md "Incremental compilation") persists, next to each method's
//! encoded section, a digest of what the dataflow analyses proved about
//! it: fact counts and fixpoint iteration counts for nullness, range,
//! liveness, alias, and escape. The facts themselves are a pure
//! function of the (already content-addressed) method body, so sharing
//! the summary across compilations is sound whenever sharing the body
//! is — a reused unit replays its analysis telemetry without re-running
//! any fixpoint.
//!
//! The summary travels as a flat `name value` text block, the same
//! self-describing shape the telemetry registry exports, so a store
//! entry stays inspectable with `cat`.

use crate::{alias, escape, liveness, nullness, range};
use safetsa_core::cfg::Cfg;
use safetsa_core::function::Function;
use safetsa_core::types::TypeTable;

/// Aggregated analysis facts for one function (or, summed, for a whole
/// module): how many values each analysis proved something about and
/// how many fixpoint passes that took.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FactSummary {
    /// Values with a computed nullness fact.
    pub nullness_facts: u64,
    /// Nullness fixpoint passes.
    pub nullness_iterations: u64,
    /// Values with a computed range fact.
    pub range_facts: u64,
    /// Range fixpoint passes.
    pub range_iterations: u64,
    /// Values proven able to influence observable behaviour.
    pub live_values: u64,
    /// Liveness fixpoint passes.
    pub liveness_iterations: u64,
    /// Allocation sites seen by the alias analysis.
    pub alias_sites: u64,
    /// Values with a points-to fact.
    pub alias_facts: u64,
    /// Alias fixpoint passes.
    pub alias_iterations: u64,
    /// Sites classified `NoEscape`.
    pub escape_no: u64,
    /// Sites classified `ArgEscape`.
    pub escape_arg: u64,
    /// Sites classified `GlobalEscape`.
    pub escape_global: u64,
}

/// Field order of the flat serialization; [`FactSummary::to_flat`] and
/// [`FactSummary::from_flat`] both walk this list, so the two cannot
/// drift apart.
const FIELDS: [&str; 12] = [
    "nullness_facts",
    "nullness_iterations",
    "range_facts",
    "range_iterations",
    "live_values",
    "liveness_iterations",
    "alias_sites",
    "alias_facts",
    "alias_iterations",
    "escape_no",
    "escape_arg",
    "escape_global",
];

impl FactSummary {
    fn field(&self, name: &str) -> u64 {
        match name {
            "nullness_facts" => self.nullness_facts,
            "nullness_iterations" => self.nullness_iterations,
            "range_facts" => self.range_facts,
            "range_iterations" => self.range_iterations,
            "live_values" => self.live_values,
            "liveness_iterations" => self.liveness_iterations,
            "alias_sites" => self.alias_sites,
            "alias_facts" => self.alias_facts,
            "alias_iterations" => self.alias_iterations,
            "escape_no" => self.escape_no,
            "escape_arg" => self.escape_arg,
            "escape_global" => self.escape_global,
            _ => unreachable!("unknown FactSummary field {name}"),
        }
    }

    fn field_mut(&mut self, name: &str) -> &mut u64 {
        match name {
            "nullness_facts" => &mut self.nullness_facts,
            "nullness_iterations" => &mut self.nullness_iterations,
            "range_facts" => &mut self.range_facts,
            "range_iterations" => &mut self.range_iterations,
            "live_values" => &mut self.live_values,
            "liveness_iterations" => &mut self.liveness_iterations,
            "alias_sites" => &mut self.alias_sites,
            "alias_facts" => &mut self.alias_facts,
            "alias_iterations" => &mut self.alias_iterations,
            "escape_no" => &mut self.escape_no,
            "escape_arg" => &mut self.escape_arg,
            "escape_global" => &mut self.escape_global,
            _ => unreachable!("unknown FactSummary field {name}"),
        }
    }

    /// Accumulates another function's summary.
    pub fn add(&mut self, o: &FactSummary) {
        for name in FIELDS {
            *self.field_mut(name) += o.field(name);
        }
    }

    /// Renders the summary as flat `name value` lines.
    pub fn to_flat(&self) -> String {
        let mut out = String::new();
        for name in FIELDS {
            out.push_str(name);
            out.push(' ');
            out.push_str(&self.field(name).to_string());
            out.push('\n');
        }
        out
    }

    /// Parses a [`FactSummary::to_flat`] rendering. `None` on any
    /// malformed or missing line — store readers treat that as a cache
    /// miss, never an error.
    pub fn from_flat(text: &str) -> Option<FactSummary> {
        let mut s = FactSummary::default();
        let mut lines = text.lines();
        for name in FIELDS {
            let line = lines.next()?;
            let value = line.strip_prefix(name)?.strip_prefix(' ')?;
            *s.field_mut(name) = value.parse().ok()?;
        }
        lines.next().is_none().then_some(s)
    }
}

/// Runs every analysis over `f` and collects the summary. A function
/// whose CFG cannot be built (never the case for verifier-accepted
/// modules) summarizes to zeros.
pub fn summarize(types: &TypeTable, f: &Function) -> FactSummary {
    let Ok(cfg) = Cfg::build(f) else {
        return FactSummary::default();
    };
    let nn = nullness::analyze(types, f, &cfg);
    let rr = range::analyze(types, f, &cfg);
    let lv = liveness::analyze(f, &cfg);
    let al = alias::analyze(types, f, &cfg);
    let es = escape::analyze(f, &cfg, &al);
    let (escape_no, escape_arg, escape_global) = es.counts(&al.sites);
    FactSummary {
        nullness_facts: nn.facts_computed(),
        nullness_iterations: nn.iterations,
        range_facts: rr.facts_computed(),
        range_iterations: rr.iterations,
        live_values: lv.live_count(),
        liveness_iterations: lv.iterations,
        alias_sites: al.sites.len() as u64,
        alias_facts: al.facts_computed(),
        alias_iterations: al.iterations,
        escape_no,
        escape_arg,
        escape_global,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "class S {
        static int sum() {
            int[] v = new int[8];
            int acc = 0;
            for (int i = 0; i < 8; i++) { v[i] = i; acc = acc + v[i]; }
            return acc;
        }
    }";

    fn summary_of(src: &str, name: &str) -> FactSummary {
        let prog = safetsa_frontend::compile(src).unwrap();
        let lowered = safetsa_ssa::lower_program(&prog).unwrap();
        let m = &lowered.module;
        let fid = m.find_function(name).unwrap();
        summarize(&m.types, m.function(fid))
    }

    #[test]
    fn summarize_finds_facts_and_round_trips() {
        let s = summary_of(SRC, "S.sum");
        assert!(s.nullness_facts > 0);
        assert!(s.range_facts > 0);
        assert!(s.live_values > 0);
        assert!(s.alias_sites > 0, "the array allocation is a site");
        assert_eq!(
            s.escape_no + s.escape_arg + s.escape_global,
            s.alias_sites,
            "every site is classified"
        );
        let flat = s.to_flat();
        assert_eq!(FactSummary::from_flat(&flat), Some(s));
    }

    #[test]
    fn malformed_flat_parses_to_none() {
        let s = summary_of(SRC, "S.sum");
        let flat = s.to_flat();
        assert!(FactSummary::from_flat(&flat[..flat.len() / 2]).is_none());
        assert!(FactSummary::from_flat(&format!("{flat}extra 1\n")).is_none());
        assert!(FactSummary::from_flat("nonsense").is_none());
        assert!(FactSummary::from_flat(&flat.replace(' ', "  ")).is_none());
    }

    #[test]
    fn add_accumulates_fieldwise() {
        let s = summary_of(SRC, "S.sum");
        let mut t = s;
        t.add(&s);
        assert_eq!(t.range_facts, 2 * s.range_facts);
        assert_eq!(t.live_values, 2 * s.live_values);
        assert_eq!(t.escape_no, 2 * s.escape_no);
    }
}
