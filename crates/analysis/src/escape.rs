//! Allocation-site escape analysis.
//!
//! Classifies every allocation site of a function on the three-point
//! lattice `NoEscape < ArgEscape < GlobalEscape` by scanning the
//! escape *events* a site's references can flow through:
//!
//! * stored into a field/element of another object — [`Escape::Arg`]
//!   when the container is itself a known local allocation,
//!   [`Escape::Global`] when the container is unknown;
//! * passed to a call (receiver or argument) or returned —
//!   [`Escape::Arg`]: the callee/caller can hold the reference;
//! * stored into a static or thrown — [`Escape::Global`].
//!
//! Escalation walks every value's *possible* site set (the points-to
//! sites, with or without external taint), so a site is never lost at
//! a phi that also merges an unknown reference. The soundness argument
//! for the single pass (no fixpoint) then rests on one lemma the
//! optimizer's "facts survive calls" rule also relies on: **the
//! external component of a points-to fact can never denote an
//! [`Escape::No`] site.** A `NoEscape` site was, by definition, never
//! stored anywhere, never passed, returned, or thrown — so no
//! reference to it exists in the heap, in any static, in a callee, or
//! in the caller. But external references only arise from parameters,
//! heap loads, call results, and caught exceptions — exactly the
//! channels a `NoEscape` site can never travel. Hence skipping the
//! external component during escalation only ever under-ranks sites
//! that already escaped through a syntactic event of their own — and
//! consumers treat `Arg` and `Global` identically anyway (both
//! invalidate heap facts at calls and both disqualify dead-store
//! elimination).
//!
//! Consumers: `opt::loadfwd` keeps `(site, field)` facts alive across
//! calls when every site of the base is `NoEscape` (the callee cannot
//! possibly obtain the reference, so it cannot write the field);
//! `opt::dse` deletes stores to `NoEscape` sites never read again; the
//! [`crate::lint`]er surfaces the same facts as heap diagnostics.

use crate::alias::{AliasAnalysis, AllocSite};
use safetsa_core::cfg::Cfg;
use safetsa_core::function::Function;
use safetsa_core::instr::Instr;
use safetsa_core::value::ValueId;
use std::collections::BTreeSet;
use std::collections::HashMap;

/// How far a site's references can travel, ordered by reach.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Escape {
    /// Never leaves the function's SSA values: no store, call,
    /// return, or throw ever saw a reference to it.
    #[default]
    No,
    /// Reaches a callee or the caller (call argument/receiver, return
    /// value, or stored inside another local allocation that may do
    /// so).
    Arg,
    /// Reaches a static field or an exception path — any code may hold
    /// it afterwards.
    Global,
}

impl Escape {
    /// The lowercase name for diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Escape::No => "no-escape",
            Escape::Arg => "arg-escape",
            Escape::Global => "global-escape",
        }
    }
}

/// Per-site escape classification for one function.
#[derive(Debug)]
pub struct EscapeAnalysis {
    states: HashMap<AllocSite, Escape>,
}

impl EscapeAnalysis {
    /// The classification of `site` ([`Escape::No`] when no event ever
    /// escalated it).
    pub fn of(&self, site: AllocSite) -> Escape {
        self.states.get(&site).copied().unwrap_or(Escape::No)
    }

    /// Whether every site of `sites` is [`Escape::No`] — the guard for
    /// keeping heap facts alive across a call and for dead-store
    /// elimination.
    pub fn all_no_escape(&self, sites: &BTreeSet<AllocSite>) -> bool {
        sites.iter().all(|s| self.of(*s) == Escape::No)
    }

    /// `(no, arg, global)` site counts over `sites`.
    pub fn counts(&self, sites: &[AllocSite]) -> (u64, u64, u64) {
        let mut c = (0, 0, 0);
        for s in sites {
            match self.of(*s) {
                Escape::No => c.0 += 1,
                Escape::Arg => c.1 += 1,
                Escape::Global => c.2 += 1,
            }
        }
        c
    }
}

/// Runs the escape analysis over `f`, on top of `alias`'s facts.
pub fn analyze(f: &Function, cfg: &Cfg, alias: &AliasAnalysis) -> EscapeAnalysis {
    let mut states: HashMap<AllocSite, Escape> = HashMap::new();
    let mut escalate = |v: ValueId, to: Escape| {
        // The external component of the fact cannot denote a NoEscape
        // site (see module docs), so the site set covers everything
        // that soundly needs escalation.
        for s in alias.possible_sites(v) {
            let e = states.entry(s).or_default();
            *e = (*e).max(to);
        }
    };

    for block in &f.blocks {
        for instr in &block.instrs {
            match instr {
                Instr::SetField { object, value, .. } => {
                    let level = if alias.sites_of(*object).is_some() {
                        Escape::Arg
                    } else {
                        Escape::Global
                    };
                    escalate(*value, level);
                }
                Instr::SetElt { array, value, .. } => {
                    let level = if alias.sites_of(*array).is_some() {
                        Escape::Arg
                    } else {
                        Escape::Global
                    };
                    escalate(*value, level);
                }
                Instr::SetStatic { value, .. } => escalate(*value, Escape::Global),
                Instr::XCall { receiver, args, .. } => {
                    if let Some(r) = receiver {
                        escalate(*r, Escape::Arg);
                    }
                    for a in args {
                        escalate(*a, Escape::Arg);
                    }
                }
                Instr::XDispatch { receiver, args, .. } => {
                    escalate(*receiver, Escape::Arg);
                    for a in args {
                        escalate(*a, Escape::Arg);
                    }
                }
                _ => {}
            }
        }
    }
    for (_, v) in &cfg.return_uses {
        if let Some(v) = v {
            escalate(*v, Escape::Arg);
        }
    }
    for (_, v) in &cfg.throw_uses {
        escalate(*v, Escape::Global);
    }

    EscapeAnalysis { states }
}
