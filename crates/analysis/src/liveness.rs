//! Liveness: which SSA values can influence observable behaviour.
//!
//! The backward instance of the framework: roots are the function's
//! observable uses (branch conditions, return/throw operands), and
//! each instruction propagates demand to its operands — effectful
//! instructions (stores, calls, exceptional checks) demand their
//! operands unconditionally, pure ones only when their own result is
//! demanded. A live safe-index value also keeps its provenance array
//! alive, mirroring the verifier's provenance discipline.
//!
//! `crates/opt`'s DCE consumes the complement (dead pure values); the
//! `checkelim` pass sharpens it further by deleting *exceptional*
//! checks whose results are dead once the analyses prove they cannot
//! trap — something liveness alone can never justify.

use crate::framework::{run_backward, BackwardAnalysis, Fixpoint, JoinLattice};
use safetsa_core::cfg::Cfg;
use safetsa_core::function::Function;
use safetsa_core::instr::Instr;
use safetsa_core::value::{BlockId, ValueId};

/// The single-point liveness lattice ("demanded").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Live;

impl JoinLattice for Live {
    fn join(&self, _other: &Live) -> Live {
        Live
    }
}

/// Whether an instruction's only observable effect is its result —
/// the same set DCE treats as removable.
pub fn is_pure(i: &Instr) -> bool {
    matches!(
        i,
        Instr::Primitive { .. }
            | Instr::Downcast { .. }
            | Instr::InstanceOf { .. }
            | Instr::RefEq { .. }
            | Instr::ArrayLength { .. }
            | Instr::GetField { .. }
            | Instr::GetStatic { .. }
            | Instr::GetElt { .. }
            | Instr::New { .. }
    )
}

struct Analysis;

impl BackwardAnalysis for Analysis {
    type Fact = Live;

    fn roots(&mut self, _f: &Function, cfg: &Cfg) -> Vec<(ValueId, Live)> {
        let mut out = Vec::new();
        for (_, v) in &cfg.cond_uses {
            out.push((*v, Live));
        }
        for (_, v) in &cfg.return_uses {
            if let Some(v) = v {
                out.push((*v, Live));
            }
        }
        for (_, v) in &cfg.throw_uses {
            out.push((*v, Live));
        }
        out
    }

    fn transfer(
        &mut self,
        f: &Function,
        b: BlockId,
        k: usize,
        result: Option<&Live>,
    ) -> Vec<(ValueId, Live)> {
        let instr = &f.block(b).instrs[k];
        let demanded = result.is_some() || !is_pure(instr);
        if !demanded {
            return Vec::new();
        }
        let mut out: Vec<(ValueId, Live)> = instr.operands().into_iter().map(|v| (v, Live)).collect();
        if let Some(r) = f.instr_result(b, k) {
            if result.is_some() {
                if let Some(p) = f.value(r).provenance {
                    out.push((p, Live));
                }
            }
        }
        out
    }

    fn phi(
        &mut self,
        f: &Function,
        b: BlockId,
        k: usize,
        result: Option<&Live>,
    ) -> Vec<(ValueId, Live)> {
        if result.is_none() {
            return Vec::new();
        }
        let mut out: Vec<(ValueId, Live)> = f.block(b).phis[k]
            .args
            .iter()
            .map(|(_, v)| (*v, Live))
            .collect();
        if let Some(p) = f.value(f.phi_result(b, k)).provenance {
            out.push((p, Live));
        }
        out
    }
}

/// The liveness facts for one function.
#[derive(Debug)]
pub struct Liveness {
    facts: crate::framework::Facts<Live>,
    /// Fixpoint passes until stabilization.
    pub iterations: u64,
}

impl Liveness {
    /// Whether `v` can influence observable behaviour.
    pub fn is_live(&self, v: ValueId) -> bool {
        self.facts.get(v).is_some()
    }

    /// Number of live values (telemetry).
    pub fn live_count(&self) -> u64 {
        self.facts.computed()
    }
}

/// Runs liveness over `f`.
pub fn analyze(f: &Function, cfg: &Cfg) -> Liveness {
    let Fixpoint { facts, iterations } = run_backward(f, cfg, &mut Analysis);
    Liveness { facts, iterations }
}
