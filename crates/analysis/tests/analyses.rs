//! Behavioural tests for the sparse dataflow analyses and the linter,
//! driven through the real frontend + SSA construction pipeline.

use safetsa_analysis::{lint_function, lint_module, Liveness, Nullity, Severity};
use safetsa_core::cfg::Cfg;
use safetsa_core::function::Function;
use safetsa_core::instr::Instr;
use safetsa_core::value::BlockId;
use safetsa_core::Module;

fn build(src: &str) -> Module {
    let prog = safetsa_frontend::compile(src).expect("front-end");
    safetsa_ssa::lower_program(&prog).expect("lowering").module
}

fn func<'m>(m: &'m Module, name: &str) -> &'m Function {
    m.functions
        .iter()
        .find(|f| f.name == name)
        .unwrap_or_else(|| panic!("no function {name}"))
}

/// Every `(block, index, instr)` site matching `pred`.
fn find_sites<'f>(
    f: &'f Function,
    pred: impl Fn(&Instr) -> bool,
) -> Vec<(BlockId, usize, &'f Instr)> {
    let mut out = Vec::new();
    for (bi, block) in f.blocks.iter().enumerate() {
        for (k, i) in block.instrs.iter().enumerate() {
            if pred(i) {
                out.push((BlockId(bi as u32), k, i));
            }
        }
    }
    out
}

#[test]
fn nullness_proves_fresh_allocation_nonnull() {
    let m = build(
        "class P { int x;
             static int g() { P q = new P(); return q.x; }
         }",
    );
    let f = func(&m, "P.g");
    let cfg = Cfg::build(f).unwrap();
    let nn = safetsa_analysis::nullness::analyze(&m.types, f, &cfg);
    let checks = find_sites(f, |i| matches!(i, Instr::NullCheck { .. }));
    assert!(!checks.is_empty(), "expected a nullcheck in P.g");
    for (b, _, i) in checks {
        let Instr::NullCheck { value, .. } = i else {
            unreachable!()
        };
        assert_eq!(
            nn.at(*value, b),
            Nullity::NonNull,
            "fresh allocation should be provably non-null"
        );
    }
    assert!(nn.facts_computed() > 0);
    assert!(nn.iterations >= 1);
}

#[test]
fn nullness_proves_null_literal_null() {
    let m = build(
        "class A { static int g() { int[] x = null; return x[0]; } }",
    );
    let f = func(&m, "A.g");
    let cfg = Cfg::build(f).unwrap();
    let nn = safetsa_analysis::nullness::analyze(&m.types, f, &cfg);
    let checks = find_sites(f, |i| matches!(i, Instr::NullCheck { .. }));
    assert_eq!(checks.len(), 1);
    let (b, _, Instr::NullCheck { value, .. }) = checks[0] else {
        unreachable!()
    };
    assert_eq!(nn.at(*value, b), Nullity::Null);
}

#[test]
fn range_proves_loop_index_in_bounds() {
    let m = build(
        "class A { static int sum(int[] a) {
             int s = 0;
             for (int i = 0; i < a.length; i++) s += a[i];
             return s;
         } }",
    );
    let f = func(&m, "A.sum");
    let cfg = Cfg::build(f).unwrap();
    let rg = safetsa_analysis::range::analyze(&m.types, f, &cfg);
    let checks = find_sites(f, |i| matches!(i, Instr::IndexCheck { .. }));
    assert_eq!(checks.len(), 1, "one bounds check in the loop body");
    let (b, _, Instr::IndexCheck { array, index, .. }) = checks[0] else {
        unreachable!()
    };
    assert!(
        rg.proves_index(&m.types, f, b, *array, *index),
        "i in [0, a.length) should be provably in bounds"
    );
    assert!(rg.facts_computed() > 0);
}

#[test]
fn range_flags_constant_out_of_bounds() {
    let m = build(
        "class A { static int g() { int[] a = new int[2]; return a[5]; } }",
    );
    let f = func(&m, "A.g");
    let cfg = Cfg::build(f).unwrap();
    let rg = safetsa_analysis::range::analyze(&m.types, f, &cfg);
    let checks = find_sites(f, |i| matches!(i, Instr::IndexCheck { .. }));
    assert_eq!(checks.len(), 1);
    let (b, _, Instr::IndexCheck { array, index, .. }) = checks[0] else {
        unreachable!()
    };
    assert!(rg.always_out_of_bounds(&m.types, f, b, *array, *index));
    assert!(!rg.proves_index(&m.types, f, b, *array, *index));
}

#[test]
fn liveness_kills_unused_pure_values() {
    let m = build(
        "class A { static int g(int x) {
             int unused = x * x;
             return x + 1;
         } }",
    );
    let f = func(&m, "A.g");
    let cfg = Cfg::build(f).unwrap();
    let lv: Liveness = safetsa_analysis::liveness::analyze(f, &cfg);
    // The multiply feeding only `unused` is dead; the add is live.
    let mut saw_dead_mul = false;
    for (b, k, i) in find_sites(f, |i| matches!(i, Instr::Primitive { .. })) {
        let r = f.instr_result(b, k).unwrap();
        let name = i.mnemonic();
        let _ = name;
        if !lv.is_live(r) {
            saw_dead_mul = true;
        }
    }
    assert!(saw_dead_mul, "the unused multiply should be dead");
    assert!(lv.live_count() > 0);
}

#[test]
fn lint_reports_always_null_deref_as_error() {
    let m = build(
        "class A { static int g() { int[] x = null; return x[0]; } }",
    );
    let diags = lint_module(&m);
    let hit = diags
        .iter()
        .find(|d| d.kind == "always-null-deref")
        .expect("always-null-deref diagnostic");
    assert_eq!(hit.severity, Severity::Error);
    assert_eq!(hit.function, "A.g");
    assert!(hit.instr.is_some());
}

#[test]
fn lint_downgrades_trap_inside_try_to_warning() {
    let m = build(
        "class A { static int g() {
             int[] x = null;
             try { return x[0]; }
             catch (NullPointerException e) { return -1; }
         } }",
    );
    let diags = lint_module(&m);
    let hit = diags
        .iter()
        .find(|d| d.kind == "always-null-deref")
        .expect("always-null-deref diagnostic");
    assert_eq!(
        hit.severity,
        Severity::Warning,
        "provable trap inside try is intentional-looking; warn only"
    );
}

#[test]
fn lint_reports_out_of_bounds_index() {
    let m = build(
        "class A { static int g() { int[] a = new int[3]; return a[7]; } }",
    );
    let diags = lint_module(&m);
    let hit = diags
        .iter()
        .find(|d| d.kind == "out-of-bounds-index")
        .expect("out-of-bounds-index diagnostic");
    assert_eq!(hit.severity, Severity::Error);
}

#[test]
fn lint_reports_dead_store() {
    let m = build(
        "class Box { int v;
             static int g() {
                 Box b = new Box();
                 b.v = 1;
                 b.v = 2;
                 return b.v;
             }
         }",
    );
    let diags = lint_module(&m);
    assert!(
        diags.iter().any(|d| d.kind == "dead-store"),
        "overwritten b.v = 1 should be a dead store: {diags:?}"
    );
}

#[test]
fn lint_reports_constant_branch_and_unreachable_code() {
    let m = build(
        "class A { static int g(int x) {
             if (2 < 1) { return x * 100; }
             return x;
         } }",
    );
    let f = func(&m, "A.g");
    let diags = lint_function(&m.types, f);
    assert!(
        diags.iter().any(|d| d.kind == "constant-branch"),
        "{diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.kind == "unreachable-code"),
        "{diags:?}"
    );
    assert!(diags.iter().all(|d| d.severity == Severity::Warning));
}

#[test]
fn lint_reports_unused_value() {
    let m = build(
        "class A { static int g(int x) {
             int unused = x * x;
             return x;
         } }",
    );
    let diags = lint_module(&m);
    assert!(
        diags.iter().any(|d| d.kind == "unused-value"),
        "{diags:?}"
    );
}

#[test]
fn lint_reports_never_read_store_on_non_escaping_array() {
    let m = build(
        "class A { static int g() {
             int[] scratch = new int[4];
             scratch[0] = 7;
             return 1;
         } }",
    );
    let diags = lint_module(&m);
    let hit = diags
        .iter()
        .find(|d| d.kind == "never-read-store")
        .expect("never-read-store diagnostic");
    assert_eq!(hit.severity, Severity::Warning);
    assert_eq!(hit.function, "A.g");
}

#[test]
fn lint_reports_never_written_load() {
    let m = build(
        "class A { static int g() {
             int[] zero = new int[4];
             return zero[0];
         } }",
    );
    let diags = lint_module(&m);
    let hit = diags
        .iter()
        .find(|d| d.kind == "never-written-load")
        .expect("never-written-load diagnostic");
    assert_eq!(hit.severity, Severity::Warning);
}

#[test]
fn lint_notes_aliased_mutation_in_loop() {
    let m = build(
        "class Cell { int v; }
         class A { static int g(Cell a, Cell b, int n) {
             int s = 0;
             for (int i = 0; i < n; i++) { a.v = i; s = s + b.v; }
             return s;
         } }",
    );
    let diags = lint_module(&m);
    let hit = diags
        .iter()
        .find(|d| d.kind == "aliased-mutation-in-loop")
        .expect("aliased-mutation-in-loop diagnostic");
    assert_eq!(hit.severity, Severity::Note);
    assert_eq!(hit.function, "A.g");
}

#[test]
fn lint_loop_note_respects_escape_lemma() {
    // The store goes through a non-escaping scratch array; the load
    // goes through the external parameter. By the escape lemma they
    // cannot alias, so no note must be emitted.
    let m = build(
        "class A { static int g(int[] img) {
             int[] tmp = new int[img.length];
             int s = 0;
             for (int i = 0; i < img.length; i++) { tmp[i] = img[i]; s = s + tmp[i]; }
             return s;
         } }",
    );
    let diags = lint_module(&m);
    assert!(
        diags.iter().all(|d| d.kind != "aliased-mutation-in-loop"),
        "non-escaping scratch cannot alias the parameter: {diags:?}"
    );
}

#[test]
fn lint_is_quiet_on_clean_code() {
    let m = build(
        "class A { static int sum(int[] a) {
             int s = 0;
             for (int i = 0; i < a.length; i++) s += a[i];
             return s;
         }
         static int main() {
             int[] a = new int[10];
             for (int i = 0; i < a.length; i++) a[i] = i;
             return sum(a);
         } }",
    );
    let diags = lint_module(&m);
    assert!(
        diags.iter().all(|d| d.severity != Severity::Error),
        "clean code must produce no error diagnostics: {diags:?}"
    );
}
