//! A self-contained stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the slice of the criterion API its benches use:
//! [`Criterion::benchmark_group`], `sample_size`, `throughput`,
//! `bench_function`, `finish`, [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Timing is a plain
//! mean over the sampled iterations — good enough to compare the
//! workspace's engines against each other, not a statistics suite.

use std::time::Instant;

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group (reported per second).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            samples: 10,
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Declares the per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Times `f` and prints the mean per-iteration wall-clock time.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: self.samples as u64,
            elapsed_ns: 0,
        };
        f(&mut b);
        let per_iter = b.elapsed_ns / b.iters.max(1);
        let rate = self.throughput.map(|t| match t {
            Throughput::Bytes(n) => format!(
                ", {:.1} MiB/s",
                n as f64 / (per_iter.max(1) as f64 / 1e9) / (1024.0 * 1024.0)
            ),
            Throughput::Elements(n) => format!(
                ", {:.0} elem/s",
                n as f64 / (per_iter.max(1) as f64 / 1e9)
            ),
        });
        println!(
            "  {name}: {per_iter} ns/iter ({} iters{})",
            b.iters,
            rate.unwrap_or_default()
        );
        self
    }

    /// Ends the group (a no-op; present for API compatibility).
    pub fn finish(&mut self) {}
}

/// Runs and times the benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u64,
}

impl Bencher {
    /// Calls `routine` once per sample, accumulating wall-clock time.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos() as u64;
    }
}

/// Declares a function that runs the listed benchmarks.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_a_closure() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        g.throughput(Throughput::Bytes(8));
        let mut runs = 0u32;
        g.bench_function("noop", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 3);
    }
}
