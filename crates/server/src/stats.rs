//! Cross-thread daemon statistics.
//!
//! The pipeline's [`Telemetry`](safetsa_telemetry::Telemetry) registry
//! is `RefCell`-based and deliberately single-threaded, so the daemon
//! keeps its own counters as relaxed atomics: every reader and worker
//! thread bumps them lock-free, and the `stats` control op (or the
//! final [`crate::ServeSummary`]) snapshots them. Relaxed ordering is
//! fine — these are monotone counters, not synchronization.

use safetsa_telemetry::{Histogram, Json};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Live counters for one daemon instance. All methods are `&self` and
/// thread-safe.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Work requests admitted to the queue.
    pub accepted: AtomicU64,
    /// Work requests fully processed (one response written).
    pub completed: AtomicU64,
    /// Completed with `status:"ok"`.
    pub ok: AtomicU64,
    /// Completed with `status:"error"` (request-level failures).
    pub errors: AtomicU64,
    /// Admission rejections while the queue was full.
    pub shed: AtomicU64,
    /// Admission rejections while draining for shutdown.
    pub rejected_draining: AtomicU64,
    /// Frames that failed to parse as requests (includes over-long
    /// frames).
    pub malformed: AtomicU64,
    /// Worker panics caught at the request boundary.
    pub panics_isolated: AtomicU64,
    /// Requests that ran past their deadline.
    pub deadline_exceeded: AtomicU64,
    /// Requests that exhausted their fuel budget.
    pub fuel_exhausted: AtomicU64,
    /// Compile results served from the content-addressed cache.
    pub cache_hits: AtomicU64,
    /// Cache stores that failed and were degraded to cache-off.
    pub cache_degraded: AtomicU64,
    /// Inline control ops answered (ping/stats/shutdown).
    pub control: AtomicU64,
    /// End-to-end latency of completed work requests, admission → last
    /// byte of the response, in nanoseconds.
    pub latency_ns: Mutex<Histogram>,
}

impl ServeStats {
    /// Increments a counter by one.
    pub fn bump(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one completed-request latency.
    pub fn observe_latency(&self, ns: u64) {
        self.latency_ns.lock().unwrap().observe(ns);
    }

    /// Snapshots every counter into a JSON object (the `stats` control
    /// op's payload and the shutdown summary).
    pub fn to_json(&self) -> Json {
        let g = |c: &AtomicU64| Json::U64(c.load(Ordering::Relaxed));
        let mut o = Json::obj();
        o.set("connections", g(&self.connections));
        o.set("accepted", g(&self.accepted));
        o.set("completed", g(&self.completed));
        o.set("ok", g(&self.ok));
        o.set("errors", g(&self.errors));
        o.set("shed", g(&self.shed));
        o.set("rejected_draining", g(&self.rejected_draining));
        o.set("malformed", g(&self.malformed));
        o.set("panics_isolated", g(&self.panics_isolated));
        o.set("deadline_exceeded", g(&self.deadline_exceeded));
        o.set("fuel_exhausted", g(&self.fuel_exhausted));
        o.set("cache_hits", g(&self.cache_hits));
        o.set("cache_degraded", g(&self.cache_degraded));
        o.set("control", g(&self.control));
        let lat = self.latency_ns.lock().unwrap();
        let mut l = Json::obj();
        l.set("count", Json::U64(lat.count));
        l.set("min_ns", Json::U64(lat.min));
        l.set("max_ns", Json::U64(lat.max));
        l.set("mean_ns", Json::F64(lat.mean()));
        o.set("latency", l);
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps_and_latency() {
        let s = ServeStats::default();
        s.bump(&s.accepted);
        s.bump(&s.accepted);
        s.bump(&s.shed);
        s.observe_latency(1_000);
        s.observe_latency(3_000);
        let j = s.to_json();
        assert_eq!(j.get("accepted").and_then(Json::as_u64), Some(2));
        assert_eq!(j.get("shed").and_then(Json::as_u64), Some(1));
        let lat = j.get("latency").unwrap();
        assert_eq!(lat.get("count").and_then(Json::as_u64), Some(2));
        assert_eq!(lat.get("max_ns").and_then(Json::as_u64), Some(3_000));
    }

    #[test]
    fn stats_are_shareable_across_threads() {
        let s = std::sync::Arc::new(ServeStats::default());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.bump(&s.completed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let j = s.to_json();
        assert_eq!(j.get("completed").and_then(Json::as_u64), Some(4000));
    }
}
