//! Cross-thread daemon statistics.
//!
//! The pipeline's [`Telemetry`](safetsa_telemetry::Telemetry) registry
//! is `RefCell`-based and deliberately single-threaded, so the daemon
//! keeps its own counters as relaxed atomics: every reader and worker
//! thread bumps them lock-free, and the `stats` control op (or the
//! final [`crate::ServeSummary`]) snapshots them. Relaxed ordering is
//! fine — these are monotone counters, not synchronization.
//!
//! Three finer-grained views ride along behind mutexes (they are
//! touched once per request, not per instruction):
//!
//! * per-error-**kind** counters (`deadline_exceeded`, `panic`, …),
//! * per-**tenant** request/ok/error/shed/panic breakdowns, and
//! * a bounded reservoir of raw latency samples, from which the
//!   `stats` payload reports *exact* nearest-rank p50/p99 over the
//!   retained window — the power-of-two histogram stays for
//!   count/min/max/mean, but quantiles no longer inherit its up-to-2×
//!   bucket quantization.

use safetsa_telemetry::{Histogram, Json};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// How many raw latency samples the reservoir retains; once full, new
/// samples overwrite the oldest (a sliding window over recent load).
pub const LATENCY_SAMPLE_CAP: usize = 4096;

/// Per-tenant request accounting (tenant name `""` is reported as
/// `"default"`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantCounters {
    /// Work requests that reached admission (admitted or shed).
    pub requests: u64,
    /// Completed with `status:"ok"`.
    pub ok: u64,
    /// Completed with `status:"error"`.
    pub errors: u64,
    /// Rejected at admission (queue full or draining).
    pub shed: u64,
    /// Worker panics isolated on this tenant's requests.
    pub panics: u64,
}

/// The raw-sample sliding window behind exact percentiles.
#[derive(Debug, Default)]
struct LatencyReservoir {
    samples: Vec<u64>,
    /// Overwrite cursor once `samples` has reached capacity.
    next: usize,
}

impl LatencyReservoir {
    fn observe(&mut self, ns: u64) {
        if self.samples.len() < LATENCY_SAMPLE_CAP {
            self.samples.push(ns);
        } else {
            self.samples[self.next] = ns;
            self.next = (self.next + 1) % LATENCY_SAMPLE_CAP;
        }
    }

    /// Exact nearest-rank percentiles over the retained window:
    /// `(p50, p99)`, `None` when empty.
    fn percentiles(&self) -> Option<(u64, u64)> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = |p: f64| {
            let n = sorted.len();
            let idx = ((p / 100.0) * n as f64).ceil() as usize;
            sorted[idx.clamp(1, n) - 1]
        };
        Some((rank(50.0), rank(99.0)))
    }
}

/// Live counters for one daemon instance. All methods are `&self` and
/// thread-safe.
#[derive(Debug)]
pub struct ServeStats {
    /// When this daemon instance started (drives `uptime_ms`).
    pub started: Instant,
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Work requests admitted to the queue.
    pub accepted: AtomicU64,
    /// Work requests fully processed (one response written).
    pub completed: AtomicU64,
    /// Completed with `status:"ok"`.
    pub ok: AtomicU64,
    /// Completed with `status:"error"` (request-level failures).
    pub errors: AtomicU64,
    /// Admission rejections while the queue was full.
    pub shed: AtomicU64,
    /// Admission rejections while draining for shutdown.
    pub rejected_draining: AtomicU64,
    /// Frames that failed to parse as requests (includes over-long
    /// frames).
    pub malformed: AtomicU64,
    /// Worker panics caught at the request boundary.
    pub panics_isolated: AtomicU64,
    /// Requests that ran past their deadline.
    pub deadline_exceeded: AtomicU64,
    /// Requests that exhausted their fuel budget.
    pub fuel_exhausted: AtomicU64,
    /// Compile results served from the content-addressed cache.
    pub cache_hits: AtomicU64,
    /// Cache stores that failed and were degraded to cache-off.
    pub cache_degraded: AtomicU64,
    /// Inline control ops answered (ping/stats/trace/shutdown).
    pub control: AtomicU64,
    /// End-to-end latency of completed work requests, admission → last
    /// byte of the response, in nanoseconds.
    pub latency_ns: Mutex<Histogram>,
    /// Raw latency samples for exact percentiles.
    latency_samples: Mutex<LatencyReservoir>,
    /// Error responses by stable `kind` token.
    kinds: Mutex<BTreeMap<String, u64>>,
    /// Per-tenant breakdowns.
    tenants: Mutex<BTreeMap<String, TenantCounters>>,
}

impl Default for ServeStats {
    fn default() -> Self {
        ServeStats {
            started: Instant::now(),
            connections: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            rejected_draining: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
            panics_isolated: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            fuel_exhausted: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_degraded: AtomicU64::new(0),
            control: AtomicU64::new(0),
            latency_ns: Mutex::new(Histogram::default()),
            latency_samples: Mutex::new(LatencyReservoir::default()),
            kinds: Mutex::new(BTreeMap::new()),
            tenants: Mutex::new(BTreeMap::new()),
        }
    }
}

fn tenant_key(tenant: &str) -> &str {
    if tenant.is_empty() {
        "default"
    } else {
        tenant
    }
}

impl ServeStats {
    /// Increments a counter by one.
    pub fn bump(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments the per-kind counter for one error `kind` token.
    pub fn bump_kind(&self, kind: &str) {
        *self
            .kinds
            .lock()
            .unwrap()
            .entry(kind.to_string())
            .or_insert(0) += 1;
    }

    /// Updates one tenant's breakdown (`""` maps to `"default"`).
    pub fn tenant<F: FnOnce(&mut TenantCounters)>(&self, tenant: &str, f: F) {
        f(self
            .tenants
            .lock()
            .unwrap()
            .entry(tenant_key(tenant).to_string())
            .or_default());
    }

    /// Records one completed-request latency.
    pub fn observe_latency(&self, ns: u64) {
        self.latency_ns.lock().unwrap().observe(ns);
        self.latency_samples.lock().unwrap().observe(ns);
    }

    /// Snapshots every counter into a JSON object (the `stats` control
    /// op's payload and the shutdown summary).
    pub fn to_json(&self) -> Json {
        let g = |c: &AtomicU64| Json::U64(c.load(Ordering::Relaxed));
        let mut o = Json::obj();
        o.set(
            "uptime_ms",
            Json::U64(self.started.elapsed().as_millis().min(u64::MAX as u128) as u64),
        );
        o.set("connections", g(&self.connections));
        o.set("accepted", g(&self.accepted));
        o.set("completed", g(&self.completed));
        o.set("ok", g(&self.ok));
        o.set("errors", g(&self.errors));
        o.set("shed", g(&self.shed));
        o.set("rejected_draining", g(&self.rejected_draining));
        o.set("malformed", g(&self.malformed));
        o.set("panics_isolated", g(&self.panics_isolated));
        o.set("deadline_exceeded", g(&self.deadline_exceeded));
        o.set("fuel_exhausted", g(&self.fuel_exhausted));
        o.set("cache_hits", g(&self.cache_hits));
        o.set("cache_degraded", g(&self.cache_degraded));
        o.set("control", g(&self.control));
        let mut kinds = Json::obj();
        for (kind, n) in self.kinds.lock().unwrap().iter() {
            kinds.set(kind, Json::U64(*n));
        }
        o.set("kinds", kinds);
        let mut tenants = Json::obj();
        for (name, c) in self.tenants.lock().unwrap().iter() {
            let mut t = Json::obj();
            t.set("requests", Json::U64(c.requests));
            t.set("ok", Json::U64(c.ok));
            t.set("errors", Json::U64(c.errors));
            t.set("shed", Json::U64(c.shed));
            t.set("panics", Json::U64(c.panics));
            tenants.set(name, t);
        }
        o.set("tenants", tenants);
        let lat = self.latency_ns.lock().unwrap();
        let mut l = Json::obj();
        l.set("count", Json::U64(lat.count));
        l.set("min_ns", Json::U64(lat.min));
        l.set("max_ns", Json::U64(lat.max));
        l.set("mean_ns", Json::F64(lat.mean()));
        if let Some((p50, p99)) = self.latency_samples.lock().unwrap().percentiles() {
            l.set("p50_ns", Json::U64(p50));
            l.set("p99_ns", Json::U64(p99));
        }
        o.set("latency", l);
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps_and_latency() {
        let s = ServeStats::default();
        s.bump(&s.accepted);
        s.bump(&s.accepted);
        s.bump(&s.shed);
        s.observe_latency(1_000);
        s.observe_latency(3_000);
        let j = s.to_json();
        assert_eq!(j.get("accepted").and_then(Json::as_u64), Some(2));
        assert_eq!(j.get("shed").and_then(Json::as_u64), Some(1));
        let lat = j.get("latency").unwrap();
        assert_eq!(lat.get("count").and_then(Json::as_u64), Some(2));
        assert_eq!(lat.get("max_ns").and_then(Json::as_u64), Some(3_000));
        assert!(j.get("uptime_ms").and_then(Json::as_u64).is_some());
    }

    #[test]
    fn stats_are_shareable_across_threads() {
        let s = std::sync::Arc::new(ServeStats::default());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.bump(&s.completed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let j = s.to_json();
        assert_eq!(j.get("completed").and_then(Json::as_u64), Some(4000));
    }

    #[test]
    fn percentiles_are_exact_not_bucketed() {
        let s = ServeStats::default();
        // 1..=100: nearest-rank p50 = 50, p99 = 99. A pow2 histogram
        // could only answer with a bucket boundary (64 / 128).
        for ns in 1..=100u64 {
            s.observe_latency(ns);
        }
        let j = s.to_json();
        let lat = j.get("latency").unwrap();
        assert_eq!(lat.get("p50_ns").and_then(Json::as_u64), Some(50));
        assert_eq!(lat.get("p99_ns").and_then(Json::as_u64), Some(99));
    }

    #[test]
    fn latency_reservoir_slides_once_full() {
        let mut r = LatencyReservoir::default();
        for _ in 0..LATENCY_SAMPLE_CAP {
            r.observe(1);
        }
        for _ in 0..LATENCY_SAMPLE_CAP {
            r.observe(1_000);
        }
        // The window now holds only recent samples.
        let (p50, p99) = r.percentiles().unwrap();
        assert_eq!((p50, p99), (1_000, 1_000));
        assert_eq!(r.samples.len(), LATENCY_SAMPLE_CAP);
    }

    #[test]
    fn kind_and_tenant_breakdowns_accumulate() {
        let s = ServeStats::default();
        s.bump_kind("panic");
        s.bump_kind("panic");
        s.bump_kind("deadline_exceeded");
        s.tenant("gold", |t| {
            t.requests += 1;
            t.ok += 1;
        });
        s.tenant("", |t| t.shed += 1);
        let j = s.to_json();
        let kinds = j.get("kinds").unwrap();
        assert_eq!(kinds.get("panic").and_then(Json::as_u64), Some(2));
        assert_eq!(
            kinds.get("deadline_exceeded").and_then(Json::as_u64),
            Some(1)
        );
        let tenants = j.get("tenants").unwrap();
        let gold = tenants.get("gold").unwrap();
        assert_eq!(gold.get("ok").and_then(Json::as_u64), Some(1));
        let default = tenants.get("default").unwrap();
        assert_eq!(default.get("shed").and_then(Json::as_u64), Some(1));
    }
}
