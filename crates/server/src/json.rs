//! A hardened JSON *parser* for the serve protocol.
//!
//! The workspace's [`Json`] model (crates/telemetry) only renders; the
//! daemon also has to *read* attacker-supplied request frames. This
//! parser is written for that position in the trust boundary: strict
//! (no trailing garbage, no unknown escapes), recursion-bounded (a
//! frame of ten thousand `[` must not overflow the reader thread's
//! stack), and total — every malformed input is an `Err` with a byte
//! offset, never a panic.

use safetsa_telemetry::Json;

/// Maximum container nesting depth accepted. Deep enough for any real
/// request (ours nest two levels), shallow enough that parsing is far
/// from the thread's stack limit.
const MAX_DEPTH: usize = 64;

/// Parses one JSON document, requiring the whole input be consumed
/// (trailing whitespace allowed).
///
/// # Errors
///
/// Returns `"offset N: message"` for the first malformed byte.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("offset {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected byte")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            // Duplicate keys: last write wins, matching `Json::set`.
            if let Some(slot) = pairs.iter_mut().find(|(k, _)| *k == key) {
                slot.1 = val;
            } else {
                pairs.push((key, val));
            }
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b'}')?;
            return Ok(Json::Obj(pairs));
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b']')?;
            return Ok(Json::Arr(items));
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid codepoint")),
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                // Raw control bytes are invalid inside JSON strings.
                0x00..=0x1f => return Err(self.err("control byte in string")),
                _ => {
                    // Multi-byte UTF-8: the input is a &str, so the
                    // remaining continuation bytes are valid — copy the
                    // whole scalar.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    self.pos = start + width;
                    if self.pos > self.bytes.len() {
                        return Err(self.err("truncated UTF-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let d = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a' + 10),
                b'A'..=b'F' => u32::from(b - b'A' + 10),
                _ => return Err(self.err("bad hex digit")),
            };
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        self.eat(b'-');
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.eat(b'.') {
            float = true;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if float {
            return text
                .parse::<f64>()
                .map(Json::F64)
                .map_err(|_| self.err("bad number"));
        }
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Json::U64(u));
        }
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Json::I64(i));
        }
        // Out-of-range integers degrade to float rather than erroring.
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err("bad number"))
    }
}

fn utf8_width(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_rendered_documents() {
        let mut doc = Json::obj();
        doc.set("op", Json::Str("run".into()));
        doc.set("deadline_ms", Json::U64(50));
        doc.set("neg", Json::I64(-3));
        doc.set("f", Json::F64(1.5));
        doc.set("flags", Json::Arr(vec![Json::Bool(true), Json::Null]));
        let text = doc.render();
        let back = parse(&text).unwrap();
        assert_eq!(back.render(), text);
        // Pretty form parses to the same value.
        assert_eq!(parse(&doc.render_pretty()).unwrap().render(), text);
    }

    #[test]
    fn escapes_and_unicode() {
        let v = parse(r#""a\"b\n\tAé""#).unwrap();
        assert_eq!(v, Json::Str("a\"b\n\tAé".into()));
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v, Json::Str("😀".into()));
        assert!(parse(r#""\ud83d""#).is_err()); // lone surrogate
        assert!(parse(r#""\x41""#).is_err()); // unknown escape
    }

    #[test]
    fn rejects_malformed_input_without_panicking() {
        for bad in [
            "", "{", "}", "[1,", "{\"a\":}", "tru", "01x", "\"", "{\"a\" 1}",
            "nulll", "1 2", "{\"a\":1}garbage", "\u{1}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn nesting_bomb_is_an_error_not_a_stack_overflow() {
        let bomb = "[".repeat(100_000);
        assert!(parse(&bomb).is_err());
        let ok = format!("{}1{}", "[".repeat(60), "]".repeat(60));
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn duplicate_keys_last_write_wins() {
        let v = parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(2));
    }
}
