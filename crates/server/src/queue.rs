//! The bounded admission queue between connection readers and the
//! worker pool.
//!
//! Admission control lives in [`BoundedQueue::try_push`]: it never
//! blocks, so a reader thread can fast-reject (`shed`) the moment the
//! daemon is saturated instead of buffering unbounded work. Workers
//! block in [`BoundedQueue::pop`]; closing the queue wakes them all so
//! graceful shutdown is "close, then join".

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why [`BoundedQueue::try_push`] refused an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity — the daemon is overloaded.
    Full,
    /// The queue is closed — the daemon is draining for shutdown.
    Closed,
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity MPMC queue with non-blocking producers and
/// blocking consumers.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items at once.
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Non-blocking push: admits the item or returns it with the
    /// rejection reason.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`] — the item rides back so the caller can
    /// answer its originator.
    pub fn try_push(&self, item: T) -> Result<(), (T, PushError)> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err((item, PushError::Closed));
        }
        if inner.items.len() >= self.capacity {
            return Err((item, PushError::Full));
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocking pop: returns the next item, or `None` once the queue is
    /// closed *and* drained — the worker-pool exit condition, which is
    /// what makes shutdown graceful rather than abandoning queued work.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap();
        }
    }

    /// Closes the queue: future pushes are rejected, and workers drain
    /// what is already admitted, then observe `None`.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.ready.notify_all();
    }

    /// Items currently queued (racy; for stats only).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// Whether the queue is currently empty (racy; for stats only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The admission capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sheds_at_capacity_and_rejects_after_close() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err((3, PushError::Full)));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        q.close();
        assert_eq!(q.try_push(4), Err((4, PushError::Closed)));
        // Close drains before reporting exhaustion.
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        // Give the consumers a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), None);
        }
    }

    #[test]
    fn items_flow_producer_to_consumer_under_contention() {
        let q = Arc::new(BoundedQueue::new(8));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        let mut pushed = 0u32;
        for i in 0..100u32 {
            loop {
                match q.try_push(i) {
                    Ok(()) => {
                        pushed += 1;
                        break;
                    }
                    Err((_, PushError::Full)) => std::thread::yield_now(),
                    Err((_, PushError::Closed)) => unreachable!(),
                }
            }
        }
        q.close();
        let got = consumer.join().unwrap();
        assert_eq!(got.len() as u32, pushed);
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
