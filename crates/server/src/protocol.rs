//! The `safetsa-serve/1` wire protocol.
//!
//! Requests and responses are newline-delimited JSON objects. Every
//! request names an `op`; every *accepted* request produces exactly one
//! response carrying the same `id` — that invariant is what the chaos
//! harness asserts, so anything that can go wrong (parse failure,
//! shedding, panic, deadline) must still route to one structured
//! response line.
//!
//! Request object:
//!
//! ```json
//! {"op":"run","id":"r1","tenant":"gold","source":"class A {...}",
//!  "entry":"A.main","deadline_ms":250}
//! ```
//!
//! Response object (always has `schema`, `id`, `status`):
//!
//! ```json
//! {"schema":"safetsa-serve/1","id":"r1","status":"ok","payload":{...}}
//! {"schema":"safetsa-serve/1","id":"r1","status":"error",
//!  "kind":"deadline_exceeded","message":"deadline exceeded"}
//! {"schema":"safetsa-serve/1","id":"r1","status":"overloaded",
//!  "kind":"queue_full","message":"request queue is full"}
//! ```

use crate::json;
use safetsa_telemetry::Json;

/// Protocol schema identifier stamped into every response.
pub const SCHEMA: &str = "safetsa-serve/1";

/// What a request asks the daemon to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Compile `source` to wire bytes (cache-fronted).
    Compile,
    /// Decode and verify `tsa` (hex wire bytes).
    Verify,
    /// Compile (or decode) and execute under the tenant's limits.
    Run,
    /// Liveness probe; answered inline by the reader thread.
    Ping,
    /// Server statistics snapshot; answered inline.
    Stats,
    /// Flight-recorder query; answered inline. `query` selects a
    /// request id (omitted = every retained record).
    Trace,
    /// Ask the daemon to drain and exit.
    Shutdown,
    /// Anything else — rejected with `unsupported_op`, but the request
    /// id still gets its one response.
    Unknown(String),
}

impl Op {
    /// Whether this op is dispatched to the worker pool (as opposed to
    /// being answered inline by the connection reader).
    pub fn is_work(&self) -> bool {
        matches!(self, Op::Compile | Op::Verify | Op::Run)
    }
}

/// A parsed, not-yet-admitted request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Caller-chosen correlation id, echoed into the response.
    pub id: String,
    /// The operation.
    pub op: Op,
    /// Tenant name selecting a [`crate::TenantProfile`]; empty selects
    /// the default profile.
    pub tenant: String,
    /// Source text for `compile` / `run`.
    pub source: Option<String>,
    /// Hex-encoded wire bytes for `verify` / `run`.
    pub tsa: Option<String>,
    /// Entry point for `run` (`"Class.method"`).
    pub entry: Option<String>,
    /// Requested deadline; clamped to the tenant's maximum.
    pub deadline_ms: Option<u64>,
    /// Whether `compile` should echo the wire bytes back (hex). Off by
    /// default — responses stay small.
    pub want_bytes: bool,
    /// Selector for the `trace` op: a request id to look up in the
    /// flight recorder (`None` = dump everything retained).
    pub query: Option<String>,
}

impl Request {
    /// Parses one request frame.
    ///
    /// # Errors
    ///
    /// Returns `(recovered_id, message)` — the id (when one could be
    /// extracted) lets the caller address the malformed-request
    /// response, preserving exactly-one-response per frame.
    pub fn parse(line: &str) -> Result<Request, (Option<String>, String)> {
        let doc = json::parse(line).map_err(|e| (None, format!("bad json: {e}")))?;
        let id = str_field(&doc, "id").unwrap_or_default();
        let recovered = || {
            if id.is_empty() {
                None
            } else {
                Some(id.clone())
            }
        };
        if !matches!(doc, Json::Obj(_)) {
            return Err((None, "request must be a json object".into()));
        }
        let Some(op_name) = str_field(&doc, "op") else {
            return Err((recovered(), "missing `op`".into()));
        };
        let op = match op_name.as_str() {
            "compile" => Op::Compile,
            "verify" => Op::Verify,
            "run" => Op::Run,
            "ping" => Op::Ping,
            "stats" => Op::Stats,
            "trace" => Op::Trace,
            "shutdown" => Op::Shutdown,
            other => Op::Unknown(other.to_string()),
        };
        let deadline_ms = match doc.get("deadline_ms") {
            None | Some(Json::Null) => None,
            Some(v) => match v.as_u64() {
                Some(ms) => Some(ms),
                None => {
                    return Err((
                        recovered(),
                        "`deadline_ms` must be a non-negative integer".into(),
                    ))
                }
            },
        };
        Ok(Request {
            id,
            op,
            tenant: str_field(&doc, "tenant").unwrap_or_default(),
            source: str_field(&doc, "source"),
            tsa: str_field(&doc, "tsa"),
            entry: str_field(&doc, "entry"),
            deadline_ms,
            want_bytes: matches!(doc.get("want_bytes"), Some(Json::Bool(true))),
            query: str_field(&doc, "query"),
        })
    }
}

fn str_field(doc: &Json, key: &str) -> Option<String> {
    match doc.get(key) {
        Some(Json::Str(s)) => Some(s.clone()),
        _ => None,
    }
}

/// A successful response carrying `payload`.
pub fn ok_response(id: &str, payload: Json) -> Json {
    let mut r = response_head(Some(id), "ok");
    r.set("payload", payload);
    r
}

/// A request-level failure: the request was accepted (or at least
/// addressed) but could not be satisfied. `kind` is a stable
/// machine-readable token (`Error::kind` values plus the protocol's
/// own: `malformed`, `unsupported_op`, `too_large`, `frame_too_long`).
pub fn error_response(id: Option<&str>, kind: &str, message: &str) -> Json {
    let mut r = response_head(id, "error");
    r.set("kind", Json::Str(kind.into()));
    r.set("message", Json::Str(message.into()));
    r
}

/// An admission rejection: the daemon is shedding load (`queue_full`)
/// or draining (`shutting_down`). Distinct from `"error"` so clients
/// know the request was never attempted and a retry is safe.
pub fn overloaded_response(id: Option<&str>, kind: &str, message: &str) -> Json {
    let mut r = response_head(id, "overloaded");
    r.set("kind", Json::Str(kind.into()));
    r.set("message", Json::Str(message.into()));
    r
}

fn response_head(id: Option<&str>, status: &str) -> Json {
    let mut r = Json::obj();
    r.set("schema", Json::Str(SCHEMA.into()));
    r.set(
        "id",
        match id {
            Some(id) => Json::Str(id.into()),
            None => Json::Null,
        },
    );
    r.set("status", Json::Str(status.into()));
    r
}

/// Hex-encodes wire bytes for transport inside a JSON string.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Decodes the hex transport form back to wire bytes.
///
/// # Errors
///
/// Returns a description of the first bad digit or an odd length.
pub fn from_hex(s: &str) -> Result<Vec<u8>, String> {
    let s = s.as_bytes();
    if !s.len().is_multiple_of(2) {
        return Err("odd-length hex".into());
    }
    let digit = |b: u8| -> Result<u8, String> {
        match b {
            b'0'..=b'9' => Ok(b - b'0'),
            b'a'..=b'f' => Ok(b - b'a' + 10),
            b'A'..=b'F' => Ok(b - b'A' + 10),
            _ => Err(format!("bad hex byte 0x{b:02x}")),
        }
    };
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in s.chunks_exact(2) {
        out.push((digit(pair[0])? << 4) | digit(pair[1])?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_run_request() {
        let req = Request::parse(
            r#"{"op":"run","id":"r7","tenant":"gold","source":"class A {}","entry":"A.main","deadline_ms":250,"want_bytes":true}"#,
        )
        .unwrap();
        assert_eq!(req.op, Op::Run);
        assert_eq!(req.id, "r7");
        assert_eq!(req.tenant, "gold");
        assert_eq!(req.deadline_ms, Some(250));
        assert!(req.want_bytes);
        assert!(req.op.is_work());
    }

    #[test]
    fn malformed_requests_recover_the_id_when_possible() {
        // Parseable json, bad field: id comes back for addressing.
        let err = Request::parse(r#"{"id":"x","deadline_ms":"soon","op":"run"}"#)
            .unwrap_err();
        assert_eq!(err.0.as_deref(), Some("x"));
        // Unparseable json: no id to recover.
        let err = Request::parse("{not json").unwrap_err();
        assert!(err.0.is_none());
        // Missing op.
        let err = Request::parse(r#"{"id":"y"}"#).unwrap_err();
        assert_eq!(err.0.as_deref(), Some("y"));
    }

    #[test]
    fn trace_op_parses_with_optional_query() {
        let req = Request::parse(r#"{"op":"trace","id":"t1","query":"r9"}"#).unwrap();
        assert_eq!(req.op, Op::Trace);
        assert_eq!(req.query.as_deref(), Some("r9"));
        assert!(!req.op.is_work());
        let req = Request::parse(r#"{"op":"trace","id":"t2"}"#).unwrap();
        assert!(req.query.is_none());
    }

    #[test]
    fn unknown_ops_parse_but_are_not_work() {
        let req = Request::parse(r#"{"op":"frobnicate","id":"z"}"#).unwrap();
        assert_eq!(req.op, Op::Unknown("frobnicate".into()));
        assert!(!req.op.is_work());
    }

    #[test]
    fn responses_carry_schema_id_status() {
        let r = ok_response("a", Json::obj());
        assert_eq!(r.get("schema"), Some(&Json::Str(SCHEMA.into())));
        assert_eq!(r.get("status"), Some(&Json::Str("ok".into())));
        let r = error_response(None, "malformed", "bad json");
        assert_eq!(r.get("id"), Some(&Json::Null));
        let r = overloaded_response(Some("b"), "queue_full", "full");
        assert_eq!(r.get("status"), Some(&Json::Str("overloaded".into())));
    }

    #[test]
    fn hex_round_trips_and_rejects_garbage() {
        let bytes = [0u8, 1, 0xab, 0xff];
        assert_eq!(from_hex(&to_hex(&bytes)).unwrap(), bytes);
        assert!(from_hex("abc").is_err());
        assert!(from_hex("zz").is_err());
    }
}
