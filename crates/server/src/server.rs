//! The daemon itself: listener, connection readers, admission, worker
//! pool, and graceful drain.
//!
//! ## Threading model
//!
//! * The **accept loop** (the thread that called [`Server::run`]) polls
//!   a non-blocking listener and spawns one detached **reader** thread
//!   per connection.
//! * Each reader frames newline-delimited requests, answers control
//!   ops (`ping`/`stats`/`shutdown`) inline, and performs *admission*:
//!   validation, tenant lookup, deadline stamping, and a non-blocking
//!   push onto the bounded queue. A full queue is answered immediately
//!   with `status:"overloaded"` — readers never block on the pool, so
//!   the daemon stays responsive under saturation.
//! * A fixed pool of **workers** pops jobs and runs them through a
//!   per-request [`Pipeline`] inside `catch_unwind`: a panicking
//!   request costs one `kind:"panic"` error response, never the
//!   daemon.
//!
//! ## Exactly one response
//!
//! Every frame a client sends is answered by exactly one response
//! line: malformed frames by the reader (with the request id when it
//! could be recovered), shed requests at admission, admitted requests
//! by the worker that completes (or catches the panic of) their job.
//! Responses to one connection are serialized through a mutex around
//! the write half, so concurrent workers never interleave bytes.
//!
//! ## Shutdown
//!
//! Shutdown (signal flag, `shutdown` op, or [`ServerHandle`]) drains:
//! the accept loop stops, the queue closes — new admissions get
//! `kind:"shutting_down"` — and workers finish everything already
//! admitted before [`Server::run`] returns its [`ServeSummary`].

use crate::flight::{FlightRecord, FlightRecorder};
use crate::protocol::{self, Op, Request};
use crate::queue::{BoundedQueue, PushError};
use crate::stats::ServeStats;
use safetsa_driver::store::{CacheKey, ModuleRecord, RecordKind, Store, StoreOptions};
use safetsa_driver::{passes_fingerprint, Error, Pipeline};
use safetsa_opt::Passes;
use safetsa_telemetry::{AttrValue, Json, Telemetry};
use safetsa_vm::{ResourceLimits, VmError, VmProfile};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Hard ceiling on one request frame; longer frames are discarded and
/// answered with `kind:"frame_too_long"` without buffering the excess.
pub const MAX_FRAME_BYTES: usize = 8 * 1024 * 1024;

/// How long the accept loop sleeps between polls when idle; bounds
/// shutdown-signal latency.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Ceiling on `//!chaos:sleep=` injections so a typo in a chaos run
/// cannot wedge a worker for minutes.
const CHAOS_SLEEP_CAP_MS: u64 = 5_000;

/// VM fuel slices between profiler samples for served `run` requests:
/// one sample every `4 × DEADLINE_SLICE = 4096` executed instructions.
const PROFILE_EVERY_SLICES: u32 = 4;

/// Per-tenant admission and execution budgets.
#[derive(Debug, Clone, Copy)]
pub struct TenantProfile {
    /// VM instruction budget per request (`None` = unmetered).
    pub fuel: Option<u64>,
    /// VM heap ceiling per request.
    pub max_heap_bytes: Option<u64>,
    /// VM call-depth ceiling per request.
    pub max_call_depth: Option<u32>,
    /// Ceiling (and default) for the request's wall-clock deadline.
    pub max_deadline_ms: u64,
    /// Admission ceiling on `source`/`tsa` payload size.
    pub max_source_bytes: usize,
}

impl Default for TenantProfile {
    fn default() -> Self {
        TenantProfile {
            fuel: Some(100_000_000),
            max_heap_bytes: Some(64 * 1024 * 1024),
            max_call_depth: Some(1_024),
            max_deadline_ms: 10_000,
            max_source_bytes: 1024 * 1024,
        }
    }
}

impl TenantProfile {
    fn limits(&self) -> ResourceLimits {
        ResourceLimits {
            fuel: self.fuel,
            max_heap_bytes: self.max_heap_bytes,
            max_call_depth: self.max_call_depth,
        }
    }
}

/// Where the daemon listens.
#[derive(Debug, Clone)]
pub enum BindAddr {
    /// A TCP address, e.g. `127.0.0.1:7433` (port 0 picks a free one).
    Tcp(String),
    /// A Unix-domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

/// Daemon configuration; [`Default`] gives a loopback listener on an
/// ephemeral port with one worker per core.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address.
    pub bind: BindAddr,
    /// Worker pool size; `0` means one per available core.
    pub workers: usize,
    /// Admission queue capacity; pushes beyond it shed.
    pub queue_capacity: usize,
    /// Budgets for requests whose tenant has no explicit profile.
    pub default_tenant: TenantProfile,
    /// Named tenant profiles.
    pub tenants: Vec<(String, TenantProfile)>,
    /// Content-addressed compile cache directory (`None` = cache off).
    pub cache_dir: Option<PathBuf>,
    /// Honor `//!chaos:` fault-injection markers in request sources.
    pub chaos: bool,
    /// Whether the `shutdown` op is honored (a local daemon wants it;
    /// a shared one may not).
    pub allow_remote_shutdown: bool,
    /// External shutdown flag, typically flipped by a signal handler.
    pub shutdown: Arc<AtomicBool>,
    /// VM execution engine for `run` requests (threaded by default;
    /// switch keeps the oracle interpreter available for debugging).
    pub engine: safetsa_vm::Engine,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            bind: BindAddr::Tcp("127.0.0.1:0".into()),
            workers: 0,
            queue_capacity: 64,
            default_tenant: TenantProfile::default(),
            tenants: Vec::new(),
            cache_dir: None,
            chaos: false,
            allow_remote_shutdown: true,
            shutdown: Arc::new(AtomicBool::new(false)),
            engine: safetsa_vm::Engine::default(),
        }
    }
}

/// What [`Server::run`] hands back after the drain completes.
#[derive(Debug)]
pub struct ServeSummary {
    /// Final statistics snapshot (same shape as the `stats` op payload).
    pub stats: Json,
    /// The flight recorder's retained requests as one Chrome
    /// `trace_event` document (what `serve --trace-json` writes).
    pub trace: Json,
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

/// One accepted connection (either family), unified so the reader and
/// response paths are family-agnostic.
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    fn try_clone(&self) -> std::io::Result<Conn> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            #[cfg(unix)]
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
        }
    }
}

impl std::io::Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// The write half of a connection, shared by its reader and every
/// worker holding one of its jobs.
type Responder = Arc<Mutex<Conn>>;

/// One admitted work request.
struct Job {
    req: Request,
    profile: TenantProfile,
    deadline: Instant,
    admitted: Instant,
    out: Responder,
}

/// State shared by the accept loop, readers, and workers.
struct Shared {
    queue: BoundedQueue<Job>,
    stats: ServeStats,
    /// Internal stop flag (set by the `shutdown` op or a handle).
    stop: AtomicBool,
    /// External stop flag (set by the signal handler).
    shutdown_requested: Arc<AtomicBool>,
    cache: Option<Store>,
    fingerprint: String,
    default_tenant: TenantProfile,
    tenants: Vec<(String, TenantProfile)>,
    chaos: bool,
    allow_remote_shutdown: bool,
    engine: safetsa_vm::Engine,
    flight: FlightRecorder,
    /// Per-tenant accumulated VM sampling profiles (`""` is stored as
    /// `"default"`, matching the stats breakdown).
    profiles: Mutex<BTreeMap<String, VmProfile>>,
}

impl Shared {
    fn profile(&self, tenant: &str) -> TenantProfile {
        self.tenants
            .iter()
            .find(|(name, _)| name == tenant)
            .map(|(_, p)| *p)
            .unwrap_or(self.default_tenant)
    }

    fn should_stop(&self) -> bool {
        self.stop.load(Ordering::Relaxed) || self.shutdown_requested.load(Ordering::Relaxed)
    }

    fn stats_payload(&self) -> Json {
        let mut payload = self.stats.to_json();
        let mut q = Json::obj();
        q.set("len", Json::U64(self.queue.len() as u64));
        q.set("capacity", Json::U64(self.queue.capacity() as u64));
        payload.set("queue", q);
        payload.set("draining", Json::Bool(self.should_stop()));
        payload
    }

    /// The `trace` op payload: flight-recorder records matching
    /// `query`, plus (for the full dump) the per-tenant merged VM
    /// profiles.
    fn trace_payload(&self, query: Option<&str>) -> Json {
        let mut payload = self.flight.query(query);
        if query.is_none() {
            let mut o = Json::obj();
            for (tenant, p) in self.profiles.lock().unwrap().iter() {
                o.set(tenant, p.to_json());
            }
            payload.set("profiles", o);
        }
        payload
    }

    fn merge_profile(&self, tenant: &str, profile: &VmProfile) {
        let key = if tenant.is_empty() { "default" } else { tenant };
        self.profiles
            .lock()
            .unwrap()
            .entry(key.to_string())
            .or_default()
            .merge(profile);
    }
}

/// A control handle onto a running (or about-to-run) server, usable
/// from another thread: the chaos harness and the loadgen's in-process
/// mode drive shutdown and read statistics through it.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Asks the daemon to drain and exit.
    pub fn request_shutdown(&self) {
        self.shared.stop.store(true, Ordering::Relaxed);
    }

    /// Snapshot of the daemon's statistics (the `stats` op payload).
    pub fn stats(&self) -> Json {
        self.shared.stats_payload()
    }

    /// Snapshot of the flight recorder and per-tenant profiles (the
    /// `trace` op payload with no query).
    pub fn trace(&self) -> Json {
        self.shared.trace_payload(None)
    }
}

/// A bound, not-yet-running daemon.
pub struct Server {
    listener: Listener,
    shared: Arc<Shared>,
    workers: usize,
}

impl Server {
    /// Binds the listener and prepares shared state.
    ///
    /// # Errors
    ///
    /// Returns the bind/cache-open failure.
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = match &cfg.bind {
            BindAddr::Tcp(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                l.set_nonblocking(true)?;
                Listener::Tcp(l)
            }
            #[cfg(unix)]
            BindAddr::Unix(path) => {
                // A stale socket file from a crashed daemon would make
                // bind fail; remove it (bind still fails if the path is
                // a live socket with a listener... no — Unix sockets
                // don't detect liveness; callers own path hygiene).
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Listener::Unix(l, path.clone())
            }
        };
        let cache = match &cfg.cache_dir {
            Some(dir) => Some(Store::open(dir, StoreOptions::default())?),
            None => None,
        };
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(cfg.queue_capacity),
            stats: ServeStats::default(),
            stop: AtomicBool::new(false),
            shutdown_requested: cfg.shutdown,
            cache,
            fingerprint: passes_fingerprint(&Passes::ALL),
            default_tenant: cfg.default_tenant,
            tenants: cfg.tenants,
            chaos: cfg.chaos,
            allow_remote_shutdown: cfg.allow_remote_shutdown,
            engine: cfg.engine,
            flight: FlightRecorder::default(),
            profiles: Mutex::new(BTreeMap::new()),
        });
        Ok(Server {
            listener,
            shared,
            workers: cfg.workers,
        })
    }

    /// The bound address, printable: `host:port` for TCP (with the
    /// ephemeral port resolved), the path for Unix sockets.
    pub fn local_addr(&self) -> String {
        match &self.listener {
            Listener::Tcp(l) => l
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "<unknown>".into()),
            #[cfg(unix)]
            Listener::Unix(_, path) => path.display().to_string(),
        }
    }

    /// A control handle valid before, during, and after [`Server::run`].
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs the daemon until shutdown is requested, then drains and
    /// returns the final statistics. Individual connection and request
    /// failures never propagate out of this call — that is the point
    /// of the daemon.
    pub fn run(self) -> ServeSummary {
        let shared = self.shared;
        let nworkers = if self.workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
        } else {
            self.workers
        };
        let workers: Vec<_> = (0..nworkers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        while !shared.should_stop() {
            let conn = match &self.listener {
                Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
                #[cfg(unix)]
                Listener::Unix(l, _) => l.accept().map(|(s, _)| Conn::Unix(s)),
            };
            match conn {
                Ok(conn) => {
                    shared.stats.bump(&shared.stats.connections);
                    // The listener is non-blocking; the stream must
                    // block — readers frame with blocking reads.
                    let ok = match &conn {
                        Conn::Tcp(s) => s.set_nonblocking(false).is_ok(),
                        #[cfg(unix)]
                        Conn::Unix(s) => s.set_nonblocking(false).is_ok(),
                    };
                    if !ok {
                        continue;
                    }
                    let shared = Arc::clone(&shared);
                    std::thread::spawn(move || reader_loop(conn, &shared));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(_) => std::thread::sleep(ACCEPT_POLL),
            }
        }

        // Drain: no new admissions, workers finish what was accepted.
        shared.queue.close();
        for w in workers {
            let _ = w.join();
        }
        #[cfg(unix)]
        if let Listener::Unix(_, path) = &self.listener {
            let _ = std::fs::remove_file(path);
        }
        ServeSummary {
            stats: shared.stats_payload(),
            trace: shared.flight.to_chrome_trace(),
        }
    }
}

/// Outcome of framing one request line.
enum FrameRead {
    /// Connection closed cleanly between frames.
    Eof,
    /// One frame in the buffer.
    Frame,
    /// Frame exceeded [`MAX_FRAME_BYTES`]; buffer discarded, stream
    /// consumed through the terminating newline (or EOF).
    TooLong,
}

fn read_frame(
    r: &mut impl BufRead,
    max: usize,
    buf: &mut Vec<u8>,
) -> std::io::Result<FrameRead> {
    buf.clear();
    let mut overflow = false;
    loop {
        let available = match r.fill_buf() {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            // EOF. A partial trailing frame still counts as a frame so
            // a truncated final request gets its malformed response.
            return Ok(if overflow {
                FrameRead::TooLong
            } else if buf.is_empty() {
                FrameRead::Eof
            } else {
                FrameRead::Frame
            });
        }
        if let Some(nl) = available.iter().position(|&b| b == b'\n') {
            if !overflow {
                buf.extend_from_slice(&available[..nl]);
            }
            r.consume(nl + 1);
            return Ok(if overflow {
                FrameRead::TooLong
            } else {
                FrameRead::Frame
            });
        }
        let n = available.len();
        if !overflow {
            if buf.len() + n > max {
                overflow = true;
                buf.clear();
            } else {
                buf.extend_from_slice(available);
            }
        }
        r.consume(n);
    }
}

fn write_response(out: &Responder, response: &Json) {
    let mut line = response.render();
    line.push('\n');
    // A vanished client is its own problem; the daemon presses on.
    let mut w = out.lock().unwrap();
    let _ = w.write_all(line.as_bytes());
    let _ = w.flush();
}

fn reader_loop(conn: Conn, shared: &Arc<Shared>) {
    let Ok(write_half) = conn.try_clone() else {
        return;
    };
    let out: Responder = Arc::new(Mutex::new(write_half));
    let mut reader = BufReader::new(conn);
    let mut buf = Vec::new();
    loop {
        match read_frame(&mut reader, MAX_FRAME_BYTES, &mut buf) {
            Err(_) | Ok(FrameRead::Eof) => return,
            Ok(FrameRead::TooLong) => {
                shared.stats.bump(&shared.stats.malformed);
                write_response(
                    &out,
                    &protocol::error_response(
                        None,
                        "frame_too_long",
                        &format!("frame exceeds {MAX_FRAME_BYTES} bytes"),
                    ),
                );
                continue;
            }
            Ok(FrameRead::Frame) => {}
        }
        // Tampered frames may not be UTF-8; lossy decoding turns the
        // damage into replacement characters the parser then rejects.
        let line = String::from_utf8_lossy(&buf);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let req = match Request::parse(line) {
            Ok(req) => req,
            Err((id, msg)) => {
                shared.stats.bump(&shared.stats.malformed);
                write_response(
                    &out,
                    &protocol::error_response(id.as_deref(), "malformed", &msg),
                );
                continue;
            }
        };
        match &req.op {
            Op::Ping => {
                shared.stats.bump(&shared.stats.control);
                let mut payload = Json::obj();
                payload.set("pong", Json::Bool(true));
                write_response(&out, &protocol::ok_response(&req.id, payload));
            }
            Op::Stats => {
                shared.stats.bump(&shared.stats.control);
                write_response(
                    &out,
                    &protocol::ok_response(&req.id, shared.stats_payload()),
                );
            }
            Op::Trace => {
                shared.stats.bump(&shared.stats.control);
                write_response(
                    &out,
                    &protocol::ok_response(&req.id, shared.trace_payload(req.query.as_deref())),
                );
            }
            Op::Shutdown => {
                shared.stats.bump(&shared.stats.control);
                if shared.allow_remote_shutdown {
                    shared.stop.store(true, Ordering::Relaxed);
                    let mut payload = Json::obj();
                    payload.set("stopping", Json::Bool(true));
                    write_response(&out, &protocol::ok_response(&req.id, payload));
                } else {
                    write_response(
                        &out,
                        &protocol::error_response(
                            Some(&req.id),
                            "forbidden",
                            "remote shutdown is disabled",
                        ),
                    );
                }
            }
            Op::Unknown(name) => {
                shared.stats.bump(&shared.stats.malformed);
                write_response(
                    &out,
                    &protocol::error_response(
                        Some(&req.id),
                        "unsupported_op",
                        &format!("unknown op `{name}`"),
                    ),
                );
            }
            Op::Compile | Op::Verify | Op::Run => admit(req, &out, shared),
        }
    }
}

/// Admission control: validate, stamp the deadline, try the queue.
fn admit(req: Request, out: &Responder, shared: &Arc<Shared>) {
    let profile = shared.profile(&req.tenant);
    shared.stats.tenant(&req.tenant, |t| t.requests += 1);
    let payload_len = req.source.as_deref().map_or(0, str::len)
        + req.tsa.as_deref().map_or(0, str::len);
    if payload_len > profile.max_source_bytes {
        shared.stats.bump(&shared.stats.errors);
        shared.stats.bump_kind("too_large");
        shared.stats.tenant(&req.tenant, |t| t.errors += 1);
        write_response(
            out,
            &protocol::error_response(
                Some(&req.id),
                "too_large",
                &format!(
                    "payload of {payload_len} bytes exceeds tenant limit of {} bytes",
                    profile.max_source_bytes
                ),
            ),
        );
        return;
    }
    let deadline_ms = req
        .deadline_ms
        .unwrap_or(profile.max_deadline_ms)
        .min(profile.max_deadline_ms);
    let now = Instant::now();
    let job = Job {
        deadline: now + Duration::from_millis(deadline_ms),
        admitted: now,
        profile,
        out: Arc::clone(out),
        req,
    };
    match shared.queue.try_push(job) {
        Ok(()) => shared.stats.bump(&shared.stats.accepted),
        Err((job, PushError::Full)) => {
            shared.stats.bump(&shared.stats.shed);
            shared.stats.tenant(&job.req.tenant, |t| t.shed += 1);
            write_response(
                out,
                &protocol::overloaded_response(
                    Some(&job.req.id),
                    "queue_full",
                    "request queue is full; retry later",
                ),
            );
        }
        Err((job, PushError::Closed)) => {
            shared.stats.bump(&shared.stats.rejected_draining);
            shared.stats.tenant(&job.req.tenant, |t| t.shed += 1);
            write_response(
                out,
                &protocol::overloaded_response(
                    Some(&job.req.id),
                    "shutting_down",
                    "daemon is draining for shutdown",
                ),
            );
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        // Outer isolation for bugs in the recorder/bookkeeping itself;
        // the request's own panics unwind inside `handle_job`'s inner
        // boundary, which additionally preserves the span tree.
        let response =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handle_job(&job, shared)))
                .unwrap_or_else(|p| {
                    shared.stats.bump(&shared.stats.panics_isolated);
                    protocol::error_response(
                        Some(&job.req.id),
                        "panic",
                        &format!("worker panicked: {}", panic_message(p.as_ref())),
                    )
                });
        let ok = response.get("status") == Some(&Json::Str("ok".into()));
        let kind = match response.get("kind") {
            Some(Json::Str(k)) => Some(k.clone()),
            _ => None,
        };
        if ok {
            shared.stats.bump(&shared.stats.ok);
        } else {
            shared.stats.bump(&shared.stats.errors);
            if let Some(k) = &kind {
                shared.stats.bump_kind(k);
            }
        }
        shared.stats.tenant(&job.req.tenant, |t| {
            if ok {
                t.ok += 1;
            } else {
                t.errors += 1;
                if kind.as_deref() == Some("panic") {
                    t.panics += 1;
                }
            }
        });
        write_response(&job.out, &response);
        shared.stats.bump(&shared.stats.completed);
        let elapsed = job.admitted.elapsed();
        shared
            .stats
            .observe_latency(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }
}

fn chaos_sleep_ms(src: &str) -> Option<u64> {
    let marker = "//!chaos:sleep=";
    let rest = &src[src.find(marker)? + marker.len()..];
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn op_name(op: &Op) -> &'static str {
    match op {
        Op::Compile => "compile",
        Op::Verify => "verify",
        Op::Run => "run",
        Op::Ping => "ping",
        Op::Stats => "stats",
        Op::Trace => "trace",
        Op::Shutdown => "shutdown",
        Op::Unknown(_) => "unknown",
    }
}

fn ns_since(from: Instant, to: Instant) -> u64 {
    to.saturating_duration_since(from)
        .as_nanos()
        .min(u64::MAX as u128) as u64
}

/// Executes one admitted job with full tracing.
///
/// The request's [`Pipeline`] — and with it the traced [`Telemetry`]
/// registry — is built *outside* the panic boundary, so when the op
/// unwinds the span tree survives: still-open spans are snapshotted
/// with an `unfinished:true` attribute, the record is dumped to stderr,
/// and the flight recorder retains it. The trace epoch is the
/// admission instant, so the synthetic `queued` span and the execution
/// spans share one timeline.
fn handle_job(job: &Job, shared: &Arc<Shared>) -> Json {
    let req = &job.req;
    let picked_up = Instant::now();
    let queued_ns = ns_since(job.admitted, picked_up);
    let tm = Telemetry::with_trace_at(job.admitted, 0);
    let root = tm.span_open("request");
    tm.span_attr("id", AttrValue::Str(req.id.clone()));
    tm.span_attr("tenant", AttrValue::Str(req.tenant.clone()));
    tm.span_attr("op", AttrValue::Str(op_name(&req.op).into()));
    tm.record_span("queued", job.admitted, picked_up, &[]);
    let pipeline = Pipeline::new()
        .telemetry(tm)
        .limits(job.profile.limits())
        .deadline(job.deadline)
        .engine(shared.engine)
        .profile_every(PROFILE_EVERY_SLICES);
    let profile_slot: RefCell<Option<VmProfile>> = RefCell::new(None);
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_op(job, shared, &pipeline, &profile_slot)
    }));
    let panicked = caught.is_err();
    let response = match caught {
        Ok(Ok(payload)) => {
            pipeline.metrics().span_close(root);
            protocol::ok_response(&req.id, payload)
        }
        Ok(Err(e)) => {
            match &e {
                Error::Vm(VmError::DeadlineExceeded) => {
                    shared.stats.bump(&shared.stats.deadline_exceeded);
                }
                Error::Vm(VmError::FuelExhausted) => {
                    shared.stats.bump(&shared.stats.fuel_exhausted);
                }
                _ => {}
            }
            let tm = pipeline.metrics();
            tm.span_attr("error", AttrValue::Str(e.kind().into()));
            tm.span_close(root);
            protocol::error_response(Some(&req.id), e.kind(), &e.to_string())
        }
        Err(p) => {
            shared.stats.bump(&shared.stats.panics_isolated);
            // Deliberately do NOT close the span stack: the snapshot
            // below marks everything in flight `unfinished`, which is
            // the at-panic-time view the flight recorder wants.
            protocol::error_response(
                Some(&req.id),
                "panic",
                &format!("worker panicked: {}", panic_message(p.as_ref())),
            )
        }
    };
    let profile = profile_slot.into_inner().filter(|p| !p.is_empty());
    if let Some(p) = &profile {
        shared.merge_profile(&req.tenant, p);
    }
    let tm = pipeline.metrics();
    let status = if response.get("status") == Some(&Json::Str("ok".into())) {
        "ok"
    } else {
        "error"
    };
    let kind = match response.get("kind") {
        Some(Json::Str(k)) => Some(k.clone()),
        _ => None,
    };
    let rec = FlightRecord {
        seq: 0,
        id: req.id.clone(),
        tenant: req.tenant.clone(),
        op: op_name(&req.op).into(),
        status: status.into(),
        kind,
        queued_ns,
        total_ns: ns_since(job.admitted, Instant::now()),
        spans: tm.trace_spans(),
        events: tm.trace_events(),
        profile: profile.as_ref().map(VmProfile::to_json),
    };
    if panicked {
        eprintln!("serve: flight[panic] {}", rec.to_json().render());
    }
    shared.flight.record(rec);
    response
}

/// The panic-prone part of one job: chaos injection, the queue-wait
/// deadline check, and the op dispatch. Runs inside `handle_job`'s
/// `catch_unwind`.
fn run_op(
    job: &Job,
    shared: &Arc<Shared>,
    pipeline: &Pipeline,
    profile_slot: &RefCell<Option<VmProfile>>,
) -> Result<Json, Error> {
    let req = &job.req;
    if shared.chaos {
        if let Some(src) = &req.source {
            if src.contains("//!chaos:panic") {
                panic!("injected chaos panic");
            }
            if let Some(ms) = chaos_sleep_ms(src) {
                std::thread::sleep(Duration::from_millis(ms.min(CHAOS_SLEEP_CAP_MS)));
            }
        }
    }
    // Queue wait may already have consumed the whole budget.
    if Instant::now() >= job.deadline {
        return Err(Error::Vm(VmError::DeadlineExceeded));
    }
    match req.op {
        Op::Compile => op_compile(job, shared, pipeline),
        Op::Verify => op_verify(job, pipeline),
        Op::Run => op_run(job, pipeline, profile_slot),
        _ => Err(Error::Usage("non-work op dispatched to worker".into())),
    }
}

fn require<'a>(field: &'a Option<String>, what: &str) -> Result<&'a str, Error> {
    field
        .as_deref()
        .ok_or_else(|| Error::Usage(format!("request requires `{what}`")))
}

fn op_compile(job: &Job, shared: &Arc<Shared>, pipeline: &Pipeline) -> Result<Json, Error> {
    let req = &job.req;
    let src = require(&req.source, "source")?;
    let tm = pipeline.metrics();
    let key = CacheKey::new(
        RecordKind::Module,
        shared.engine,
        &shared.fingerprint,
        src.as_bytes(),
    );
    let probe = tm.span_open("cache.probe");
    let hit = shared.cache.as_ref().and_then(|c| c.get_module(&key));
    tm.event(
        "cache.probe.done",
        &[("hit", AttrValue::Bool(hit.is_some()))],
    );
    tm.span_close(probe);
    let mut cached = false;
    let bytes = match hit {
        Some(rec) => {
            shared.stats.bump(&shared.stats.cache_hits);
            cached = true;
            rec.bytes
        }
        None => {
            let module = pipeline.compile_source(src)?;
            let bytes = pipeline.encode(&module)?;
            if let Some(cache) = &shared.cache {
                let rec = ModuleRecord {
                    bytes: bytes.clone(),
                    metrics: tm.export_flat(),
                };
                if !cache.put_module_degrading(&key, &rec) {
                    shared.stats.bump(&shared.stats.cache_degraded);
                }
            }
            bytes
        }
    };
    let mut payload = Json::obj();
    payload.set("cached", Json::Bool(cached));
    payload.set("bytes", Json::U64(bytes.len() as u64));
    payload.set("key", Json::Str(format!("{:016x}", key.hash())));
    if req.want_bytes {
        payload.set("tsa", Json::Str(protocol::to_hex(&bytes)));
    }
    Ok(payload)
}

fn op_verify(job: &Job, pipeline: &Pipeline) -> Result<Json, Error> {
    let req = &job.req;
    let hex = require(&req.tsa, "tsa")?;
    let bytes = protocol::from_hex(hex)
        .map_err(|e| Error::Usage(format!("bad `tsa` hex: {e}")))?;
    pipeline.check_deadline()?;
    // Decode *is* verification: the codec refuses to materialize a
    // module that fails the consumer-side checks.
    let module = pipeline.decode(&bytes)?;
    let mut payload = Json::obj();
    payload.set("verified", Json::Bool(true));
    payload.set("bytes", Json::U64(bytes.len() as u64));
    payload.set("functions", Json::U64(module.functions.len() as u64));
    Ok(payload)
}

fn op_run(
    job: &Job,
    pipeline: &Pipeline,
    profile_slot: &RefCell<Option<VmProfile>>,
) -> Result<Json, Error> {
    let req = &job.req;
    let entry = require(&req.entry, "entry")?;
    let module = if let Some(src) = &req.source {
        pipeline.compile_source(src)?
    } else if let Some(hex) = &req.tsa {
        let bytes = protocol::from_hex(hex)
            .map_err(|e| Error::Usage(format!("bad `tsa` hex: {e}")))?;
        pipeline.decode(&bytes)?
    } else {
        return Err(Error::Usage(
            "run requires `source` or `tsa`".into(),
        ));
    };
    let outcome = pipeline.run(&module, entry)?;
    // Park the sample profile before the result check: a deadline kill
    // or trap still carries its at-kill-time samples out to the flight
    // recorder.
    *profile_slot.borrow_mut() = outcome.profile;
    let value = outcome.result?;
    let mut payload = Json::obj();
    payload.set(
        "result",
        match value {
            Some(v) => Json::Str(format!("{v:?}")),
            None => Json::Null,
        },
    );
    payload.set("output", Json::Str(outcome.output));
    if let Some(steps) = pipeline.metrics().counter("vm.steps") {
        payload.set("steps", Json::U64(steps));
    }
    if let Some(checks) = pipeline.metrics().counter("vm.deadline.slice_checks") {
        payload.set("deadline_checks", Json::U64(checks));
    }
    if let Some(p) = profile_slot.borrow().as_ref() {
        if !p.is_empty() {
            payload.set("profile", p.to_json());
        }
    }
    Ok(payload)
}
