//! The flight recorder: bounded rings of recently finished request
//! traces, kept in memory so an operator can ask "what just happened"
//! after the fact — without having had tracing enabled client-side.
//!
//! Two rings with different retention pressure:
//!
//! * **completed** — the last [`COMPLETED_CAP`] finished work requests,
//!   whatever their outcome. High churn under load.
//! * **failed** — the last [`FAILED_CAP`] requests that ended in an
//!   error (panics, deadline kills, traps, compile failures). Errors
//!   are usually rare, so this ring preserves the interesting records
//!   long after the completed ring has churned past them.
//!
//! Records are queried through the `trace` op (see
//! [`crate::protocol`]) and the whole recorder is exportable as one
//! Chrome `trace_event` document, each request in its own `tid` group.

use safetsa_telemetry::trace::{chrome_events, trace_to_json, EventRecord, SpanRecord};
use safetsa_telemetry::Json;
use std::collections::VecDeque;
use std::sync::Mutex;

/// How many finished requests the completed ring retains.
pub const COMPLETED_CAP: usize = 64;

/// How many failed requests the failed ring retains.
pub const FAILED_CAP: usize = 32;

/// `tid` stride between requests in the merged Chrome export, so each
/// request's lanes form their own row group.
const CHROME_TID_STRIDE: u64 = 8;

/// Everything retained about one finished request.
#[derive(Debug, Clone)]
pub struct FlightRecord {
    /// Recorder-assigned sequence number (monotone per daemon), used
    /// to deduplicate records that sit in both rings.
    pub seq: u64,
    /// The request's correlation id.
    pub id: String,
    /// Tenant name (empty = default profile).
    pub tenant: String,
    /// Op name (`"compile"` / `"verify"` / `"run"`).
    pub op: String,
    /// Response status (`"ok"` / `"error"`).
    pub status: String,
    /// Error kind when `status` is `"error"` (`"panic"`,
    /// `"deadline_exceeded"`, …).
    pub kind: Option<String>,
    /// Queue wait, admission → worker pickup, in nanoseconds.
    pub queued_ns: u64,
    /// End-to-end time, admission → record, in nanoseconds.
    pub total_ns: u64,
    /// The request's span tree (panic-interrupted spans appear with an
    /// `unfinished:true` attribute).
    pub spans: Vec<SpanRecord>,
    /// The request's instant events.
    pub events: Vec<EventRecord>,
    /// The VM sampling profile, when the request executed guest code.
    pub profile: Option<Json>,
}

impl FlightRecord {
    /// Renders the record for the `trace` op payload: identity and
    /// outcome fields plus the full `safetsa-trace/1` span listing.
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("id", Json::Str(self.id.clone()));
        o.set("tenant", Json::Str(self.tenant.clone()));
        o.set("op", Json::Str(self.op.clone()));
        o.set("status", Json::Str(self.status.clone()));
        o.set(
            "kind",
            self.kind.as_ref().map_or(Json::Null, |k| Json::Str(k.clone())),
        );
        o.set("queued_ns", Json::U64(self.queued_ns));
        o.set("total_ns", Json::U64(self.total_ns));
        o.set("trace", trace_to_json(&self.spans, &self.events));
        o.set(
            "profile",
            self.profile.clone().unwrap_or(Json::Null),
        );
        o
    }
}

/// The recorder itself: both rings behind one mutex (records arrive
/// from worker threads, queries from reader threads).
#[derive(Debug, Default)]
pub struct FlightRecorder {
    inner: Mutex<Rings>,
}

#[derive(Debug, Default)]
struct Rings {
    next_seq: u64,
    completed: VecDeque<FlightRecord>,
    failed: VecDeque<FlightRecord>,
}

fn push_bounded(ring: &mut VecDeque<FlightRecord>, cap: usize, rec: FlightRecord) {
    if ring.len() == cap {
        ring.pop_front();
    }
    ring.push_back(rec);
}

impl FlightRecorder {
    /// Retains one finished request. Failed requests land in both
    /// rings; the sequence number keeps queries duplicate-free.
    pub fn record(&self, mut rec: FlightRecord) {
        let mut rings = self.inner.lock().unwrap();
        rec.seq = rings.next_seq;
        rings.next_seq += 1;
        if rec.status != "ok" {
            push_bounded(&mut rings.failed, FAILED_CAP, rec.clone());
        }
        push_bounded(&mut rings.completed, COMPLETED_CAP, rec);
    }

    /// Snapshot of every retained record (deduplicated across the two
    /// rings), oldest first.
    pub fn records(&self) -> Vec<FlightRecord> {
        let rings = self.inner.lock().unwrap();
        let mut out: Vec<FlightRecord> = rings
            .failed
            .iter()
            .chain(rings.completed.iter())
            .cloned()
            .collect();
        out.sort_by_key(|r| r.seq);
        out.dedup_by_key(|r| r.seq);
        out
    }

    /// The `trace` op payload: records matching `query` (a request id;
    /// `None` matches everything retained), plus retention counts.
    pub fn query(&self, query: Option<&str>) -> Json {
        let records = self.records();
        let matched: Vec<&FlightRecord> = records
            .iter()
            .filter(|r| query.is_none_or(|id| r.id == id))
            .collect();
        let mut o = Json::obj();
        o.set("retained", Json::U64(records.len() as u64));
        o.set("matched", Json::U64(matched.len() as u64));
        o.set(
            "records",
            Json::Arr(matched.iter().map(|r| r.to_json()).collect()),
        );
        o
    }

    /// Every retained record as one Chrome `trace_event` document, each
    /// request's lanes shifted into its own `tid` group.
    pub fn to_chrome_trace(&self) -> Json {
        let mut doc = Json::obj();
        doc.set(
            "schema",
            Json::Str(safetsa_telemetry::TRACE_SCHEMA.into()),
        );
        doc.set("displayTimeUnit", Json::Str("ms".into()));
        let mut all = Vec::new();
        for (i, rec) in self.records().iter().enumerate() {
            all.extend(chrome_events(
                &rec.spans,
                &rec.events,
                i as u64 * CHROME_TID_STRIDE,
            ));
        }
        doc.set("traceEvents", Json::Arr(all));
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: &str, status: &str) -> FlightRecord {
        FlightRecord {
            seq: 0,
            id: id.into(),
            tenant: String::new(),
            op: "run".into(),
            status: status.into(),
            kind: (status == "error").then(|| "panic".to_string()),
            queued_ns: 10,
            total_ns: 100,
            spans: Vec::new(),
            events: Vec::new(),
            profile: None,
        }
    }

    #[test]
    fn failed_records_outlive_the_completed_ring() {
        let fr = FlightRecorder::default();
        fr.record(rec("boom", "error"));
        for i in 0..COMPLETED_CAP {
            fr.record(rec(&format!("ok{i}"), "ok"));
        }
        // `boom` has churned out of the completed ring but survives in
        // the failed ring — and appears exactly once in a query.
        let payload = fr.query(Some("boom"));
        assert_eq!(payload.get("matched").and_then(Json::as_u64), Some(1));
        let all = fr.query(None);
        assert_eq!(
            all.get("retained").and_then(Json::as_u64),
            Some(COMPLETED_CAP as u64 + 1)
        );
    }

    #[test]
    fn fresh_failures_are_not_duplicated_across_rings() {
        let fr = FlightRecorder::default();
        fr.record(rec("a", "ok"));
        fr.record(rec("b", "error"));
        let payload = fr.query(None);
        assert_eq!(payload.get("retained").and_then(Json::as_u64), Some(2));
        assert_eq!(payload.get("matched").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn chrome_export_groups_requests_by_tid() {
        let fr = FlightRecorder::default();
        let mut a = rec("a", "ok");
        a.spans.push(SpanRecord {
            id: 1,
            parent: None,
            name: "request".into(),
            start_ns: 0,
            end_ns: 5,
            lane: 0,
            attrs: Vec::new(),
        });
        let mut b = rec("b", "ok");
        b.spans = a.spans.clone();
        fr.record(a);
        fr.record(b);
        let doc = fr.to_chrome_trace();
        let Some(Json::Arr(events)) = doc.get("traceEvents") else {
            panic!("missing traceEvents");
        };
        let tids: Vec<u64> = events
            .iter()
            .filter_map(|e| e.get("tid").and_then(Json::as_u64))
            .collect();
        assert_eq!(tids, vec![0, CHROME_TID_STRIDE]);
    }
}
