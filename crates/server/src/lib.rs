//! # safetsa-server
//!
//! The fault-tolerant `safetsa serve` daemon: a long-running process
//! that accepts newline-delimited JSON compile / verify / run requests
//! over a TCP or Unix-domain socket and dispatches them to a worker
//! pool built on [`safetsa_driver::Pipeline`].
//!
//! The paper's safety argument is *per module*: verification and the
//! VM's resource limits bound what one program can do. This crate
//! supplies the *process-level* complement for a multi-tenant consumer
//! — the four properties a daemon needs that a batch CLI does not:
//!
//! * **Panic isolation** — every request runs inside `catch_unwind`;
//!   a compiler or VM bug costs that request one `kind:"panic"` error
//!   response, never the daemon.
//! * **Admission control** — a bounded queue with non-blocking
//!   admission: saturation is answered immediately with
//!   `status:"overloaded"` instead of unbounded buffering.
//! * **Deadlines** — every request carries a wall-clock deadline
//!   (clamped per tenant), enforced at compile-stage boundaries and,
//!   during execution, every [`safetsa_vm::DEADLINE_SLICE`]
//!   instructions by the VM itself.
//! * **Graceful degradation** — a corrupted or vanished compile cache
//!   degrades to cache-off with a telemetry counter; shutdown drains
//!   in-flight work before exiting.
//!
//! See `DESIGN.md` ("Serving & fault model") for the full design and
//! [`protocol`] for the wire schema.

#![warn(missing_docs)]

pub mod client;
pub mod flight;
pub mod json;
pub mod protocol;
pub mod queue;
pub mod stats;

mod server;

pub use client::Client;
pub use flight::{FlightRecord, FlightRecorder};
pub use protocol::{Op, Request, SCHEMA};
pub use queue::{BoundedQueue, PushError};
pub use server::{
    BindAddr, ServeSummary, Server, ServerConfig, ServerHandle, TenantProfile, MAX_FRAME_BYTES,
};
pub use stats::{ServeStats, TenantCounters};
