//! A small blocking client for the `safetsa-serve/1` protocol.
//!
//! Used by the chaos harness, the loadgen bench, and anyone scripting
//! against a daemon: one connection, synchronous request/response, no
//! pipelining (send several lines yourself if you want that — see
//! [`Client::send_line`] / [`Client::recv`]).

use crate::json;
use safetsa_telemetry::Json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
#[cfg(unix)]
use std::path::Path;

enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// One client connection to a serve daemon.
pub struct Client {
    reader: BufReader<Stream>,
    writer: Stream,
}

impl Client {
    /// Connects over TCP (`host:port`).
    ///
    /// # Errors
    ///
    /// Returns the connect failure.
    pub fn connect_tcp(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = Stream::Tcp(stream.try_clone()?);
        Ok(Client {
            reader: BufReader::new(Stream::Tcp(stream)),
            writer,
        })
    }

    /// Connects over a Unix-domain socket.
    ///
    /// # Errors
    ///
    /// Returns the connect failure.
    #[cfg(unix)]
    pub fn connect_unix(path: &Path) -> std::io::Result<Client> {
        let stream = UnixStream::connect(path)?;
        let writer = Stream::Unix(stream.try_clone()?);
        Ok(Client {
            reader: BufReader::new(Stream::Unix(stream)),
            writer,
        })
    }

    /// Sends one raw frame (a newline is appended). Deliberately does
    /// not validate — the chaos harness uses this to send garbage.
    ///
    /// # Errors
    ///
    /// Returns the write failure.
    pub fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Reads one response frame; `None` on clean EOF.
    ///
    /// # Errors
    ///
    /// I/O failures, plus `InvalidData` when the daemon's response is
    /// not valid JSON (which would itself be a daemon bug).
    pub fn recv(&mut self) -> std::io::Result<Option<Json>> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        json::parse(line.trim())
            .map(Some)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Sends a request document and waits for its response.
    ///
    /// # Errors
    ///
    /// I/O failures; `UnexpectedEof` if the daemon hangs up first.
    pub fn request(&mut self, req: &Json) -> std::io::Result<Json> {
        self.send_line(&req.render())?;
        self.recv()?.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed the connection before responding",
            )
        })
    }
}

/// Builds the skeleton of a request document (`op` + `id`); callers
/// `set` the op-specific fields.
pub fn request_obj(op: &str, id: &str) -> Json {
    let mut r = Json::obj();
    r.set("op", Json::Str(op.into()));
    r.set("id", Json::Str(id.into()));
    r
}
