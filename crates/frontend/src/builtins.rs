//! The host environment's built-in classes.
//!
//! These correspond to the "types imported from the host environment's
//! libraries" of the paper's §4: both the producer and the consumer
//! generate them implicitly, so they never travel with a module and
//! cannot be tampered with.

use crate::hir::*;

fn m(name: &str, kind: MethodKind, params: Vec<Ty>, ret: Ty, intrinsic: Intrinsic) -> Method {
    Method {
        name: name.to_string(),
        kind,
        params,
        ret,
        vtable_slot: None,
        body: None,
        intrinsic: Some(intrinsic),
    }
}

/// Installs the built-in classes into a class list and returns the
/// program skeleton indices.
///
/// Class layout (indices are stable and relied on by tests):
/// `Object`, `String`, `Throwable`, `Exception`, `RuntimeException`,
/// `ArithmeticException`, `NullPointerException`,
/// `IndexOutOfBoundsException`, `ClassCastException`,
/// `NegativeArraySizeException`, `Math`, `Sys`, `Error`,
/// `OutOfMemoryError`, `StackOverflowError` (the error hierarchy is
/// appended after `Sys` so the pre-existing indices stay stable).
pub fn install(classes: &mut Vec<Class>) -> Program {
    use Intrinsic::*;
    use MethodKind::*;
    use PrimTy::*;

    let object = classes.len();
    classes.push(Class {
        name: "Object".into(),
        superclass: None,
        fields: vec![],
        methods: vec![m("<init>", Special, vec![], Ty::Void, ObjectCtor)],
        vtable: vec![],
        is_builtin: true,
    });

    let string = classes.len();
    let str_ty = Ty::Ref(string);
    classes.push(Class {
        name: "String".into(),
        superclass: Some(object),
        fields: vec![],
        methods: vec![
            m("length", Virtual, vec![], Ty::INT, StrLength),
            m("charAt", Virtual, vec![Ty::INT], Ty::Prim(Char), StrCharAt),
            m(
                "concat",
                Virtual,
                vec![str_ty.clone()],
                str_ty.clone(),
                StrConcat,
            ),
            m("equals", Virtual, vec![str_ty.clone()], Ty::BOOL, StrEquals),
            m(
                "compareTo",
                Virtual,
                vec![str_ty.clone()],
                Ty::INT,
                StrCompareTo,
            ),
            m(
                "indexOf",
                Virtual,
                vec![Ty::Prim(Char)],
                Ty::INT,
                StrIndexOfChar,
            ),
            m(
                "substring",
                Virtual,
                vec![Ty::INT, Ty::INT],
                str_ty.clone(),
                StrSubstring,
            ),
            m(
                "valueOf",
                Static,
                vec![Ty::INT],
                str_ty.clone(),
                StrValueOfI,
            ),
            m(
                "valueOf",
                Static,
                vec![Ty::Prim(Long)],
                str_ty.clone(),
                StrValueOfL,
            ),
            m(
                "valueOf",
                Static,
                vec![Ty::Prim(Double)],
                str_ty.clone(),
                StrValueOfD,
            ),
            m(
                "valueOf",
                Static,
                vec![Ty::Prim(Char)],
                str_ty.clone(),
                StrValueOfC,
            ),
            m(
                "valueOf",
                Static,
                vec![Ty::BOOL],
                str_ty.clone(),
                StrValueOfB,
            ),
        ],
        vtable: vec![],
        is_builtin: true,
    });

    let throwable = classes.len();
    classes.push(Class {
        name: "Throwable".into(),
        superclass: Some(object),
        fields: vec![],
        methods: vec![
            m("<init>", Special, vec![], Ty::Void, ThrowableCtor),
            m(
                "<init>",
                Special,
                vec![str_ty.clone()],
                Ty::Void,
                ThrowableCtorMsg,
            ),
            m(
                "getMessage",
                Virtual,
                vec![],
                str_ty.clone(),
                ThrowableGetMessage,
            ),
        ],
        vtable: vec![],
        is_builtin: true,
    });

    // The exception hierarchy used by the implicit runtime checks.
    let exc_class = |classes: &mut Vec<Class>, name: &str, sup: ClassIdx| -> ClassIdx {
        let idx = classes.len();
        classes.push(Class {
            name: name.into(),
            superclass: Some(sup),
            fields: vec![],
            methods: vec![
                m("<init>", Special, vec![], Ty::Void, ThrowableCtor),
                m(
                    "<init>",
                    Special,
                    vec![str_ty.clone()],
                    Ty::Void,
                    ThrowableCtorMsg,
                ),
            ],
            vtable: vec![],
            is_builtin: true,
        });
        idx
    };
    let exception = exc_class(classes, "Exception", throwable);
    let runtime_exception = exc_class(classes, "RuntimeException", exception);
    let arithmetic_exception = exc_class(classes, "ArithmeticException", runtime_exception);
    let null_pointer_exception = exc_class(classes, "NullPointerException", runtime_exception);
    let index_exception = exc_class(classes, "IndexOutOfBoundsException", runtime_exception);
    let cast_exception = exc_class(classes, "ClassCastException", runtime_exception);
    let negative_size_exception =
        exc_class(classes, "NegativeArraySizeException", runtime_exception);

    classes.push(Class {
        name: "Math".into(),
        superclass: Some(object),
        fields: vec![],
        methods: vec![
            m(
                "sqrt",
                Static,
                vec![Ty::Prim(Double)],
                Ty::Prim(Double),
                MathSqrt,
            ),
            m("abs", Static, vec![Ty::INT], Ty::INT, MathAbsI),
            m(
                "abs",
                Static,
                vec![Ty::Prim(Long)],
                Ty::Prim(Long),
                MathAbsL,
            ),
            m(
                "abs",
                Static,
                vec![Ty::Prim(Double)],
                Ty::Prim(Double),
                MathAbsD,
            ),
            m("min", Static, vec![Ty::INT, Ty::INT], Ty::INT, MathMinI),
            m("max", Static, vec![Ty::INT, Ty::INT], Ty::INT, MathMaxI),
            m(
                "min",
                Static,
                vec![Ty::Prim(Double), Ty::Prim(Double)],
                Ty::Prim(Double),
                MathMinD,
            ),
            m(
                "max",
                Static,
                vec![Ty::Prim(Double), Ty::Prim(Double)],
                Ty::Prim(Double),
                MathMaxD,
            ),
            m(
                "floor",
                Static,
                vec![Ty::Prim(Double)],
                Ty::Prim(Double),
                MathFloor,
            ),
            m(
                "ceil",
                Static,
                vec![Ty::Prim(Double)],
                Ty::Prim(Double),
                MathCeil,
            ),
            m(
                "pow",
                Static,
                vec![Ty::Prim(Double), Ty::Prim(Double)],
                Ty::Prim(Double),
                MathPow,
            ),
        ],
        vtable: vec![],
        is_builtin: true,
    });

    classes.push(Class {
        name: "Sys".into(),
        superclass: Some(object),
        fields: vec![],
        methods: vec![
            m("print", Static, vec![Ty::INT], Ty::Void, SysPrintI),
            m("print", Static, vec![Ty::Prim(Long)], Ty::Void, SysPrintL),
            m("print", Static, vec![Ty::Prim(Double)], Ty::Void, SysPrintD),
            m("print", Static, vec![Ty::Prim(Char)], Ty::Void, SysPrintC),
            m("print", Static, vec![Ty::BOOL], Ty::Void, SysPrintB),
            m("print", Static, vec![str_ty.clone()], Ty::Void, SysPrintS),
            m("println", Static, vec![Ty::INT], Ty::Void, SysPrintlnI),
            m(
                "println",
                Static,
                vec![Ty::Prim(Long)],
                Ty::Void,
                SysPrintlnL,
            ),
            m(
                "println",
                Static,
                vec![Ty::Prim(Double)],
                Ty::Void,
                SysPrintlnD,
            ),
            m(
                "println",
                Static,
                vec![Ty::Prim(Char)],
                Ty::Void,
                SysPrintlnC,
            ),
            m("println", Static, vec![Ty::BOOL], Ty::Void, SysPrintlnB),
            m(
                "println",
                Static,
                vec![str_ty.clone()],
                Ty::Void,
                SysPrintlnS,
            ),
            m("println", Static, vec![], Ty::Void, SysPrintln),
        ],
        vtable: vec![],
        is_builtin: true,
    });

    // The error hierarchy of the resource-exhaustion traps. Java keeps
    // these outside `Exception` so a `catch (Exception e)` cannot
    // swallow them; catching them explicitly is still allowed.
    let error = exc_class(classes, "Error", throwable);
    let oom_error = exc_class(classes, "OutOfMemoryError", error);
    let stack_overflow_error = exc_class(classes, "StackOverflowError", error);

    Program {
        classes: Vec::new(), // filled by the caller
        object,
        string,
        throwable,
        exception,
        arithmetic_exception,
        null_pointer_exception,
        index_exception,
        cast_exception,
        negative_size_exception,
        error,
        oom_error,
        stack_overflow_error,
    }
}
