//! The untyped abstract syntax tree produced by the parser.

use crate::span::Span;

/// One parsed compilation unit (one or more class declarations).
#[derive(Debug, Clone, PartialEq)]
pub struct CompilationUnit {
    /// Declared classes, in source order.
    pub classes: Vec<ClassDecl>,
}

impl CompilationUnit {
    /// Counts the AST nodes of the unit (declarations, statements, and
    /// expressions) — the front-end's size counter in the metrics
    /// report. Deterministic for a given source text.
    pub fn node_count(&self) -> u64 {
        let mut n = 0;
        for class in &self.classes {
            n += 1;
            for m in &class.members {
                n += 1;
                match m {
                    Member::Field(f) => {
                        if let Some(e) = &f.init {
                            n += expr_nodes(e);
                        }
                    }
                    Member::Method(m) => n += m.body.iter().map(stmt_nodes).sum::<u64>(),
                    Member::Ctor(c) => n += c.body.iter().map(stmt_nodes).sum::<u64>(),
                }
            }
        }
        n
    }
}

fn stmt_nodes(s: &Stmt) -> u64 {
    1 + match s {
        Stmt::Block(items) => items.iter().map(stmt_nodes).sum(),
        Stmt::Local { init, .. } => init.as_ref().map_or(0, expr_nodes),
        Stmt::Expr(e) | Stmt::Throw(e) => expr_nodes(e),
        Stmt::If { cond, then, els } => {
            expr_nodes(cond) + stmt_nodes(then) + els.as_deref().map_or(0, stmt_nodes)
        }
        Stmt::While { cond, body } | Stmt::Do { body, cond } => expr_nodes(cond) + stmt_nodes(body),
        Stmt::For {
            init,
            cond,
            update,
            body,
        } => {
            init.iter().map(stmt_nodes).sum::<u64>()
                + cond.as_ref().map_or(0, expr_nodes)
                + update.iter().map(expr_nodes).sum::<u64>()
                + stmt_nodes(body)
        }
        Stmt::Return(e, _) => e.as_ref().map_or(0, expr_nodes),
        Stmt::Try {
            body,
            catches,
            finally,
        } => {
            body.iter().map(stmt_nodes).sum::<u64>()
                + catches
                    .iter()
                    .map(|c| 1 + c.body.iter().map(stmt_nodes).sum::<u64>())
                    .sum::<u64>()
                + finally
                    .iter()
                    .flatten()
                    .map(stmt_nodes)
                    .sum::<u64>()
        }
        Stmt::Labeled { body, .. } => stmt_nodes(body),
        Stmt::SuperCall(args, _) => args.iter().map(expr_nodes).sum(),
        Stmt::Break(..) | Stmt::Continue(..) | Stmt::Empty => 0,
    }
}

fn expr_nodes(e: &Expr) -> u64 {
    1 + match &e.kind {
        ExprKind::IntLit(_)
        | ExprKind::LongLit(_)
        | ExprKind::FloatLit(_)
        | ExprKind::DoubleLit(_)
        | ExprKind::CharLit(_)
        | ExprKind::StrLit(_)
        | ExprKind::BoolLit(_)
        | ExprKind::Null
        | ExprKind::This
        | ExprKind::Name(_) => 0,
        ExprKind::FieldAccess { obj, .. } => expr_nodes(obj),
        ExprKind::Index { arr, idx } => expr_nodes(arr) + expr_nodes(idx),
        ExprKind::CallUnqualified { args, .. } => args.iter().map(expr_nodes).sum(),
        ExprKind::CallQualified { recv, args, .. } => {
            expr_nodes(recv) + args.iter().map(expr_nodes).sum::<u64>()
        }
        ExprKind::New { args, .. } => args.iter().map(expr_nodes).sum(),
        ExprKind::NewArray { len, .. } => expr_nodes(len),
        ExprKind::ArrayLit { elems, .. } => elems.iter().map(expr_nodes).sum(),
        ExprKind::Unary { expr, .. }
        | ExprKind::Cast { expr, .. }
        | ExprKind::InstanceOf { expr, .. } => expr_nodes(expr),
        ExprKind::Binary { l, r, .. } => expr_nodes(l) + expr_nodes(r),
        ExprKind::Assign { target, value, .. } => expr_nodes(target) + expr_nodes(value),
        ExprKind::IncDec { target, .. } => expr_nodes(target),
        ExprKind::Cond { cond, then, els } => expr_nodes(cond) + expr_nodes(then) + expr_nodes(els),
    }
}

/// A class declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDecl {
    /// Class name.
    pub name: String,
    /// Named superclass, if any (`Object` otherwise).
    pub superclass: Option<String>,
    /// Members in source order.
    pub members: Vec<Member>,
    /// Location of the declaration.
    pub span: Span,
}

/// A class member.
#[derive(Debug, Clone, PartialEq)]
pub enum Member {
    /// A field declaration (one per declarator).
    Field(FieldDecl),
    /// A method declaration.
    Method(MethodDecl),
    /// A constructor declaration.
    Ctor(CtorDecl),
}

/// A field declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDecl {
    /// Field name.
    pub name: String,
    /// Declared type.
    pub ty: TypeRef,
    /// Whether `static` was present.
    pub is_static: bool,
    /// Optional initializer expression.
    pub init: Option<Expr>,
    /// Location.
    pub span: Span,
}

/// A method declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodDecl {
    /// Method name.
    pub name: String,
    /// Whether `static` was present.
    pub is_static: bool,
    /// Return type; `None` for `void`.
    pub ret: Option<TypeRef>,
    /// `(type, name)` parameter list.
    pub params: Vec<(TypeRef, String)>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Location.
    pub span: Span,
}

/// A constructor declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct CtorDecl {
    /// `(type, name)` parameter list.
    pub params: Vec<(TypeRef, String)>,
    /// Body statements (may begin with an explicit `super(...)`).
    pub body: Vec<Stmt>,
    /// Location.
    pub span: Span,
}

/// A syntactic type reference.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeRef {
    /// `boolean`.
    Bool,
    /// `char`.
    Char,
    /// `int`.
    Int,
    /// `long`.
    Long,
    /// `float`.
    Float,
    /// `double`.
    Double,
    /// A named class type.
    Named(String),
    /// An array type.
    Array(Box<TypeRef>),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `{ ... }`.
    Block(Vec<Stmt>),
    /// A local variable declarator.
    Local {
        /// Declared type.
        ty: TypeRef,
        /// Variable name.
        name: String,
        /// Optional initializer.
        init: Option<Expr>,
        /// Location.
        span: Span,
    },
    /// An expression statement.
    Expr(Expr),
    /// `if (c) s else s`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then: Box<Stmt>,
        /// Else branch.
        els: Option<Box<Stmt>>,
    },
    /// `while (c) s`.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Box<Stmt>,
    },
    /// `do s while (c);`.
    Do {
        /// Body.
        body: Box<Stmt>,
        /// Condition.
        cond: Expr,
    },
    /// `for (init; cond; update) s`.
    For {
        /// Initializers (locals or expression statements).
        init: Vec<Stmt>,
        /// Optional condition.
        cond: Option<Expr>,
        /// Update expressions.
        update: Vec<Expr>,
        /// Body.
        body: Box<Stmt>,
    },
    /// `break;` / `break label;`.
    Break(Option<String>, Span),
    /// `continue;` / `continue label;`.
    Continue(Option<String>, Span),
    /// `return e?;`.
    Return(Option<Expr>, Span),
    /// `throw e;`.
    Throw(Expr),
    /// `try { } catch (T v) { } ... finally { }`.
    Try {
        /// Protected statements.
        body: Vec<Stmt>,
        /// Catch clauses in order.
        catches: Vec<CatchClause>,
        /// Optional finally block.
        finally: Option<Vec<Stmt>>,
    },
    /// A labeled loop: `name: while (...) ...`.
    Labeled {
        /// The label name.
        name: String,
        /// The labeled statement (must be a loop in this subset).
        body: Box<Stmt>,
        /// Location.
        span: Span,
    },
    /// Explicit `super(args);` (constructors only).
    SuperCall(Vec<Expr>, Span),
    /// `;`.
    Empty,
}

/// One catch clause.
#[derive(Debug, Clone, PartialEq)]
pub struct CatchClause {
    /// The caught class name.
    pub class: String,
    /// The exception variable name.
    pub var: String,
    /// Handler statements.
    pub body: Vec<Stmt>,
    /// Location.
    pub span: Span,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    Ushr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum UnOp {
    Neg,
    Not,
    BitNot,
}

/// An expression with location.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression's kind.
    pub kind: ExprKind,
    /// Location.
    pub span: Span,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal (pre-negation; may be `2^31`).
    IntLit(i64),
    /// `long` literal.
    LongLit(i64),
    /// `float` literal.
    FloatLit(f32),
    /// `double` literal.
    DoubleLit(f64),
    /// `char` literal.
    CharLit(u16),
    /// String literal.
    StrLit(String),
    /// `true`/`false`.
    BoolLit(bool),
    /// `null`.
    Null,
    /// `this`.
    This,
    /// A bare name (local, field, or class — resolved by sema).
    Name(String),
    /// `obj.name` (field access or class-qualified static).
    FieldAccess {
        /// Qualifier expression.
        obj: Box<Expr>,
        /// Member name.
        name: String,
    },
    /// `arr[idx]`.
    Index {
        /// The array.
        arr: Box<Expr>,
        /// The index.
        idx: Box<Expr>,
    },
    /// Unqualified call `f(args)` (instance or static of current class).
    CallUnqualified {
        /// Method name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Qualified call `recv.m(args)` (or `Class.m(args)`).
    CallQualified {
        /// Receiver (expression or class name).
        recv: Box<Expr>,
        /// Method name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `new C(args)`.
    New {
        /// Class name.
        class: String,
        /// Constructor arguments.
        args: Vec<Expr>,
    },
    /// `new T[len]` (possibly with additional empty dims `[]`).
    NewArray {
        /// Element type after removing one dimension per `len`.
        elem: TypeRef,
        /// Sized dimensions (we support one sized dimension; the rest
        /// must come from nested `new`).
        len: Box<Expr>,
        /// Extra unsized dimensions appended to the element type.
        extra_dims: usize,
    },
    /// `new T[] { ... }` or `{ ... }` initializer sugar.
    ArrayLit {
        /// Element type (filled by the parser from context when sugar).
        elem: Option<TypeRef>,
        /// Elements.
        elems: Vec<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation (including `&&`/`||`).
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        l: Box<Expr>,
        /// Right operand.
        r: Box<Expr>,
    },
    /// Assignment `target = value` or compound `target op= value`.
    Assign {
        /// Assignable target (name, field access, or index).
        target: Box<Expr>,
        /// `Some(op)` for compound assignment.
        op: Option<BinOp>,
        /// Right-hand side.
        value: Box<Expr>,
    },
    /// `++`/`--`, prefix or postfix.
    IncDec {
        /// Assignable target.
        target: Box<Expr>,
        /// `true` for `++`.
        inc: bool,
        /// `true` for prefix form.
        prefix: bool,
    },
    /// `(T) e`.
    Cast {
        /// Target type.
        ty: TypeRef,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `e instanceof T`.
    InstanceOf {
        /// Operand.
        expr: Box<Expr>,
        /// Tested type.
        ty: TypeRef,
    },
    /// `c ? t : e`.
    Cond {
        /// Condition.
        cond: Box<Expr>,
        /// Then value.
        then: Box<Expr>,
        /// Else value.
        els: Box<Expr>,
    },
}
