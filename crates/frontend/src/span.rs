//! Source positions and diagnostics.

use std::fmt;

/// A half-open byte range in a source file, with line/column of its
/// start for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Start byte offset.
    pub start: usize,
    /// End byte offset (exclusive).
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
    /// 1-based column of `start`.
    pub col: u32,
}

impl Span {
    /// A span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start,
            end: other.end.max(self.end),
            line: self.line,
            col: self.col,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A compilation error with location.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileError {
    /// Where the error occurred.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl CompileError {
    /// Creates an error at `span`.
    pub fn new(span: Span, message: impl Into<String>) -> Self {
        CompileError {
            span,
            message: message.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.message)
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join() {
        let a = Span {
            start: 0,
            end: 3,
            line: 1,
            col: 1,
        };
        let b = Span {
            start: 5,
            end: 9,
            line: 1,
            col: 6,
        };
        let j = a.to(b);
        assert_eq!(j.start, 0);
        assert_eq!(j.end, 9);
        assert_eq!(j.line, 1);
    }

    #[test]
    fn error_display() {
        let e = CompileError::new(
            Span {
                start: 0,
                end: 1,
                line: 3,
                col: 7,
            },
            "unexpected token",
        );
        assert_eq!(e.to_string(), "3:7: unexpected token");
    }
}
