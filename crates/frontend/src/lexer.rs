//! The lexer for the Java subset.

use crate::span::{CompileError, Span};
use crate::token::{keyword, Tok, Token, P};

/// Lexes `src` into a token vector terminated by [`Tok::Eof`].
///
/// # Errors
///
/// Returns a [`CompileError`] on malformed literals, unterminated
/// strings/comments, or unexpected characters.
pub fn lex(src: &str) -> Result<Vec<Token>, CompileError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.pos + 1).unwrap_or(&0)
    }

    fn peek3(&self) -> u8 {
        *self.src.get(self.pos + 2).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        c
    }

    fn here(&self) -> Span {
        Span {
            start: self.pos,
            end: self.pos,
            line: self.line,
            col: self.col,
        }
    }

    fn err(&self, span: Span, msg: impl Into<String>) -> CompileError {
        CompileError::new(span, msg)
    }

    fn run(mut self) -> Result<Vec<Token>, CompileError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let start = self.here();
            if self.pos >= self.src.len() {
                out.push(Token {
                    kind: Tok::Eof,
                    span: start,
                });
                return Ok(out);
            }
            let kind = self.next_token(start)?;
            let span = Span {
                start: start.start,
                end: self.pos,
                line: start.line,
                col: start.col,
            };
            out.push(Token { kind, span });
        }
    }

    fn skip_trivia(&mut self) -> Result<(), CompileError> {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek2() == b'/' => {
                    while self.pos < self.src.len() && self.peek() != b'\n' {
                        self.bump();
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    let start = self.here();
                    self.bump();
                    self.bump();
                    loop {
                        if self.pos >= self.src.len() {
                            return Err(self.err(start, "unterminated block comment"));
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.bump();
                            self.bump();
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self, start: Span) -> Result<Tok, CompileError> {
        let c = self.peek();
        if c.is_ascii_alphabetic() || c == b'_' || c == b'$' {
            return Ok(self.ident());
        }
        if c.is_ascii_digit() {
            return self.number(start);
        }
        if c == b'\'' {
            return self.char_lit(start);
        }
        if c == b'"' {
            return self.string_lit(start);
        }
        self.operator(start)
    }

    fn ident(&mut self) -> Tok {
        let start = self.pos;
        while {
            let c = self.peek();
            c.is_ascii_alphanumeric() || c == b'_' || c == b'$'
        } {
            self.bump();
        }
        let s = std::str::from_utf8(&self.src[start..self.pos])
            .expect("identifier bytes are ASCII")
            .to_string();
        match keyword(&s) {
            Some(k) => Tok::Kw(k),
            None => Tok::Ident(s),
        }
    }

    fn number(&mut self, start: Span) -> Result<Tok, CompileError> {
        let begin = self.pos;
        let mut is_float = false;
        if self.peek() == b'0' && (self.peek2() == b'x' || self.peek2() == b'X') {
            self.bump();
            self.bump();
            let hex_start = self.pos;
            while self.peek().is_ascii_hexdigit() {
                self.bump();
            }
            if self.pos == hex_start {
                return Err(self.err(start, "empty hex literal"));
            }
            let text = std::str::from_utf8(&self.src[hex_start..self.pos]).unwrap();
            let val = u64::from_str_radix(text, 16)
                .map_err(|_| self.err(start, "hex literal too large"))?;
            if self.peek() == b'L' || self.peek() == b'l' {
                self.bump();
                return Ok(Tok::LongLit(val as i64));
            }
            if val > u32::MAX as u64 {
                return Err(self.err(start, "hex int literal exceeds 32 bits"));
            }
            return Ok(Tok::IntLit(val as u32 as i32 as i64));
        }
        while self.peek().is_ascii_digit() {
            self.bump();
        }
        if self.peek() == b'.' && self.peek2().is_ascii_digit() {
            is_float = true;
            self.bump();
            while self.peek().is_ascii_digit() {
                self.bump();
            }
        }
        if self.peek() == b'e' || self.peek() == b'E' {
            let save = self.pos;
            self.bump();
            if self.peek() == b'+' || self.peek() == b'-' {
                self.bump();
            }
            if self.peek().is_ascii_digit() {
                is_float = true;
                while self.peek().is_ascii_digit() {
                    self.bump();
                }
            } else {
                self.pos = save;
            }
        }
        let text = std::str::from_utf8(&self.src[begin..self.pos]).unwrap();
        match self.peek() {
            b'L' | b'l' => {
                self.bump();
                if is_float {
                    return Err(self.err(start, "long literal cannot have a fraction"));
                }
                let v: i64 = text
                    .parse()
                    .map_err(|_| self.err(start, "long literal too large"))?;
                Ok(Tok::LongLit(v))
            }
            b'f' | b'F' => {
                self.bump();
                let v: f32 = text
                    .parse()
                    .map_err(|_| self.err(start, "bad float literal"))?;
                Ok(Tok::FloatLit(v))
            }
            b'd' | b'D' => {
                self.bump();
                let v: f64 = text
                    .parse()
                    .map_err(|_| self.err(start, "bad double literal"))?;
                Ok(Tok::DoubleLit(v))
            }
            _ => {
                if is_float {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| self.err(start, "bad double literal"))?;
                    Ok(Tok::DoubleLit(v))
                } else {
                    // Allow up to 2^31 so `-2147483648` parses; the parser
                    // range-checks after applying unary minus.
                    let v: i64 = text
                        .parse()
                        .map_err(|_| self.err(start, "int literal too large"))?;
                    if v > i32::MAX as i64 + 1 {
                        return Err(self.err(start, "int literal too large"));
                    }
                    Ok(Tok::IntLit(v))
                }
            }
        }
    }

    fn escape(&mut self, start: Span) -> Result<u16, CompileError> {
        // Caller consumed the backslash.
        let c = self.bump();
        Ok(match c {
            b'n' => b'\n' as u16,
            b't' => b'\t' as u16,
            b'r' => b'\r' as u16,
            b'0' => 0,
            b'b' => 8,
            b'f' => 12,
            b'\\' => b'\\' as u16,
            b'\'' => b'\'' as u16,
            b'"' => b'"' as u16,
            b'u' => {
                let mut v: u32 = 0;
                for _ in 0..4 {
                    let d = self.bump();
                    let d = (d as char)
                        .to_digit(16)
                        .ok_or_else(|| self.err(start, "bad \\u escape"))?;
                    v = v * 16 + d;
                }
                v as u16
            }
            _ => return Err(self.err(start, "unknown escape sequence")),
        })
    }

    fn char_lit(&mut self, start: Span) -> Result<Tok, CompileError> {
        self.bump(); // opening quote
        let c = match self.peek() {
            b'\\' => {
                self.bump();
                self.escape(start)?
            }
            0 => return Err(self.err(start, "unterminated char literal")),
            _ => {
                // Decode one UTF-8 scalar and truncate to a code unit.
                let rest = std::str::from_utf8(&self.src[self.pos..])
                    .map_err(|_| self.err(start, "invalid UTF-8 in char literal"))?;
                let ch = rest.chars().next().unwrap();
                for _ in 0..ch.len_utf8() {
                    self.bump();
                }
                ch as u32 as u16
            }
        };
        if self.bump() != b'\'' {
            return Err(self.err(start, "unterminated char literal"));
        }
        Ok(Tok::CharLit(c))
    }

    fn string_lit(&mut self, start: Span) -> Result<Tok, CompileError> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.peek() {
                0 => return Err(self.err(start, "unterminated string literal")),
                b'"' => {
                    self.bump();
                    return Ok(Tok::StrLit(s));
                }
                b'\\' => {
                    self.bump();
                    let u = self.escape(start)?;
                    s.push(char::from_u32(u as u32).unwrap_or('\u{FFFD}'));
                }
                b'\n' => return Err(self.err(start, "newline in string literal")),
                _ => {
                    let rest = std::str::from_utf8(&self.src[self.pos..])
                        .map_err(|_| self.err(start, "invalid UTF-8 in string"))?;
                    let ch = rest.chars().next().unwrap();
                    for _ in 0..ch.len_utf8() {
                        self.bump();
                    }
                    s.push(ch);
                }
            }
        }
    }

    fn operator(&mut self, start: Span) -> Result<Tok, CompileError> {
        use P::*;
        let c = self.bump();
        let two = |l: &mut Self, next: u8, a: P, b: P| {
            if l.peek() == next {
                l.bump();
                Tok::P(a)
            } else {
                Tok::P(b)
            }
        };
        Ok(match c {
            b'(' => Tok::P(LParen),
            b')' => Tok::P(RParen),
            b'{' => Tok::P(LBrace),
            b'}' => Tok::P(RBrace),
            b'[' => Tok::P(LBracket),
            b']' => Tok::P(RBracket),
            b';' => Tok::P(Semi),
            b',' => Tok::P(Comma),
            b'.' => Tok::P(Dot),
            b':' => Tok::P(Colon),
            b'?' => Tok::P(Question),
            b'~' => Tok::P(Tilde),
            b'+' => {
                if self.peek() == b'+' {
                    self.bump();
                    Tok::P(PlusPlus)
                } else {
                    two(self, b'=', PlusAssign, Plus)
                }
            }
            b'-' => {
                if self.peek() == b'-' {
                    self.bump();
                    Tok::P(MinusMinus)
                } else {
                    two(self, b'=', MinusAssign, Minus)
                }
            }
            b'*' => two(self, b'=', StarAssign, Star),
            b'/' => two(self, b'=', SlashAssign, Slash),
            b'%' => two(self, b'=', PercentAssign, Percent),
            b'=' => two(self, b'=', Eq, Assign),
            b'!' => two(self, b'=', Ne, Bang),
            b'^' => two(self, b'=', CaretAssign, Caret),
            b'&' => {
                if self.peek() == b'&' {
                    self.bump();
                    Tok::P(AmpAmp)
                } else {
                    two(self, b'=', AmpAssign, Amp)
                }
            }
            b'|' => {
                if self.peek() == b'|' {
                    self.bump();
                    Tok::P(PipePipe)
                } else {
                    two(self, b'=', PipeAssign, Pipe)
                }
            }
            b'<' => {
                if self.peek() == b'<' {
                    self.bump();
                    two(self, b'=', ShlAssign, Shl)
                } else {
                    two(self, b'=', Le, Lt)
                }
            }
            b'>' => {
                if self.peek() == b'>' && self.peek2() == b'>' {
                    self.bump();
                    self.bump();
                    two(self, b'=', UshrAssign, Ushr)
                } else if self.peek() == b'>' && self.peek2() != b'>' && self.peek3() != b'=' {
                    // `>>` but not `>>=` lookahead confusion: handle below.
                    self.bump();
                    two(self, b'=', ShrAssign, Shr)
                } else if self.peek() == b'>' {
                    self.bump();
                    two(self, b'=', ShrAssign, Shr)
                } else {
                    two(self, b'=', Ge, Gt)
                }
            }
            _ => return Err(self.err(start, format!("unexpected character `{}`", c as char))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::Kw;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            kinds("class Foo extends Bar"),
            vec![
                Tok::Kw(Kw::Class),
                Tok::Ident("Foo".into()),
                Tok::Kw(Kw::Extends),
                Tok::Ident("Bar".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numeric_literals() {
        assert_eq!(
            kinds("0 42 42L 3.5 3.5f 1e3 0x1F 0xFFL 2d"),
            vec![
                Tok::IntLit(0),
                Tok::IntLit(42),
                Tok::LongLit(42),
                Tok::DoubleLit(3.5),
                Tok::FloatLit(3.5),
                Tok::DoubleLit(1000.0),
                Tok::IntLit(31),
                Tok::LongLit(255),
                Tok::DoubleLit(2.0),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn int_min_is_lexable() {
        // 2147483648 lexes (parser applies the unary minus).
        assert_eq!(kinds("2147483648"), vec![Tok::IntLit(2147483648), Tok::Eof]);
        assert!(lex("2147483649").is_err());
    }

    #[test]
    fn char_and_string_escapes() {
        assert_eq!(
            kinds(r#"'a' '\n' 'A' "hi\tthere""#),
            vec![
                Tok::CharLit(b'a' as u16),
                Tok::CharLit(b'\n' as u16),
                Tok::CharLit(0x41),
                Tok::StrLit("hi\tthere".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        use crate::token::P::*;
        assert_eq!(
            kinds("a >>= b >> c >>> d < e << 1 <= 2"),
            vec![
                Tok::Ident("a".into()),
                Tok::P(ShrAssign),
                Tok::Ident("b".into()),
                Tok::P(Shr),
                Tok::Ident("c".into()),
                Tok::P(Ushr),
                Tok::Ident("d".into()),
                Tok::P(Lt),
                Tok::Ident("e".into()),
                Tok::P(Shl),
                Tok::IntLit(1),
                Tok::P(Le),
                Tok::IntLit(2),
                Tok::Eof
            ]
        );
        assert_eq!(
            kinds("x++ + ++y && z || !w"),
            vec![
                Tok::Ident("x".into()),
                Tok::P(PlusPlus),
                Tok::P(Plus),
                Tok::P(PlusPlus),
                Tok::Ident("y".into()),
                Tok::P(AmpAmp),
                Tok::Ident("z".into()),
                Tok::P(PipePipe),
                Tok::P(Bang),
                Tok::Ident("w".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a // line\n/* block\n over lines */ b"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
        assert!(lex("/* unterminated").is_err());
    }

    #[test]
    fn spans_track_lines() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[1].span.line, 2);
        assert_eq!(toks[1].span.col, 3);
    }
}
