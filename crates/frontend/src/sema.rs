//! Semantic analysis: name resolution, type checking, overload
//! resolution, vtable layout, and lowering to the typed [`crate::hir`].

use crate::ast;
use crate::ast::{CompilationUnit, ExprKind as AK, Member, Stmt as AStmt, TypeRef};
use crate::builtins;
use crate::hir::*;
use crate::span::{CompileError, Span};
use std::collections::HashMap;

/// Analyzes a compilation unit into a resolved program.
///
/// # Errors
///
/// Returns the first semantic error (unknown names, type mismatches,
/// ambiguous overloads, unreachable code, missing returns, …).
pub fn analyze(cu: &CompilationUnit) -> Result<Program, CompileError> {
    let mut classes: Vec<Class> = Vec::new();
    let mut prog = builtins::install(&mut classes);

    // Pass 1: declare user classes.
    let mut names: HashMap<String, ClassIdx> = classes
        .iter()
        .enumerate()
        .map(|(i, c)| (c.name.clone(), i))
        .collect();
    for decl in &cu.classes {
        if names.contains_key(&decl.name) {
            return Err(CompileError::new(
                decl.span,
                format!("duplicate class `{}`", decl.name),
            ));
        }
        let idx = classes.len();
        names.insert(decl.name.clone(), idx);
        classes.push(Class {
            name: decl.name.clone(),
            superclass: None, // resolved in pass 2
            fields: vec![],
            methods: vec![],
            vtable: vec![],
            is_builtin: false,
        });
    }

    // Pass 2: resolve superclasses; reject cycles and sealed builtins.
    for decl in &cu.classes {
        let idx = names[&decl.name];
        let sup = match &decl.superclass {
            None => prog.object,
            Some(s) => *names
                .get(s)
                .ok_or_else(|| CompileError::new(decl.span, format!("unknown superclass `{s}`")))?,
        };
        let sup_name = classes[sup].name.clone();
        if matches!(sup_name.as_str(), "String" | "Math" | "Sys") {
            return Err(CompileError::new(
                decl.span,
                format!("cannot extend `{sup_name}`"),
            ));
        }
        classes[idx].superclass = Some(sup);
    }
    // Cycle check.
    for decl in &cu.classes {
        let mut seen = Vec::new();
        let mut cur = Some(names[&decl.name]);
        while let Some(c) = cur {
            if seen.contains(&c) {
                return Err(CompileError::new(decl.span, "cyclic class hierarchy"));
            }
            seen.push(c);
            cur = classes[c].superclass;
        }
    }

    // Pass 3: declare members.
    let mut field_inits: Vec<(ClassIdx, FieldIdx, ast::Expr)> = Vec::new();
    let mut bodies: Vec<PendingBody> = Vec::new();
    for decl in &cu.classes {
        let idx = names[&decl.name];
        let mut has_ctor = false;
        for member in &decl.members {
            match member {
                Member::Field(f) => {
                    let ty = resolve_type(&names, &f.ty, f.span)?;
                    if classes[idx].fields.iter().any(|x| x.name == f.name) {
                        return Err(CompileError::new(
                            f.span,
                            format!("duplicate field `{}`", f.name),
                        ));
                    }
                    let fidx = classes[idx].fields.len();
                    classes[idx].fields.push(Field {
                        name: f.name.clone(),
                        ty,
                        is_static: f.is_static,
                    });
                    if let Some(init) = &f.init {
                        field_inits.push((idx, fidx, init.clone()));
                    }
                }
                Member::Method(md) => {
                    let params = md
                        .params
                        .iter()
                        .map(|(t, _)| resolve_type(&names, t, md.span))
                        .collect::<Result<Vec<_>, _>>()?;
                    let ret = match &md.ret {
                        None => Ty::Void,
                        Some(t) => resolve_type(&names, t, md.span)?,
                    };
                    check_no_duplicate_sig(&classes[idx], &md.name, &params, md.span)?;
                    let midx = classes[idx].methods.len();
                    classes[idx].methods.push(Method {
                        name: md.name.clone(),
                        kind: if md.is_static {
                            MethodKind::Static
                        } else {
                            MethodKind::Virtual
                        },
                        params,
                        ret,
                        vtable_slot: None,
                        body: None,
                        intrinsic: None,
                    });
                    bodies.push(PendingBody {
                        class: idx,
                        method: midx,
                        params: md.params.clone(),
                        stmts: md.body.clone(),
                        is_ctor: false,
                        span: md.span,
                    });
                }
                Member::Ctor(cd) => {
                    has_ctor = true;
                    let params = cd
                        .params
                        .iter()
                        .map(|(t, _)| resolve_type(&names, t, cd.span))
                        .collect::<Result<Vec<_>, _>>()?;
                    check_no_duplicate_sig(&classes[idx], "<init>", &params, cd.span)?;
                    let midx = classes[idx].methods.len();
                    classes[idx].methods.push(Method {
                        name: "<init>".into(),
                        kind: MethodKind::Special,
                        params,
                        ret: Ty::Void,
                        vtable_slot: None,
                        body: None,
                        intrinsic: None,
                    });
                    bodies.push(PendingBody {
                        class: idx,
                        method: midx,
                        params: cd.params.clone(),
                        stmts: cd.body.clone(),
                        is_ctor: true,
                        span: cd.span,
                    });
                }
            }
        }
        if !has_ctor {
            // Synthesize the default constructor.
            let midx = classes[idx].methods.len();
            classes[idx].methods.push(Method {
                name: "<init>".into(),
                kind: MethodKind::Special,
                params: vec![],
                ret: Ty::Void,
                vtable_slot: None,
                body: None,
                intrinsic: None,
            });
            bodies.push(PendingBody {
                class: idx,
                method: midx,
                params: vec![],
                stmts: vec![],
                is_ctor: true,
                span: decl.span,
            });
        }
    }

    // Pass 4: vtable layout (parents before children via recursion).
    let mut done = vec![false; classes.len()];
    for i in 0..classes.len() {
        layout_vtable(&mut classes, &mut done, i)?;
    }

    prog.classes = classes;

    // Pass 5: check bodies.
    let mut compiled: Vec<(ClassIdx, MethodIdx, Body)> = Vec::new();
    for pb in &bodies {
        let body = check_body(&prog, &names, pb, &field_inits)?;
        compiled.push((pb.class, pb.method, body));
    }
    // Pass 6: synthesize `<clinit>` for classes with static inits.
    let mut clinits: Vec<(ClassIdx, Body)> = Vec::new();
    for ci in 0..prog.classes.len() {
        let inits: Vec<&(ClassIdx, FieldIdx, ast::Expr)> = field_inits
            .iter()
            .filter(|(c, f, _)| *c == ci && prog.field(ci, *f).is_static)
            .collect();
        if inits.is_empty() {
            continue;
        }
        let mut ctx = Ctx::new(&prog, &names, ci, true, Ty::Void);
        let mut stmts = Vec::new();
        for (c, f, init) in inits {
            let want = prog.field(*c, *f).ty.clone();
            let v = ctx.expr_expect(init, &want)?;
            stmts.push(Stmt::Expr(Expr {
                ty: want,
                kind: ExprKind::SetStatic {
                    class: *c,
                    field: *f,
                    value: Box::new(v),
                },
            }));
        }
        clinits.push((
            ci,
            Body {
                locals: ctx.locals,
                stmts,
            },
        ));
    }
    for (ci, mi, body) in compiled {
        prog.classes[ci].methods[mi].body = Some(body);
    }
    for (ci, body) in clinits {
        prog.classes[ci].methods.push(Method {
            name: "<clinit>".into(),
            kind: MethodKind::Static,
            params: vec![],
            ret: Ty::Void,
            vtable_slot: None,
            body: Some(body),
            intrinsic: None,
        });
    }
    Ok(prog)
}

struct PendingBody {
    class: ClassIdx,
    method: MethodIdx,
    params: Vec<(TypeRef, String)>,
    stmts: Vec<AStmt>,
    is_ctor: bool,
    span: Span,
}

fn check_no_duplicate_sig(
    class: &Class,
    name: &str,
    params: &[Ty],
    span: Span,
) -> Result<(), CompileError> {
    if class
        .methods
        .iter()
        .any(|m| m.name == name && m.params == params)
    {
        return Err(CompileError::new(
            span,
            format!("duplicate method `{name}` with identical signature"),
        ));
    }
    Ok(())
}

fn resolve_type(
    names: &HashMap<String, ClassIdx>,
    t: &TypeRef,
    span: Span,
) -> Result<Ty, CompileError> {
    Ok(match t {
        TypeRef::Bool => Ty::Prim(PrimTy::Bool),
        TypeRef::Char => Ty::Prim(PrimTy::Char),
        TypeRef::Int => Ty::Prim(PrimTy::Int),
        TypeRef::Long => Ty::Prim(PrimTy::Long),
        TypeRef::Float => Ty::Prim(PrimTy::Float),
        TypeRef::Double => Ty::Prim(PrimTy::Double),
        TypeRef::Named(n) => Ty::Ref(
            *names
                .get(n)
                .ok_or_else(|| CompileError::new(span, format!("unknown type `{n}`")))?,
        ),
        TypeRef::Array(e) => Ty::Array(Box::new(resolve_type(names, e, span)?)),
    })
}

fn layout_vtable(
    classes: &mut [Class],
    done: &mut [bool],
    idx: ClassIdx,
) -> Result<(), CompileError> {
    if done[idx] {
        return Ok(());
    }
    done[idx] = true;
    let mut vtable = match classes[idx].superclass {
        Some(sup) => {
            layout_vtable(classes, done, sup)?;
            classes[sup].vtable.clone()
        }
        None => Vec::new(),
    };
    let methods_meta: Vec<(String, Vec<Ty>, Ty, MethodKind)> = classes[idx]
        .methods
        .iter()
        .map(|m| (m.name.clone(), m.params.clone(), m.ret.clone(), m.kind))
        .collect();
    for (mi, (name, params, ret, kind)) in methods_meta.into_iter().enumerate() {
        if kind != MethodKind::Virtual {
            continue;
        }
        // Find an overridden slot in the inherited vtable.
        let mut slot = None;
        for (s, &(oc, om)) in vtable.iter().enumerate() {
            let o = &classes[oc].methods[om];
            if o.name == name && o.params == params {
                if o.ret != ret {
                    return Err(CompileError::new(
                        Span::default(),
                        format!("{}.{name}: override changes return type", classes[idx].name),
                    ));
                }
                slot = Some(s);
                break;
            }
        }
        let s = match slot {
            Some(s) => {
                vtable[s] = (idx, mi);
                s
            }
            None => {
                vtable.push((idx, mi));
                vtable.len() - 1
            }
        };
        classes[idx].methods[mi].vtable_slot = Some(s);
    }
    classes[idx].vtable = vtable;
    Ok(())
}

fn check_body(
    prog: &Program,
    names: &HashMap<String, ClassIdx>,
    pb: &PendingBody,
    field_inits: &[(ClassIdx, FieldIdx, ast::Expr)],
) -> Result<Body, CompileError> {
    let meta = prog.method(pb.class, pb.method);
    let is_static = meta.kind == MethodKind::Static;
    let ret = meta.ret.clone();
    let mut ctx = Ctx::new(prog, names, pb.class, is_static, ret.clone());
    // Parameter slots.
    for (i, (_, pname)) in pb.params.iter().enumerate() {
        let ty = meta.params[i].clone();
        let slot = ctx.locals.len();
        ctx.locals.push(Local {
            name: pname.clone(),
            ty,
        });
        ctx.scope_insert(pname.clone(), slot, pb.span)?;
    }
    let mut stmts = Vec::new();
    let mut ast_stmts: &[AStmt] = &pb.stmts;
    if pb.is_ctor {
        // Explicit or implicit super(...) first.
        let (super_args, rest): (Vec<ast::Expr>, &[AStmt]) = match pb.stmts.first() {
            Some(AStmt::SuperCall(args, _)) => (args.clone(), &pb.stmts[1..]),
            _ => (vec![], &pb.stmts[..]),
        };
        ast_stmts = rest;
        if let Some(sup) = prog.class(pb.class).superclass {
            let arg_exprs = super_args
                .iter()
                .map(|a| ctx.expr(a))
                .collect::<Result<Vec<_>, _>>()?;
            let (mc, mm, args) = ctx.resolve_overload(sup, "<init>", arg_exprs, pb.span, true)?;
            stmts.push(Stmt::Expr(Expr {
                ty: Ty::Void,
                kind: ExprKind::CallSpecial {
                    class: mc,
                    method: mm,
                    recv: Box::new(ctx.this_expr(pb.span)?),
                    args,
                },
            }));
        }
        // Instance field initializers.
        for (c, f, init) in field_inits {
            if *c != pb.class || prog.field(*c, *f).is_static {
                continue;
            }
            let want = prog.field(*c, *f).ty.clone();
            let v = ctx.expr_expect(init, &want)?;
            stmts.push(Stmt::Expr(Expr {
                ty: want,
                kind: ExprKind::SetField {
                    obj: Box::new(ctx.this_expr(pb.span)?),
                    class: *c,
                    field: *f,
                    value: Box::new(v),
                },
            }));
        }
    }
    ctx.push_scope();
    ctx.block(ast_stmts, &mut stmts)?;
    ctx.pop_scope();
    // Reachability / missing return.
    let completes = stmts_complete_normally(&stmts);
    if ret != Ty::Void && completes {
        return Err(CompileError::new(
            pb.span,
            format!(
                "{}.{}: missing return statement",
                prog.class(pb.class).name,
                prog.method(pb.class, pb.method).name
            ),
        ));
    }
    Ok(Body {
        locals: ctx.locals,
        stmts,
    })
}

// ---------------------------------------------------------------- Ctx

struct Ctx<'a> {
    prog: &'a Program,
    names: &'a HashMap<String, ClassIdx>,
    class: ClassIdx,
    is_static: bool,
    ret: Ty,
    locals: Vec<Local>,
    scopes: Vec<HashMap<String, LocalId>>,
    /// Enclosing loops, innermost last; `Some(name)` when labeled.
    loop_labels: Vec<Option<String>>,
    /// A pending label to attach to the next loop statement.
    pending_label: Option<String>,
}

impl<'a> Ctx<'a> {
    fn new(
        prog: &'a Program,
        names: &'a HashMap<String, ClassIdx>,
        class: ClassIdx,
        is_static: bool,
        ret: Ty,
    ) -> Self {
        let mut locals = Vec::new();
        if !is_static {
            locals.push(Local {
                name: "this".into(),
                ty: Ty::Ref(class),
            });
        }
        Ctx {
            prog,
            names,
            class,
            is_static,
            ret,
            locals,
            scopes: vec![HashMap::new()],
            loop_labels: Vec::new(),
            pending_label: None,
        }
    }

    fn push_scope(&mut self) {
        self.scopes.push(HashMap::new());
    }

    fn pop_scope(&mut self) {
        self.scopes.pop();
    }

    fn scope_insert(
        &mut self,
        name: String,
        slot: LocalId,
        span: Span,
    ) -> Result<(), CompileError> {
        let top = self.scopes.last_mut().expect("scope stack non-empty");
        if top.insert(name.clone(), slot).is_some() {
            return Err(CompileError::new(
                span,
                format!("variable `{name}` already declared in this scope"),
            ));
        }
        Ok(())
    }

    fn lookup_local(&self, name: &str) -> Option<LocalId> {
        for s in self.scopes.iter().rev() {
            if let Some(&l) = s.get(name) {
                return Some(l);
            }
        }
        None
    }

    fn new_local(&mut self, name: String, ty: Ty) -> LocalId {
        let slot = self.locals.len();
        self.locals.push(Local { name, ty });
        slot
    }

    fn new_temp(&mut self, ty: Ty) -> LocalId {
        self.new_local(format!("$t{}", self.locals.len()), ty)
    }

    fn enter_loop(&mut self) {
        let label = self.pending_label.take();
        self.loop_labels.push(label);
    }

    fn exit_loop(&mut self) {
        self.loop_labels.pop();
    }

    /// Resolves a `break`/`continue` target to an enclosing-loop index
    /// (0 = innermost).
    fn resolve_loop(
        &self,
        label: Option<&str>,
        what: &str,
        span: Span,
    ) -> Result<usize, CompileError> {
        if self.loop_labels.is_empty() {
            return Err(CompileError::new(span, format!("`{what}` outside a loop")));
        }
        match label {
            None => Ok(0),
            Some(l) => self
                .loop_labels
                .iter()
                .rev()
                .position(|x| x.as_deref() == Some(l))
                .ok_or_else(|| CompileError::new(span, format!("unknown label `{l}`"))),
        }
    }

    fn this_expr(&self, span: Span) -> Result<Expr, CompileError> {
        if self.is_static {
            return Err(CompileError::new(span, "`this` in static context"));
        }
        Ok(Expr {
            ty: Ty::Ref(self.class),
            kind: ExprKind::Local(0),
        })
    }

    // ------------------------------------------------------ statements

    fn block(&mut self, stmts: &[AStmt], out: &mut Vec<Stmt>) -> Result<(), CompileError> {
        // Reject statements after an abruptly-terminating one (javac's
        // unreachable-code rule, which SafeTSA's empty-unreachable-block
        // verifier rule relies on).
        for (i, s) in stmts.iter().enumerate() {
            let before = out.len();
            self.stmt(s, out)?;
            let added = &out[before..];
            if !added.is_empty() && !stmts_complete_normally(added) && i + 1 != stmts.len() {
                // Find span of the next statement for the error message.
                return Err(CompileError::new(
                    stmt_span(&stmts[i + 1]),
                    "unreachable statement",
                ));
            }
        }
        Ok(())
    }

    fn stmt(&mut self, s: &AStmt, out: &mut Vec<Stmt>) -> Result<(), CompileError> {
        match s {
            AStmt::Empty => {}
            AStmt::Block(inner) => {
                self.push_scope();
                let r = self.block(inner, out);
                self.pop_scope();
                r?;
            }
            AStmt::Local {
                ty,
                name,
                init,
                span,
            } => {
                let ty = resolve_type(self.names, ty, *span)?;
                let value = match init {
                    Some(e) => self.expr_expect(e, &ty)?,
                    None => default_value(&ty),
                };
                let slot = self.new_local(name.clone(), ty.clone());
                self.scope_insert(name.clone(), slot, *span)?;
                out.push(Stmt::Expr(Expr {
                    ty,
                    kind: ExprKind::AssignLocal {
                        local: slot,
                        value: Box::new(value),
                    },
                }));
            }
            AStmt::Expr(e) => {
                let he = self.stmt_expr(e)?;
                out.push(Stmt::Expr(he));
            }
            AStmt::If { cond, then, els } => {
                let c = self.expr_expect(cond, &Ty::BOOL)?;
                let mut t = Vec::new();
                self.push_scope();
                self.stmt(then, &mut t)?;
                self.pop_scope();
                let mut e = Vec::new();
                if let Some(els) = els {
                    self.push_scope();
                    self.stmt(els, &mut e)?;
                    self.pop_scope();
                }
                out.push(Stmt::If {
                    cond: c,
                    then: t,
                    els: e,
                });
            }
            AStmt::While { cond, body } => {
                let c = self.expr_expect(cond, &Ty::BOOL)?;
                let mut b = Vec::new();
                self.push_scope();
                self.enter_loop();
                let r = self.stmt(body, &mut b);
                self.exit_loop();
                self.pop_scope();
                r?;
                out.push(Stmt::While { cond: c, body: b });
            }
            AStmt::Do { body, cond } => {
                let mut b = Vec::new();
                self.push_scope();
                self.enter_loop();
                let r = self.stmt(body, &mut b);
                self.exit_loop();
                self.pop_scope();
                r?;
                let c = self.expr_expect(cond, &Ty::BOOL)?;
                out.push(Stmt::DoWhile { body: b, cond: c });
            }
            AStmt::For {
                init,
                cond,
                update,
                body,
            } => {
                self.push_scope();
                for i in init {
                    self.stmt(i, out)?;
                }
                let c = match cond {
                    Some(e) => Some(self.expr_expect(e, &Ty::BOOL)?),
                    None => None,
                };
                self.enter_loop();
                let mut b = Vec::new();
                self.push_scope();
                let r = self.stmt(body, &mut b);
                self.pop_scope();
                let u = match r {
                    Ok(()) => update
                        .iter()
                        .map(|e| self.stmt_expr(e))
                        .collect::<Result<Vec<_>, _>>(),
                    Err(e) => Err(e),
                };
                self.exit_loop();
                let u = u?;
                self.pop_scope();
                out.push(Stmt::For {
                    cond: c,
                    update: u,
                    body: b,
                });
            }
            AStmt::Break(label, span) => {
                let depth = self.resolve_loop(label.as_deref(), "break", *span)?;
                out.push(Stmt::Break { depth });
            }
            AStmt::Continue(label, span) => {
                let depth = self.resolve_loop(label.as_deref(), "continue", *span)?;
                out.push(Stmt::Continue { depth });
            }
            AStmt::Return(v, span) => match (v, self.ret.clone()) {
                (None, Ty::Void) => out.push(Stmt::Return(None)),
                (Some(_), Ty::Void) => {
                    return Err(CompileError::new(*span, "void method returns a value"))
                }
                (None, _) => return Err(CompileError::new(*span, "missing return value")),
                (Some(e), want) => {
                    let he = self.expr_expect(e, &want)?;
                    out.push(Stmt::Return(Some(he)));
                }
            },
            AStmt::Throw(e) => {
                let he = self.expr(e)?;
                match &he.ty {
                    Ty::Ref(c) if self.prog.is_subclass(*c, self.prog.throwable) => {}
                    _ => {
                        return Err(CompileError::new(
                            e.span,
                            "throw operand must be a Throwable",
                        ))
                    }
                }
                out.push(Stmt::Throw(he));
            }
            AStmt::Try {
                body,
                catches,
                finally,
            } => {
                self.push_scope();
                let mut b = Vec::new();
                self.block(body, &mut b)?;
                self.pop_scope();
                let mut cs = Vec::new();
                for c in catches {
                    let class = *self.names.get(&c.class).ok_or_else(|| {
                        CompileError::new(c.span, format!("unknown class `{}`", c.class))
                    })?;
                    if !self.prog.is_subclass(class, self.prog.throwable) {
                        return Err(CompileError::new(
                            c.span,
                            format!("`{}` is not a Throwable", c.class),
                        ));
                    }
                    self.push_scope();
                    let slot = self.new_local(c.var.clone(), Ty::Ref(class));
                    self.scope_insert(c.var.clone(), slot, c.span)?;
                    let mut cb = Vec::new();
                    self.block(&c.body, &mut cb)?;
                    self.pop_scope();
                    cs.push(Catch {
                        class,
                        local: slot,
                        body: cb,
                    });
                }
                let fin = match finally {
                    Some(f) => {
                        self.push_scope();
                        let mut fb = Vec::new();
                        self.block(f, &mut fb)?;
                        self.pop_scope();
                        Some(fb)
                    }
                    None => None,
                };
                match fin {
                    None => out.push(Stmt::Try {
                        body: b,
                        catches: cs,
                        finally: None,
                    }),
                    Some(fin) => {
                        // Desugar try/finally by duplication:
                        //   try { try {B} catch(arms) }
                        //   catch (Throwable $t) { F; throw $t; }
                        //   F
                        // Abrupt exits (break/continue/return) out of the
                        // protected region would bypass F, so they are
                        // rejected (documented subset restriction).
                        let span = stmt_span(s);
                        if exits_region(&b) || cs.iter().any(|c| exits_region(&c.body)) {
                            return Err(CompileError::new(
                                span,
                                "unsupported: break/continue/return out of a try with finally",
                            ));
                        }
                        let inner = if cs.is_empty() {
                            b
                        } else {
                            vec![Stmt::Try {
                                body: b,
                                catches: cs,
                                finally: None,
                            }]
                        };
                        let thr = self.prog.throwable;
                        let slot = self.new_local("$fin".into(), Ty::Ref(thr));
                        let mut handler = fin.clone();
                        handler.push(Stmt::Throw(Expr {
                            ty: Ty::Ref(thr),
                            kind: ExprKind::Local(slot),
                        }));
                        out.push(Stmt::Try {
                            body: inner,
                            catches: vec![Catch {
                                class: thr,
                                local: slot,
                                body: handler,
                            }],
                            finally: None,
                        });
                        out.extend(fin);
                    }
                }
            }
            AStmt::Labeled { name, body, span } => {
                if self.loop_labels.iter().flatten().any(|l| l == name) {
                    return Err(CompileError::new(
                        *span,
                        format!("label `{name}` already in scope"),
                    ));
                }
                match body.as_ref() {
                    AStmt::While { .. } | AStmt::Do { .. } | AStmt::For { .. } => {}
                    _ => {
                        return Err(CompileError::new(
                            *span,
                            "labels are only supported on loops",
                        ))
                    }
                }
                self.pending_label = Some(name.clone());
                self.stmt(body, out)?;
                debug_assert!(self.pending_label.is_none(), "loop consumed the label");
            }
            AStmt::SuperCall(_, span) => {
                return Err(CompileError::new(
                    *span,
                    "super(...) only allowed as the first statement of a constructor",
                ))
            }
        }
        Ok(())
    }

    /// Checks an expression used as a statement; postfix `++`/`--` and
    /// plain assignments skip the value-preserving temporaries.
    fn stmt_expr(&mut self, e: &ast::Expr) -> Result<Expr, CompileError> {
        if let AK::IncDec { target, inc, .. } = &e.kind {
            // Statement context: value unused → treat as prefix.
            let pre = ast::Expr {
                kind: AK::IncDec {
                    target: target.clone(),
                    inc: *inc,
                    prefix: true,
                },
                span: e.span,
            };
            return self.expr(&pre);
        }
        self.expr(e)
    }

    // ----------------------------------------------------- expressions

    fn expr_expect(&mut self, e: &ast::Expr, want: &Ty) -> Result<Expr, CompileError> {
        let he = self.expr(e)?;
        self.convert(he, want, e.span)
    }

    /// Implicit (assignment) conversion of `e` to `want`.
    fn convert(&mut self, e: Expr, want: &Ty, span: Span) -> Result<Expr, CompileError> {
        if &e.ty == want {
            return Ok(e);
        }
        // Constant narrowing: int literal to char.
        if let (ExprKind::Lit(Lit::Int(v)), Ty::Prim(PrimTy::Char)) = (&e.kind, want) {
            if (0..=0xFFFF).contains(v) {
                return Ok(Expr {
                    ty: want.clone(),
                    kind: ExprKind::Lit(Lit::Char(*v as u16)),
                });
            }
        }
        match (e.ty.clone(), want) {
            (Ty::Prim(a), Ty::Prim(b)) if widens(a, *b) => Ok(self.emit_conv(e, a, *b)),
            _ if self.prog.ref_assignable(&e.ty, want) => {
                let checked = false;
                Ok(Expr {
                    ty: want.clone(),
                    kind: ExprKind::CastRef {
                        target: want.clone(),
                        expr: Box::new(e),
                        checked,
                    },
                })
            }
            _ => Err(CompileError::new(
                span,
                format!("cannot convert `{}` to `{}`", e.ty, want),
            )),
        }
    }

    /// Builds the (possibly multi-step) primitive conversion chain.
    fn emit_conv(&self, e: Expr, from: PrimTy, to: PrimTy) -> Expr {
        if from == to {
            return e;
        }
        let path = conv_path(from, to).expect("conversion path exists");
        let mut cur = e;
        let mut cur_ty = from;
        for step in path {
            cur = Expr {
                ty: Ty::Prim(step),
                kind: ExprKind::Conv {
                    from: cur_ty,
                    to: step,
                    expr: Box::new(cur),
                },
            };
            cur_ty = step;
        }
        cur
    }

    fn expr(&mut self, e: &ast::Expr) -> Result<Expr, CompileError> {
        let span = e.span;
        match &e.kind {
            AK::IntLit(v) => {
                if *v < i32::MIN as i64 || *v > i32::MAX as i64 {
                    return Err(CompileError::new(span, "int literal out of range"));
                }
                Ok(Expr {
                    ty: Ty::INT,
                    kind: ExprKind::Lit(Lit::Int(*v as i32)),
                })
            }
            AK::LongLit(v) => Ok(Expr {
                ty: Ty::Prim(PrimTy::Long),
                kind: ExprKind::Lit(Lit::Long(*v)),
            }),
            AK::FloatLit(v) => Ok(Expr {
                ty: Ty::Prim(PrimTy::Float),
                kind: ExprKind::Lit(Lit::Float(*v)),
            }),
            AK::DoubleLit(v) => Ok(Expr {
                ty: Ty::Prim(PrimTy::Double),
                kind: ExprKind::Lit(Lit::Double(*v)),
            }),
            AK::CharLit(v) => Ok(Expr {
                ty: Ty::Prim(PrimTy::Char),
                kind: ExprKind::Lit(Lit::Char(*v)),
            }),
            AK::StrLit(s) => Ok(Expr {
                ty: Ty::Ref(self.prog.string),
                kind: ExprKind::Lit(Lit::Str(s.clone())),
            }),
            AK::BoolLit(b) => Ok(Expr {
                ty: Ty::BOOL,
                kind: ExprKind::Lit(Lit::Bool(*b)),
            }),
            AK::Null => Ok(Expr {
                ty: Ty::Null,
                kind: ExprKind::Lit(Lit::Null),
            }),
            AK::This => self.this_expr(span),
            AK::Name(n) => self.name(n, span),
            AK::FieldAccess { obj, name } => self.field_access(obj, name, span),
            AK::Index { arr, idx } => {
                let a = self.expr(arr)?;
                let elem = match &a.ty {
                    Ty::Array(e) => (**e).clone(),
                    t => return Err(CompileError::new(span, format!("indexing non-array `{t}`"))),
                };
                let i = self.index_expr(idx)?;
                Ok(Expr {
                    ty: elem,
                    kind: ExprKind::GetElem {
                        arr: Box::new(a),
                        idx: Box::new(i),
                    },
                })
            }
            AK::CallUnqualified { name, args } => {
                let arg_exprs = args
                    .iter()
                    .map(|a| self.expr(a))
                    .collect::<Result<Vec<_>, _>>()?;
                let (mc, mm, cargs) =
                    self.resolve_overload(self.class, name, arg_exprs, span, false)?;
                let meta = self.prog.method(mc, mm);
                match meta.kind {
                    MethodKind::Static => Ok(Expr {
                        ty: meta.ret.clone(),
                        kind: ExprKind::CallStatic {
                            class: mc,
                            method: mm,
                            args: cargs,
                        },
                    }),
                    MethodKind::Virtual => {
                        let recv = self.this_expr(span)?;
                        Ok(Expr {
                            ty: meta.ret.clone(),
                            kind: ExprKind::CallVirtual {
                                class: mc,
                                method: mm,
                                recv: Box::new(recv),
                                args: cargs,
                            },
                        })
                    }
                    MethodKind::Special => Err(CompileError::new(
                        span,
                        "cannot call a constructor directly",
                    )),
                }
            }
            AK::CallQualified { recv, name, args } => self.call_qualified(recv, name, args, span),
            AK::New { class, args } => {
                let c = *self
                    .names
                    .get(class)
                    .ok_or_else(|| CompileError::new(span, format!("unknown class `{class}`")))?;
                if matches!(
                    self.prog.class(c).name.as_str(),
                    "Math" | "Sys" | "String" | "Object"
                ) && self.prog.class(c).name != "Object"
                {
                    return Err(CompileError::new(
                        span,
                        format!("cannot instantiate `{class}`"),
                    ));
                }
                let arg_exprs = args
                    .iter()
                    .map(|a| self.expr(a))
                    .collect::<Result<Vec<_>, _>>()?;
                let (mc, mm, cargs) = self.resolve_overload(c, "<init>", arg_exprs, span, true)?;
                if mc != c {
                    return Err(CompileError::new(
                        span,
                        format!("no matching constructor in `{class}`"),
                    ));
                }
                Ok(Expr {
                    ty: Ty::Ref(c),
                    kind: ExprKind::New {
                        class: c,
                        ctor: mm,
                        args: cargs,
                    },
                })
            }
            AK::NewArray {
                elem,
                len,
                extra_dims,
            } => {
                let mut ety = resolve_type(self.names, elem, span)?;
                for _ in 0..*extra_dims {
                    ety = Ty::Array(Box::new(ety));
                }
                let l = self.index_expr(len)?;
                Ok(Expr {
                    ty: Ty::Array(Box::new(ety.clone())),
                    kind: ExprKind::NewArray {
                        elem: ety,
                        len: Box::new(l),
                    },
                })
            }
            AK::ArrayLit { elem, elems } => {
                let ety = match elem {
                    Some(t) => resolve_type(self.names, t, span)?,
                    None => {
                        return Err(CompileError::new(
                            span,
                            "array initializer needs a declared array type",
                        ))
                    }
                };
                let mut hs = Vec::new();
                for el in elems {
                    // Nested `{...}` literals get the element type pushed in.
                    let he = match (&el.kind, &ety) {
                        (AK::ArrayLit { elem: None, elems }, Ty::Array(inner)) => {
                            let lit = ast::Expr {
                                kind: AK::ArrayLit {
                                    elem: Some(ty_to_typeref(inner)),
                                    elems: elems.clone(),
                                },
                                span: el.span,
                            };
                            self.expr(&lit)?
                        }
                        _ => self.expr(el)?,
                    };
                    hs.push(self.convert(he, &ety, el.span)?);
                }
                Ok(Expr {
                    ty: Ty::Array(Box::new(ety.clone())),
                    kind: ExprKind::ArrayLit {
                        elem: ety,
                        elems: hs,
                    },
                })
            }
            AK::Unary { op, expr } => self.unary(*op, expr, span),
            AK::Binary { op, l, r } => self.binary(*op, l, r, span),
            AK::Assign { target, op, value } => self.assign(target, *op, value, span),
            AK::IncDec {
                target,
                inc,
                prefix,
            } => self.inc_dec(target, *inc, *prefix, span),
            AK::Cast { ty, expr } => {
                let target = resolve_type(self.names, ty, span)?;
                let he = self.expr(expr)?;
                self.explicit_cast(he, target, span)
            }
            AK::InstanceOf { expr, ty } => {
                let he = self.expr(expr)?;
                if !he.ty.is_ref() {
                    return Err(CompileError::new(span, "instanceof on non-reference"));
                }
                let target = resolve_type(self.names, ty, span)?;
                if !target.is_ref() {
                    return Err(CompileError::new(span, "instanceof against non-reference"));
                }
                Ok(Expr {
                    ty: Ty::BOOL,
                    kind: ExprKind::InstanceOf {
                        expr: Box::new(he),
                        target,
                    },
                })
            }
            AK::Cond { cond, then, els } => {
                let c = self.expr_expect(cond, &Ty::BOOL)?;
                let t = self.expr(then)?;
                let e2 = self.expr(els)?;
                let (t, e2, ty) = self.unify_branches(t, e2, span)?;
                Ok(Expr {
                    ty,
                    kind: ExprKind::Cond {
                        cond: Box::new(c),
                        then: Box::new(t),
                        els: Box::new(e2),
                    },
                })
            }
        }
    }

    /// Converts an index/length expression to `int` (char widens).
    fn index_expr(&mut self, e: &ast::Expr) -> Result<Expr, CompileError> {
        let he = self.expr(e)?;
        match he.ty.prim() {
            Some(PrimTy::Int) => Ok(he),
            Some(PrimTy::Char) => Ok(self.emit_conv(he, PrimTy::Char, PrimTy::Int)),
            _ => Err(CompileError::new(
                e.span,
                format!("index/length must be int, found `{}`", he.ty),
            )),
        }
    }

    fn name(&mut self, n: &str, span: Span) -> Result<Expr, CompileError> {
        if let Some(slot) = self.lookup_local(n) {
            return Ok(Expr {
                ty: self.locals[slot].ty.clone(),
                kind: ExprKind::Local(slot),
            });
        }
        if let Some((c, f)) = self.prog.find_field(self.class, n) {
            let field = self.prog.field(c, f);
            if field.is_static {
                return Ok(Expr {
                    ty: field.ty.clone(),
                    kind: ExprKind::GetStatic { class: c, field: f },
                });
            }
            let this = self.this_expr(span)?;
            return Ok(Expr {
                ty: field.ty.clone(),
                kind: ExprKind::GetField {
                    obj: Box::new(this),
                    class: c,
                    field: f,
                },
            });
        }
        Err(CompileError::new(span, format!("unknown name `{n}`")))
    }

    fn field_access(
        &mut self,
        obj: &ast::Expr,
        name: &str,
        span: Span,
    ) -> Result<Expr, CompileError> {
        // `ClassName.field` — static access, unless a local shadows.
        if let AK::Name(qual) = &obj.kind {
            if self.lookup_local(qual).is_none() && self.prog.find_field(self.class, qual).is_none()
            {
                if let Some(&c) = self.names.get(qual) {
                    let (dc, f) = self.prog.find_field(c, name).ok_or_else(|| {
                        CompileError::new(span, format!("unknown field `{qual}.{name}`"))
                    })?;
                    let field = self.prog.field(dc, f);
                    if !field.is_static {
                        return Err(CompileError::new(
                            span,
                            format!("`{qual}.{name}` is not static"),
                        ));
                    }
                    return Ok(Expr {
                        ty: field.ty.clone(),
                        kind: ExprKind::GetStatic {
                            class: dc,
                            field: f,
                        },
                    });
                }
            }
        }
        let o = self.expr(obj)?;
        match &o.ty {
            Ty::Array(_) if name == "length" => Ok(Expr {
                ty: Ty::INT,
                kind: ExprKind::ArrayLen { arr: Box::new(o) },
            }),
            Ty::Ref(c) => {
                let (dc, f) = self
                    .prog
                    .find_field(*c, name)
                    .ok_or_else(|| CompileError::new(span, format!("unknown field `{name}`")))?;
                let field = self.prog.field(dc, f);
                if field.is_static {
                    return Ok(Expr {
                        ty: field.ty.clone(),
                        kind: ExprKind::GetStatic {
                            class: dc,
                            field: f,
                        },
                    });
                }
                Ok(Expr {
                    ty: field.ty.clone(),
                    kind: ExprKind::GetField {
                        obj: Box::new(o),
                        class: dc,
                        field: f,
                    },
                })
            }
            t => Err(CompileError::new(
                span,
                format!("field access on non-object `{t}`"),
            )),
        }
    }

    fn call_qualified(
        &mut self,
        recv: &ast::Expr,
        name: &str,
        args: &[ast::Expr],
        span: Span,
    ) -> Result<Expr, CompileError> {
        let arg_exprs = args
            .iter()
            .map(|a| self.expr(a))
            .collect::<Result<Vec<_>, _>>()?;
        // `ClassName.m(...)` — static call, unless a local shadows.
        if let AK::Name(qual) = &recv.kind {
            if self.lookup_local(qual).is_none() && self.prog.find_field(self.class, qual).is_none()
            {
                if let Some(&c) = self.names.get(qual) {
                    let (mc, mm, cargs) = self.resolve_overload(c, name, arg_exprs, span, false)?;
                    let meta = self.prog.method(mc, mm);
                    if meta.kind != MethodKind::Static {
                        return Err(CompileError::new(
                            span,
                            format!("`{qual}.{name}` is not static"),
                        ));
                    }
                    return Ok(Expr {
                        ty: meta.ret.clone(),
                        kind: ExprKind::CallStatic {
                            class: mc,
                            method: mm,
                            args: cargs,
                        },
                    });
                }
            }
        }
        let o = self.expr(recv)?;
        let c = match &o.ty {
            Ty::Ref(c) => *c,
            t => {
                return Err(CompileError::new(
                    span,
                    format!("method call on non-object `{t}`"),
                ))
            }
        };
        let (mc, mm, cargs) = self.resolve_overload(c, name, arg_exprs, span, false)?;
        let meta = self.prog.method(mc, mm);
        match meta.kind {
            MethodKind::Static => Err(CompileError::new(
                span,
                format!("`{name}` is static; call it on the class"),
            )),
            MethodKind::Virtual => Ok(Expr {
                ty: meta.ret.clone(),
                kind: ExprKind::CallVirtual {
                    class: mc,
                    method: mm,
                    recv: Box::new(o),
                    args: cargs,
                },
            }),
            MethodKind::Special => Err(CompileError::new(
                span,
                "cannot call a constructor directly",
            )),
        }
    }

    /// Overload resolution: filter applicable candidates, pick the most
    /// specific, and convert the arguments.
    fn resolve_overload(
        &mut self,
        class: ClassIdx,
        name: &str,
        args: Vec<Expr>,
        span: Span,
        ctors: bool,
    ) -> Result<(ClassIdx, MethodIdx, Vec<Expr>), CompileError> {
        let candidates: Vec<(ClassIdx, MethodIdx)> = if ctors {
            self.prog.classes[class]
                .methods
                .iter()
                .enumerate()
                .filter(|(_, m)| m.name == "<init>")
                .map(|(i, _)| (class, i))
                .collect()
        } else {
            self.prog.find_methods(class, name)
        };
        if candidates.is_empty() {
            return Err(CompileError::new(
                span,
                format!(
                    "unknown method `{name}` in `{}`",
                    self.prog.class(class).name
                ),
            ));
        }
        let arg_tys: Vec<Ty> = args.iter().map(|a| a.ty.clone()).collect();
        let applicable: Vec<(ClassIdx, MethodIdx)> = candidates
            .iter()
            .copied()
            .filter(|&(c, m)| {
                let meta = self.prog.method(c, m);
                meta.params.len() == arg_tys.len()
                    && meta
                        .params
                        .iter()
                        .zip(&arg_tys)
                        .all(|(p, a)| self.invocation_convertible(a, p))
            })
            .collect();
        if applicable.is_empty() {
            return Err(CompileError::new(
                span,
                format!(
                    "no applicable overload of `{name}` for ({})",
                    arg_tys
                        .iter()
                        .map(|t| t.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            ));
        }
        // Most specific: params of the winner convert to every other's.
        let mut best = applicable[0];
        for &cand in &applicable[1..] {
            if self.more_specific(cand, best) {
                best = cand;
            }
        }
        for &other in &applicable {
            if other != best && !self.more_specific(best, other) && self.more_specific(other, best)
            {
                return Err(CompileError::new(span, format!("ambiguous call `{name}`")));
            }
        }
        let meta = self.prog.method(best.0, best.1).clone();
        let mut converted = Vec::with_capacity(args.len());
        for (a, p) in args.into_iter().zip(&meta.params) {
            converted.push(self.convert(a, p, span)?);
        }
        Ok((best.0, best.1, converted))
    }

    fn invocation_convertible(&self, from: &Ty, to: &Ty) -> bool {
        if from == to {
            return true;
        }
        match (from, to) {
            (Ty::Prim(a), Ty::Prim(b)) => widens(*a, *b),
            _ => self.prog.ref_assignable(from, to),
        }
    }

    fn more_specific(&self, a: (ClassIdx, MethodIdx), b: (ClassIdx, MethodIdx)) -> bool {
        let ma = self.prog.method(a.0, a.1);
        let mb = self.prog.method(b.0, b.1);
        ma.params
            .iter()
            .zip(&mb.params)
            .all(|(x, y)| self.invocation_convertible(x, y))
    }

    fn unary(&mut self, op: ast::UnOp, expr: &ast::Expr, span: Span) -> Result<Expr, CompileError> {
        let he = self.expr(expr)?;
        match op {
            ast::UnOp::Not => {
                if he.ty != Ty::BOOL {
                    return Err(CompileError::new(span, "`!` needs a boolean"));
                }
                Ok(Expr {
                    ty: Ty::BOOL,
                    kind: ExprKind::Unary {
                        op: UnOp::Not,
                        prim: PrimTy::Bool,
                        expr: Box::new(he),
                    },
                })
            }
            ast::UnOp::Neg => {
                let p = self.unary_promote(he, span)?;
                let prim = p.ty.prim().expect("promoted to primitive");
                Ok(Expr {
                    ty: p.ty.clone(),
                    kind: ExprKind::Unary {
                        op: UnOp::Neg,
                        prim,
                        expr: Box::new(p),
                    },
                })
            }
            ast::UnOp::BitNot => {
                let p = self.unary_promote(he, span)?;
                let prim = p.ty.prim().expect("promoted to primitive");
                if !matches!(prim, PrimTy::Int | PrimTy::Long) {
                    return Err(CompileError::new(span, "`~` needs an integral operand"));
                }
                Ok(Expr {
                    ty: p.ty.clone(),
                    kind: ExprKind::Unary {
                        op: UnOp::BitNot,
                        prim,
                        expr: Box::new(p),
                    },
                })
            }
        }
    }

    /// Unary numeric promotion: char → int; others unchanged.
    fn unary_promote(&mut self, e: Expr, span: Span) -> Result<Expr, CompileError> {
        match e.ty.prim() {
            Some(PrimTy::Char) => Ok(self.emit_conv(e, PrimTy::Char, PrimTy::Int)),
            Some(PrimTy::Bool) | None => Err(CompileError::new(
                span,
                format!("numeric operation on `{}`", e.ty),
            )),
            Some(_) => Ok(e),
        }
    }

    fn binary(
        &mut self,
        op: ast::BinOp,
        l: &ast::Expr,
        r: &ast::Expr,
        span: Span,
    ) -> Result<Expr, CompileError> {
        use ast::BinOp as B;
        match op {
            B::AndAnd | B::OrOr => {
                let lh = self.expr_expect(l, &Ty::BOOL)?;
                let rh = self.expr_expect(r, &Ty::BOOL)?;
                let kind = if op == B::AndAnd {
                    ExprKind::And {
                        l: Box::new(lh),
                        r: Box::new(rh),
                    }
                } else {
                    ExprKind::Or {
                        l: Box::new(lh),
                        r: Box::new(rh),
                    }
                };
                return Ok(Expr { ty: Ty::BOOL, kind });
            }
            _ => {}
        }
        let lh = self.expr(l)?;
        let rh = self.expr(r)?;
        // String concatenation.
        if op == B::Add && (self.is_string(&lh.ty) || self.is_string(&rh.ty)) {
            let ls = self.stringify(lh, span)?;
            let rs = self.stringify(rh, span)?;
            return Ok(self.string_concat(ls, rs));
        }
        // Reference equality.
        if matches!(op, B::Eq | B::Ne) && lh.ty.is_ref() && rh.ty.is_ref() {
            let common = self.ref_lub(&lh.ty, &rh.ty, span)?;
            let lc = self.convert(lh, &common, span)?;
            let rc = self.convert(rh, &common, span)?;
            return Ok(Expr {
                ty: Ty::BOOL,
                kind: ExprKind::RefCmp {
                    l: Box::new(lc),
                    r: Box::new(rc),
                    eq: op == B::Eq,
                },
            });
        }
        // Boolean bit operations (&, |, ^, ==, !=).
        if lh.ty == Ty::BOOL && rh.ty == Ty::BOOL {
            let hop = match op {
                B::BitAnd => BinOp::BitAnd,
                B::BitOr => BinOp::BitOr,
                B::BitXor => BinOp::BitXor,
                B::Eq => BinOp::Eq,
                B::Ne => BinOp::Ne,
                _ => return Err(CompileError::new(span, "invalid boolean operation")),
            };
            return Ok(Expr {
                ty: Ty::BOOL,
                kind: ExprKind::Binary {
                    op: hop,
                    prim: PrimTy::Bool,
                    l: Box::new(lh),
                    r: Box::new(rh),
                },
            });
        }
        // Shifts promote each side independently.
        if matches!(op, B::Shl | B::Shr | B::Ushr) {
            let lp = self.unary_promote(lh, span)?;
            let prim = lp.ty.prim().unwrap();
            if !matches!(prim, PrimTy::Int | PrimTy::Long) {
                return Err(CompileError::new(span, "shift needs an integral operand"));
            }
            let rp = self.unary_promote(rh, span)?;
            let amount = match rp.ty.prim().unwrap() {
                PrimTy::Int => rp,
                PrimTy::Long => self.emit_conv(rp, PrimTy::Long, PrimTy::Int),
                _ => return Err(CompileError::new(span, "shift amount must be integral")),
            };
            let hop = match op {
                B::Shl => BinOp::Shl,
                B::Shr => BinOp::Shr,
                _ => BinOp::Ushr,
            };
            return Ok(Expr {
                ty: lp.ty.clone(),
                kind: ExprKind::Binary {
                    op: hop,
                    prim,
                    l: Box::new(lp),
                    r: Box::new(amount),
                },
            });
        }
        // Binary numeric promotion.
        let (lp, rp, prim) = self.binary_promote(lh, rh, span)?;
        let hop = match op {
            B::Add => BinOp::Add,
            B::Sub => BinOp::Sub,
            B::Mul => BinOp::Mul,
            B::Div => BinOp::Div,
            B::Rem => BinOp::Rem,
            B::BitAnd => BinOp::BitAnd,
            B::BitOr => BinOp::BitOr,
            B::BitXor => BinOp::BitXor,
            B::Eq => BinOp::Eq,
            B::Ne => BinOp::Ne,
            B::Lt => BinOp::Lt,
            B::Le => BinOp::Le,
            B::Gt => BinOp::Gt,
            B::Ge => BinOp::Ge,
            B::AndAnd | B::OrOr | B::Shl | B::Shr | B::Ushr => unreachable!(),
        };
        if matches!(hop, BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor)
            && !matches!(prim, PrimTy::Int | PrimTy::Long)
        {
            return Err(CompileError::new(
                span,
                "bit operation needs integral operands",
            ));
        }
        let ty = if hop.is_comparison() {
            Ty::BOOL
        } else {
            Ty::Prim(prim)
        };
        Ok(Expr {
            ty,
            kind: ExprKind::Binary {
                op: hop,
                prim,
                l: Box::new(lp),
                r: Box::new(rp),
            },
        })
    }

    fn binary_promote(
        &mut self,
        l: Expr,
        r: Expr,
        span: Span,
    ) -> Result<(Expr, Expr, PrimTy), CompileError> {
        let lp = self.unary_promote(l, span)?;
        let rp = self.unary_promote(r, span)?;
        let a = lp.ty.prim().unwrap();
        let b = rp.ty.prim().unwrap();
        let target = promote2(a, b);
        let lc = self.emit_conv(lp, a, target);
        let rc = self.emit_conv(rp, b, target);
        Ok((lc, rc, target))
    }

    fn is_string(&self, t: &Ty) -> bool {
        matches!(t, Ty::Ref(c) if *c == self.prog.string)
    }

    /// Converts any supported operand to `String` for concatenation.
    fn stringify(&mut self, e: Expr, span: Span) -> Result<Expr, CompileError> {
        if self.is_string(&e.ty) {
            return Ok(e);
        }
        let string_class = self.prog.string;
        let pick = |name: &str, want: Ty| -> Option<MethodIdx> {
            self.prog.classes[string_class]
                .methods
                .iter()
                .position(|m| m.name == name && m.params == vec![want.clone()])
        };
        let (want, idx) = match e.ty.prim() {
            Some(PrimTy::Int) => (Ty::INT, pick("valueOf", Ty::INT)),
            Some(PrimTy::Char) => (
                Ty::Prim(PrimTy::Char),
                pick("valueOf", Ty::Prim(PrimTy::Char)),
            ),
            Some(PrimTy::Long) => (
                Ty::Prim(PrimTy::Long),
                pick("valueOf", Ty::Prim(PrimTy::Long)),
            ),
            Some(PrimTy::Float) => {
                let w = self.emit_conv(e, PrimTy::Float, PrimTy::Double);
                return self.stringify(w, span);
            }
            Some(PrimTy::Double) => (
                Ty::Prim(PrimTy::Double),
                pick("valueOf", Ty::Prim(PrimTy::Double)),
            ),
            Some(PrimTy::Bool) => (Ty::BOOL, pick("valueOf", Ty::BOOL)),
            None => {
                return Err(CompileError::new(
                    span,
                    format!("cannot concatenate `{}` with a String", e.ty),
                ))
            }
        };
        let idx = idx.expect("String.valueOf overloads exist");
        Ok(Expr {
            ty: Ty::Ref(string_class),
            kind: ExprKind::CallStatic {
                class: string_class,
                method: idx,
                args: vec![Expr { ty: want, ..e }],
            },
        })
    }

    fn string_concat(&mut self, l: Expr, r: Expr) -> Expr {
        let string_class = self.prog.string;
        let concat = self.prog.classes[string_class]
            .methods
            .iter()
            .position(|m| m.name == "concat")
            .expect("String.concat exists");
        Expr {
            ty: Ty::Ref(string_class),
            kind: ExprKind::CallVirtual {
                class: string_class,
                method: concat,
                recv: Box::new(l),
                args: vec![r],
            },
        }
    }

    /// Least upper bound of two reference types (for `?:` and `==`).
    fn ref_lub(&self, a: &Ty, b: &Ty, span: Span) -> Result<Ty, CompileError> {
        if a == b {
            return Ok(a.clone());
        }
        match (a, b) {
            (Ty::Null, t) | (t, Ty::Null) if t.is_ref() => Ok(t.clone()),
            (Ty::Ref(x), Ty::Ref(y)) => {
                // Walk x's chain until it is a superclass of y.
                let mut cur = Some(*x);
                while let Some(c) = cur {
                    if self.prog.is_subclass(*y, c) {
                        return Ok(Ty::Ref(c));
                    }
                    cur = self.prog.classes[c].superclass;
                }
                Ok(Ty::Ref(self.prog.object))
            }
            (Ty::Array(_), Ty::Ref(_))
            | (Ty::Ref(_), Ty::Array(_))
            | (Ty::Array(_), Ty::Array(_)) => Ok(Ty::Ref(self.prog.object)),
            _ => Err(CompileError::new(span, "incompatible reference types")),
        }
    }

    fn unify_branches(
        &mut self,
        t: Expr,
        e: Expr,
        span: Span,
    ) -> Result<(Expr, Expr, Ty), CompileError> {
        if t.ty == e.ty {
            let ty = t.ty.clone();
            return Ok((t, e, ty));
        }
        if t.ty.is_numeric() && e.ty.is_numeric() {
            let a = t.ty.prim().unwrap();
            let b = e.ty.prim().unwrap();
            let target = promote2(a, b);
            let tc = self.emit_conv(t, a, target);
            let ec = self.emit_conv(e, b, target);
            return Ok((tc, ec, Ty::Prim(target)));
        }
        if t.ty.is_ref() && e.ty.is_ref() {
            let lub = self.ref_lub(&t.ty, &e.ty, span)?;
            let tc = self.convert(t, &lub, span)?;
            let ec = self.convert(e, &lub, span)?;
            return Ok((tc, ec, lub));
        }
        Err(CompileError::new(
            span,
            format!("incompatible branches `{}` and `{}`", t.ty, e.ty),
        ))
    }

    fn explicit_cast(&mut self, e: Expr, target: Ty, span: Span) -> Result<Expr, CompileError> {
        if e.ty == target {
            return Ok(e);
        }
        match (e.ty.clone(), &target) {
            (Ty::Prim(a), Ty::Prim(b)) => {
                if a == PrimTy::Bool || *b == PrimTy::Bool {
                    return Err(CompileError::new(span, "cannot cast boolean"));
                }
                Ok(self.emit_conv(e, a, *b))
            }
            (f, t) if f.is_ref() && t.is_ref() => {
                if self.prog.ref_assignable(&f, t) {
                    // Widening — no runtime check.
                    Ok(Expr {
                        ty: target.clone(),
                        kind: ExprKind::CastRef {
                            target,
                            expr: Box::new(e),
                            checked: false,
                        },
                    })
                } else if self.cast_possible(&f, t) {
                    Ok(Expr {
                        ty: target.clone(),
                        kind: ExprKind::CastRef {
                            target,
                            expr: Box::new(e),
                            checked: true,
                        },
                    })
                } else {
                    Err(CompileError::new(
                        span,
                        format!("impossible cast from `{f}` to `{t}`"),
                    ))
                }
            }
            (f, t) => Err(CompileError::new(
                span,
                format!("cannot cast `{f}` to `{t}`"),
            )),
        }
    }

    /// Whether a checked cast could succeed at runtime.
    fn cast_possible(&self, from: &Ty, to: &Ty) -> bool {
        match (from, to) {
            (Ty::Null, _) => true,
            (Ty::Ref(a), Ty::Ref(b)) => {
                self.prog.is_subclass(*a, *b) || self.prog.is_subclass(*b, *a)
            }
            (Ty::Ref(a), Ty::Array(_)) => *a == self.prog.object,
            (Ty::Array(_), Ty::Ref(b)) => *b == self.prog.object,
            (Ty::Array(_), Ty::Array(_)) => from == to,
            _ => false,
        }
    }

    // --------------------------------------------- assignment desugar

    fn assign(
        &mut self,
        target: &ast::Expr,
        op: Option<ast::BinOp>,
        value: &ast::Expr,
        span: Span,
    ) -> Result<Expr, CompileError> {
        match &target.kind {
            AK::Name(_) | AK::This | AK::FieldAccess { .. } | AK::Index { .. } => {}
            _ => return Err(CompileError::new(span, "invalid assignment target")),
        }
        match op {
            None => {
                let place = self.place(target, span)?;
                let want = place.ty(self);
                let v = self.expr_expect(value, &want)?;
                Ok(place.store(self, v))
            }
            Some(op) => {
                // `t op= v`  ⇒  evaluate subparts once, then
                // `t = (T)(t op v)` with the implicit narrowing cast.
                let (place, mut effects) = self.place_once(target, span)?;
                let want = place.ty(self);
                let cur = place.load(self);
                let combined = self.binary_h(op, cur, value, span)?;
                let narrowed = self.assign_op_cast(combined, &want, span)?;
                let stored = place.store(self, narrowed);
                if effects.is_empty() {
                    Ok(stored)
                } else {
                    let ty = stored.ty.clone();
                    effects.push(stored);
                    let result = effects.pop().unwrap();
                    Ok(Expr {
                        ty,
                        kind: ExprKind::Seq {
                            effects,
                            result: Box::new(result),
                        },
                    })
                }
            }
        }
    }

    /// Binary where the left side is already checked.
    fn binary_h(
        &mut self,
        op: ast::BinOp,
        l: Expr,
        r: &ast::Expr,
        span: Span,
    ) -> Result<Expr, CompileError> {
        use ast::BinOp as B;
        let rh = self.expr(r)?;
        if op == B::Add && (self.is_string(&l.ty) || self.is_string(&rh.ty)) {
            let ls = self.stringify(l, span)?;
            let rs = self.stringify(rh, span)?;
            return Ok(self.string_concat(ls, rs));
        }
        if matches!(op, B::Shl | B::Shr | B::Ushr) {
            let lp = self.unary_promote(l, span)?;
            let prim = lp.ty.prim().unwrap();
            let rp = self.unary_promote(rh, span)?;
            let amount = match rp.ty.prim().unwrap() {
                PrimTy::Long => self.emit_conv(rp, PrimTy::Long, PrimTy::Int),
                _ => rp,
            };
            let hop = match op {
                B::Shl => BinOp::Shl,
                B::Shr => BinOp::Shr,
                _ => BinOp::Ushr,
            };
            return Ok(Expr {
                ty: lp.ty.clone(),
                kind: ExprKind::Binary {
                    op: hop,
                    prim,
                    l: Box::new(lp),
                    r: Box::new(amount),
                },
            });
        }
        if l.ty == Ty::BOOL && rh.ty == Ty::BOOL {
            let hop = match op {
                B::BitAnd => BinOp::BitAnd,
                B::BitOr => BinOp::BitOr,
                B::BitXor => BinOp::BitXor,
                _ => return Err(CompileError::new(span, "invalid boolean operation")),
            };
            return Ok(Expr {
                ty: Ty::BOOL,
                kind: ExprKind::Binary {
                    op: hop,
                    prim: PrimTy::Bool,
                    l: Box::new(l),
                    r: Box::new(rh),
                },
            });
        }
        let (lp, rp, prim) = self.binary_promote(l, rh, span)?;
        let hop = match op {
            B::Add => BinOp::Add,
            B::Sub => BinOp::Sub,
            B::Mul => BinOp::Mul,
            B::Div => BinOp::Div,
            B::Rem => BinOp::Rem,
            B::BitAnd => BinOp::BitAnd,
            B::BitOr => BinOp::BitOr,
            B::BitXor => BinOp::BitXor,
            _ => return Err(CompileError::new(span, "invalid compound operator")),
        };
        Ok(Expr {
            ty: Ty::Prim(prim),
            kind: ExprKind::Binary {
                op: hop,
                prim,
                l: Box::new(lp),
                r: Box::new(rp),
            },
        })
    }

    /// Implicit narrowing for compound assignment (`int += double`).
    fn assign_op_cast(&mut self, e: Expr, want: &Ty, span: Span) -> Result<Expr, CompileError> {
        if &e.ty == want {
            return Ok(e);
        }
        match (e.ty.prim(), want.prim()) {
            (Some(a), Some(b)) if a != PrimTy::Bool && b != PrimTy::Bool => {
                Ok(self.emit_conv(e, a, b))
            }
            _ => self.convert(e, want, span),
        }
    }

    fn inc_dec(
        &mut self,
        target: &ast::Expr,
        inc: bool,
        prefix: bool,
        span: Span,
    ) -> Result<Expr, CompileError> {
        let (place, mut effects) = self.place_once(target, span)?;
        let want = place.ty(self);
        let prim = want
            .prim()
            .ok_or_else(|| CompileError::new(span, "++/-- needs a numeric variable"))?;
        if prim == PrimTy::Bool {
            return Err(CompileError::new(span, "++/-- needs a numeric variable"));
        }
        let one = match prim {
            PrimTy::Long => Expr {
                ty: Ty::Prim(PrimTy::Long),
                kind: ExprKind::Lit(Lit::Long(1)),
            },
            PrimTy::Float => Expr {
                ty: Ty::Prim(PrimTy::Float),
                kind: ExprKind::Lit(Lit::Float(1.0)),
            },
            PrimTy::Double => Expr {
                ty: Ty::Prim(PrimTy::Double),
                kind: ExprKind::Lit(Lit::Double(1.0)),
            },
            _ => Expr {
                ty: Ty::INT,
                kind: ExprKind::Lit(Lit::Int(1)),
            },
        };
        let op = if inc { BinOp::Add } else { BinOp::Sub };
        let cur = place.load(self);
        if prefix {
            // ++x : value is the new value.
            let (cp, op_prim) = match prim {
                PrimTy::Char => (self.emit_conv(cur, PrimTy::Char, PrimTy::Int), PrimTy::Int),
                p => (cur, p),
            };
            let newv = Expr {
                ty: Ty::Prim(op_prim),
                kind: ExprKind::Binary {
                    op,
                    prim: op_prim,
                    l: Box::new(cp),
                    r: Box::new(one),
                },
            };
            let newv = self.assign_op_cast(newv, &want, span)?;
            let stored = place.store(self, newv);
            if effects.is_empty() {
                Ok(stored)
            } else {
                let ty = stored.ty.clone();
                effects.push(stored.clone());
                let n = effects.len();
                let result = effects.remove(n - 1);
                Ok(Expr {
                    ty,
                    kind: ExprKind::Seq {
                        effects,
                        result: Box::new(result),
                    },
                })
            }
        } else {
            // x++ : value is the old value; stash it in a temp.
            let tmp = self.new_temp(want.clone());
            let save = Expr {
                ty: want.clone(),
                kind: ExprKind::AssignLocal {
                    local: tmp,
                    value: Box::new(cur),
                },
            };
            let old = Expr {
                ty: want.clone(),
                kind: ExprKind::Local(tmp),
            };
            let (cp, op_prim) = match prim {
                PrimTy::Char => (
                    self.emit_conv(old.clone(), PrimTy::Char, PrimTy::Int),
                    PrimTy::Int,
                ),
                p => (old.clone(), p),
            };
            let newv = Expr {
                ty: Ty::Prim(op_prim),
                kind: ExprKind::Binary {
                    op,
                    prim: op_prim,
                    l: Box::new(cp),
                    r: Box::new(one),
                },
            };
            let newv = self.assign_op_cast(newv, &want, span)?;
            let stored = place.store(self, newv);
            effects.push(save);
            effects.push(stored);
            Ok(Expr {
                ty: want,
                kind: ExprKind::Seq {
                    effects,
                    result: Box::new(old),
                },
            })
        }
    }

    /// Resolves an assignable place, evaluating sub-expressions directly
    /// (suitable for simple `=` where each part is evaluated once).
    fn place(&mut self, target: &ast::Expr, span: Span) -> Result<Place, CompileError> {
        let (p, effects) = self.place_once(target, span)?;
        // For simple assignment the temporaries are still fine; fold the
        // effects into the place by prefixing them at store time.
        Ok(if effects.is_empty() {
            p
        } else {
            Place::WithEffects(effects, Box::new(p))
        })
    }

    /// Resolves an assignable place; sub-expressions with side effects
    /// are hoisted into temporaries returned as `effects`.
    fn place_once(
        &mut self,
        target: &ast::Expr,
        span: Span,
    ) -> Result<(Place, Vec<Expr>), CompileError> {
        match &target.kind {
            AK::Name(n) => {
                if let Some(slot) = self.lookup_local(n) {
                    return Ok((Place::Local(slot), vec![]));
                }
                if let Some((c, f)) = self.prog.find_field(self.class, n) {
                    if self.prog.field(c, f).is_static {
                        return Ok((Place::Static(c, f), vec![]));
                    }
                    let this = self.this_expr(span)?;
                    return Ok((Place::Field(Box::new(this), c, f), vec![]));
                }
                Err(CompileError::new(span, format!("unknown name `{n}`")))
            }
            AK::FieldAccess { obj, name } => {
                // Class-qualified static?
                if let AK::Name(qual) = &obj.kind {
                    if self.lookup_local(qual).is_none()
                        && self.prog.find_field(self.class, qual).is_none()
                    {
                        if let Some(&c) = self.names.get(qual) {
                            let (dc, f) = self.prog.find_field(c, name).ok_or_else(|| {
                                CompileError::new(span, format!("unknown field `{qual}.{name}`"))
                            })?;
                            if !self.prog.field(dc, f).is_static {
                                return Err(CompileError::new(
                                    span,
                                    format!("`{qual}.{name}` is not static"),
                                ));
                            }
                            return Ok((Place::Static(dc, f), vec![]));
                        }
                    }
                }
                let o = self.expr(obj)?;
                let c = match &o.ty {
                    Ty::Ref(c) => *c,
                    t => {
                        return Err(CompileError::new(
                            span,
                            format!("field assignment on non-object `{t}`"),
                        ))
                    }
                };
                let (dc, f) = self
                    .prog
                    .find_field(c, name)
                    .ok_or_else(|| CompileError::new(span, format!("unknown field `{name}`")))?;
                if self.prog.field(dc, f).is_static {
                    return Ok((Place::Static(dc, f), vec![]));
                }
                // Hoist the receiver into a temp if it is not trivial.
                if matches!(o.kind, ExprKind::Local(_)) {
                    Ok((Place::Field(Box::new(o), dc, f), vec![]))
                } else {
                    let tmp = self.new_temp(o.ty.clone());
                    let save = Expr {
                        ty: o.ty.clone(),
                        kind: ExprKind::AssignLocal {
                            local: tmp,
                            value: Box::new(o.clone()),
                        },
                    };
                    let obj = Expr {
                        ty: o.ty,
                        kind: ExprKind::Local(tmp),
                    };
                    Ok((Place::Field(Box::new(obj), dc, f), vec![save]))
                }
            }
            AK::Index { arr, idx } => {
                let a = self.expr(arr)?;
                if !matches!(a.ty, Ty::Array(_)) {
                    return Err(CompileError::new(span, "indexing non-array"));
                }
                let i = self.index_expr(idx)?;
                let mut effects = Vec::new();
                let a = if matches!(a.kind, ExprKind::Local(_)) {
                    a
                } else {
                    let tmp = self.new_temp(a.ty.clone());
                    effects.push(Expr {
                        ty: a.ty.clone(),
                        kind: ExprKind::AssignLocal {
                            local: tmp,
                            value: Box::new(a.clone()),
                        },
                    });
                    Expr {
                        ty: a.ty,
                        kind: ExprKind::Local(tmp),
                    }
                };
                let i = if matches!(i.kind, ExprKind::Local(_) | ExprKind::Lit(_)) {
                    i
                } else {
                    let tmp = self.new_temp(Ty::INT);
                    effects.push(Expr {
                        ty: Ty::INT,
                        kind: ExprKind::AssignLocal {
                            local: tmp,
                            value: Box::new(i.clone()),
                        },
                    });
                    Expr {
                        ty: Ty::INT,
                        kind: ExprKind::Local(tmp),
                    }
                };
                Ok((Place::Elem(Box::new(a), Box::new(i)), effects))
            }
            _ => Err(CompileError::new(span, "invalid assignment target")),
        }
    }
}

/// An assignable location.
enum Place {
    Local(LocalId),
    Static(ClassIdx, FieldIdx),
    Field(Box<Expr>, ClassIdx, FieldIdx),
    Elem(Box<Expr>, Box<Expr>),
    WithEffects(Vec<Expr>, Box<Place>),
}

impl Place {
    fn ty(&self, ctx: &Ctx<'_>) -> Ty {
        match self {
            Place::Local(l) => ctx.locals[*l].ty.clone(),
            Place::Static(c, f) | Place::Field(_, c, f) => ctx.prog.field(*c, *f).ty.clone(),
            Place::Elem(a, _) => match &a.ty {
                Ty::Array(e) => (**e).clone(),
                _ => unreachable!("checked array"),
            },
            Place::WithEffects(_, p) => p.ty(ctx),
        }
    }

    fn load(&self, ctx: &Ctx<'_>) -> Expr {
        let ty = self.ty(ctx);
        match self {
            Place::Local(l) => Expr {
                ty,
                kind: ExprKind::Local(*l),
            },
            Place::Static(c, f) => Expr {
                ty,
                kind: ExprKind::GetStatic {
                    class: *c,
                    field: *f,
                },
            },
            Place::Field(o, c, f) => Expr {
                ty,
                kind: ExprKind::GetField {
                    obj: o.clone(),
                    class: *c,
                    field: *f,
                },
            },
            Place::Elem(a, i) => Expr {
                ty,
                kind: ExprKind::GetElem {
                    arr: a.clone(),
                    idx: i.clone(),
                },
            },
            Place::WithEffects(_, p) => p.load(ctx),
        }
    }

    fn store(&self, ctx: &mut Ctx<'_>, v: Expr) -> Expr {
        let ty = self.ty(ctx);
        match self {
            Place::Local(l) => Expr {
                ty,
                kind: ExprKind::AssignLocal {
                    local: *l,
                    value: Box::new(v),
                },
            },
            Place::Static(c, f) => Expr {
                ty,
                kind: ExprKind::SetStatic {
                    class: *c,
                    field: *f,
                    value: Box::new(v),
                },
            },
            Place::Field(o, c, f) => Expr {
                ty,
                kind: ExprKind::SetField {
                    obj: o.clone(),
                    class: *c,
                    field: *f,
                    value: Box::new(v),
                },
            },
            Place::Elem(a, i) => Expr {
                ty,
                kind: ExprKind::SetElem {
                    arr: a.clone(),
                    idx: i.clone(),
                    value: Box::new(v),
                },
            },
            Place::WithEffects(effects, p) => {
                let inner = p.store(ctx, v);
                let ty = inner.ty.clone();
                Expr {
                    ty,
                    kind: ExprKind::Seq {
                        effects: effects.clone(),
                        result: Box::new(inner),
                    },
                }
            }
        }
    }
}

// ------------------------------------------------------------ helpers

/// Whether `from` widens to `to` (Java widening primitive conversion).
pub fn widens(from: PrimTy, to: PrimTy) -> bool {
    use PrimTy::*;
    matches!(
        (from, to),
        (Char, Int)
            | (Char, Long)
            | (Char, Float)
            | (Char, Double)
            | (Int, Long)
            | (Int, Float)
            | (Int, Double)
            | (Long, Float)
            | (Long, Double)
            | (Float, Double)
    )
}

/// Binary numeric promotion target.
pub fn promote2(a: PrimTy, b: PrimTy) -> PrimTy {
    use PrimTy::*;
    if a == Double || b == Double {
        Double
    } else if a == Float || b == Float {
        Float
    } else if a == Long || b == Long {
        Long
    } else {
        Int
    }
}

/// Shortest conversion path using only the single-step conversions the
/// SafeTSA machine model provides.
pub fn conv_path(from: PrimTy, to: PrimTy) -> Option<Vec<PrimTy>> {
    use PrimTy::*;
    if from == to {
        return Some(vec![]);
    }
    let direct: &[(PrimTy, PrimTy)] = &[
        (Char, Int),
        (Int, Char),
        (Int, Long),
        (Int, Float),
        (Int, Double),
        (Long, Int),
        (Long, Float),
        (Long, Double),
        (Float, Int),
        (Float, Long),
        (Float, Double),
        (Double, Int),
        (Double, Long),
        (Double, Float),
    ];
    if direct.contains(&(from, to)) {
        return Some(vec![to]);
    }
    // Two-step paths always go through int.
    if direct.contains(&(from, Int)) && direct.contains(&(Int, to)) {
        return Some(vec![Int, to]);
    }
    None
}

fn default_value(ty: &Ty) -> Expr {
    let kind = match ty {
        Ty::Prim(PrimTy::Bool) => ExprKind::Lit(Lit::Bool(false)),
        Ty::Prim(PrimTy::Char) => ExprKind::Lit(Lit::Char(0)),
        Ty::Prim(PrimTy::Int) => ExprKind::Lit(Lit::Int(0)),
        Ty::Prim(PrimTy::Long) => ExprKind::Lit(Lit::Long(0)),
        Ty::Prim(PrimTy::Float) => ExprKind::Lit(Lit::Float(0.0)),
        Ty::Prim(PrimTy::Double) => ExprKind::Lit(Lit::Double(0.0)),
        _ => ExprKind::Lit(Lit::Null),
    };
    Expr {
        ty: ty.clone(),
        kind,
    }
}

fn ty_to_typeref(t: &Ty) -> TypeRef {
    match t {
        Ty::Prim(PrimTy::Bool) => TypeRef::Bool,
        Ty::Prim(PrimTy::Char) => TypeRef::Char,
        Ty::Prim(PrimTy::Int) => TypeRef::Int,
        Ty::Prim(PrimTy::Long) => TypeRef::Long,
        Ty::Prim(PrimTy::Float) => TypeRef::Float,
        Ty::Prim(PrimTy::Double) => TypeRef::Double,
        Ty::Array(e) => TypeRef::Array(Box::new(ty_to_typeref(e))),
        Ty::Ref(_) | Ty::Null | Ty::Void => {
            // Only used for nested array literals of primitives or named
            // classes; named classes are resolvable by index only, so we
            // fall back to a placeholder that sema re-resolves by type.
            TypeRef::Named("Object".into())
        }
    }
}

fn stmt_span(s: &AStmt) -> Span {
    match s {
        AStmt::Local { span, .. } => *span,
        AStmt::Break(_, s)
        | AStmt::Continue(_, s)
        | AStmt::Return(_, s)
        | AStmt::SuperCall(_, s)
        | AStmt::Labeled { span: s, .. } => *s,
        AStmt::Expr(e) | AStmt::Throw(e) => e.span,
        AStmt::If { cond, .. } | AStmt::While { cond, .. } | AStmt::Do { cond, .. } => cond.span,
        AStmt::For { .. } | AStmt::Block(_) | AStmt::Try { .. } | AStmt::Empty => Span::default(),
    }
}

/// Whether any statement exits the region abruptly (return, or a
/// break/continue not enclosed in a loop within the region).
fn exits_region(stmts: &[Stmt]) -> bool {
    fn walk(stmts: &[Stmt], loop_depth: usize) -> bool {
        stmts.iter().any(|s| match s {
            Stmt::Return(_) => true,
            Stmt::Break { depth } | Stmt::Continue { depth } => *depth >= loop_depth,
            Stmt::If { then, els, .. } => walk(then, loop_depth) || walk(els, loop_depth),
            Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => walk(body, loop_depth + 1),
            Stmt::For { body, .. } => walk(body, loop_depth + 1),
            Stmt::Try {
                body,
                catches,
                finally,
            } => {
                walk(body, loop_depth)
                    || catches.iter().any(|c| walk(&c.body, loop_depth))
                    || finally
                        .as_deref()
                        .map(|f| walk(f, loop_depth))
                        .unwrap_or(false)
            }
            Stmt::Expr(_) | Stmt::Throw(_) => false,
        })
    }
    walk(stmts, 0)
}

/// JLS-style "completes normally" over HIR statements.
pub fn stmts_complete_normally(stmts: &[Stmt]) -> bool {
    match stmts.last() {
        None => true,
        Some(last) => {
            // all earlier statements were checked reachable during sema
            stmt_completes_normally(last)
        }
    }
}

/// Whether `stmts` contain a break that targets the loop `level`
/// loops above them (level 0 = the loop directly containing `stmts`).
fn contains_break(stmts: &[Stmt]) -> bool {
    contains_break_at(stmts, 0)
}

fn contains_break_at(stmts: &[Stmt], level: usize) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Break { depth } => *depth == level,
        Stmt::If { then, els, .. } => {
            contains_break_at(then, level) || contains_break_at(els, level)
        }
        // Breaks inside a nested loop need one more level to reach us.
        Stmt::While { body, .. } | Stmt::DoWhile { body, .. } | Stmt::For { body, .. } => {
            contains_break_at(body, level + 1)
        }
        Stmt::Try {
            body,
            catches,
            finally,
        } => {
            contains_break_at(body, level)
                || catches.iter().any(|c| contains_break_at(&c.body, level))
                || finally
                    .as_deref()
                    .map(|f| contains_break_at(f, level))
                    .unwrap_or(false)
        }
        _ => false,
    })
}

fn is_const_true(e: &Expr) -> bool {
    matches!(e.kind, ExprKind::Lit(Lit::Bool(true)))
}

fn stmt_completes_normally(s: &Stmt) -> bool {
    match s {
        Stmt::Expr(_) => true,
        Stmt::If { then, els, .. } => stmts_complete_normally(then) || stmts_complete_normally(els),
        Stmt::While { cond, body } => !is_const_true(cond) || contains_break(body),
        Stmt::DoWhile { cond, body } => !is_const_true(cond) || contains_break(body),
        Stmt::For { cond, body, .. } => match cond {
            Some(c) => !is_const_true(c) || contains_break(body),
            None => contains_break(body),
        },
        Stmt::Break { .. } | Stmt::Continue { .. } | Stmt::Return(_) | Stmt::Throw(_) => false,
        Stmt::Try {
            body,
            catches,
            finally,
        } => {
            let inner = stmts_complete_normally(body)
                || catches.iter().any(|c| stmts_complete_normally(&c.body));
            let fin = finally
                .as_deref()
                .map(stmts_complete_normally)
                .unwrap_or(true);
            inner && fin
        }
    }
}
