//! Tokens of the Java subset.

use crate::span::Span;
use std::fmt;

/// A lexed token.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token's kind and payload.
    pub kind: Tok,
    /// Source location.
    pub span: Span,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier.
    Ident(String),
    /// `int` literal (value fits `i32`; negative literals are lexed as
    /// unary minus + literal, except `Integer.MIN_VALUE` handling in the
    /// parser).
    IntLit(i64),
    /// `long` literal (`L` suffix).
    LongLit(i64),
    /// `float` literal (`f` suffix).
    FloatLit(f32),
    /// `double` literal.
    DoubleLit(f64),
    /// `char` literal.
    CharLit(u16),
    /// String literal.
    StrLit(String),
    /// A keyword.
    Kw(Kw),
    /// Punctuation or operator.
    P(P),
    /// End of input.
    Eof,
}

/// Keywords of the subset (access modifiers are accepted and ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Kw {
    Class,
    Extends,
    Static,
    Final,
    Public,
    Private,
    Protected,
    Abstract,
    Void,
    Boolean,
    Char,
    Int,
    Long,
    Float,
    Double,
    If,
    Else,
    While,
    Do,
    For,
    Break,
    Continue,
    Return,
    New,
    Null,
    True,
    False,
    This,
    Super,
    Instanceof,
    Throw,
    Throws,
    Try,
    Catch,
    Finally,
}

/// Punctuation and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum P {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Colon,
    Question,
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    AmpAssign,
    PipeAssign,
    CaretAssign,
    ShlAssign,
    ShrAssign,
    UshrAssign,
    PlusPlus,
    MinusMinus,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    AmpAmp,
    PipePipe,
    Bang,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Shl,
    Shr,
    Ushr,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::IntLit(v) => write!(f, "int literal {v}"),
            Tok::LongLit(v) => write!(f, "long literal {v}L"),
            Tok::FloatLit(v) => write!(f, "float literal {v}f"),
            Tok::DoubleLit(v) => write!(f, "double literal {v}"),
            Tok::CharLit(c) => write!(f, "char literal {c}"),
            Tok::StrLit(s) => write!(f, "string literal {s:?}"),
            Tok::Kw(k) => write!(f, "keyword `{k:?}`"),
            Tok::P(p) => write!(f, "`{p:?}`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// Looks up a keyword by its source spelling.
pub fn keyword(s: &str) -> Option<Kw> {
    Some(match s {
        "class" => Kw::Class,
        "extends" => Kw::Extends,
        "static" => Kw::Static,
        "final" => Kw::Final,
        "public" => Kw::Public,
        "private" => Kw::Private,
        "protected" => Kw::Protected,
        "abstract" => Kw::Abstract,
        "void" => Kw::Void,
        "boolean" => Kw::Boolean,
        "char" => Kw::Char,
        "int" => Kw::Int,
        "long" => Kw::Long,
        "float" => Kw::Float,
        "double" => Kw::Double,
        "if" => Kw::If,
        "else" => Kw::Else,
        "while" => Kw::While,
        "do" => Kw::Do,
        "for" => Kw::For,
        "break" => Kw::Break,
        "continue" => Kw::Continue,
        "return" => Kw::Return,
        "new" => Kw::New,
        "null" => Kw::Null,
        "true" => Kw::True,
        "false" => Kw::False,
        "this" => Kw::This,
        "super" => Kw::Super,
        "instanceof" => Kw::Instanceof,
        "throw" => Kw::Throw,
        "throws" => Kw::Throws,
        "try" => Kw::Try,
        "catch" => Kw::Catch,
        "finally" => Kw::Finally,
        _ => return None,
    })
}
