//! Recursive-descent parser for the Java subset.

use crate::ast::*;
use crate::span::{CompileError, Span};
use crate::token::{Kw, Tok, Token, P};

/// Maximum expression nesting the parser accepts (bounds recursion on
/// adversarial inputs).
pub const MAX_NESTING: u32 = 48;

/// Parses a compilation unit.
///
/// # Errors
///
/// Returns the first syntax error encountered.
pub fn parse(tokens: Vec<Token>) -> Result<CompilationUnit, CompileError> {
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let mut classes = Vec::new();
    while !p.at_eof() {
        classes.push(p.class_decl()?);
    }
    Ok(CompilationUnit { classes })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Expression nesting depth, bounded to keep recursive descent on
    /// a sane stack for adversarial inputs.
    depth: u32,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, n: usize) -> &Tok {
        let i = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> CompileError {
        CompileError::new(self.span(), msg)
    }

    fn eat_p(&mut self, p: P) -> bool {
        if *self.peek() == Tok::P(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_p(&mut self, p: P) -> Result<Span, CompileError> {
        if *self.peek() == Tok::P(p) {
            Ok(self.bump().span)
        } else {
            Err(self.err(format!("expected `{p:?}`, found {}", self.peek())))
        }
    }

    fn eat_kw(&mut self, k: Kw) -> bool {
        if *self.peek() == Tok::Kw(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, k: Kw) -> Result<Span, CompileError> {
        if *self.peek() == Tok::Kw(k) {
            Ok(self.bump().span)
        } else {
            Err(self.err(format!("expected `{k:?}`, found {}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), CompileError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                let sp = self.bump().span;
                Ok((s, sp))
            }
            t => Err(self.err(format!("expected identifier, found {t}"))),
        }
    }

    /// Consumes any access/`final`/`abstract` modifiers; returns whether
    /// `static` was among them.
    fn modifiers(&mut self) -> bool {
        let mut is_static = false;
        loop {
            match self.peek() {
                Tok::Kw(Kw::Public)
                | Tok::Kw(Kw::Private)
                | Tok::Kw(Kw::Protected)
                | Tok::Kw(Kw::Final)
                | Tok::Kw(Kw::Abstract) => {
                    self.bump();
                }
                Tok::Kw(Kw::Static) => {
                    is_static = true;
                    self.bump();
                }
                _ => return is_static,
            }
        }
    }

    fn class_decl(&mut self) -> Result<ClassDecl, CompileError> {
        self.modifiers();
        let span = self.expect_kw(Kw::Class)?;
        let (name, _) = self.expect_ident()?;
        let superclass = if self.eat_kw(Kw::Extends) {
            Some(self.expect_ident()?.0)
        } else {
            None
        };
        self.expect_p(P::LBrace)?;
        let mut members = Vec::new();
        while !self.eat_p(P::RBrace) {
            if self.at_eof() {
                return Err(self.err("unterminated class body"));
            }
            self.member(&name, &mut members)?;
        }
        Ok(ClassDecl {
            name,
            superclass,
            members,
            span,
        })
    }

    fn member(&mut self, class_name: &str, out: &mut Vec<Member>) -> Result<(), CompileError> {
        let is_static = self.modifiers();
        let span = self.span();
        // Constructor: `Name (`
        if let Tok::Ident(n) = self.peek() {
            if n == class_name && *self.peek_at(1) == Tok::P(P::LParen) {
                self.bump();
                let params = self.params()?;
                // tolerate `throws X, Y`
                self.throws_clause()?;
                let body = self.block()?;
                out.push(Member::Ctor(CtorDecl { params, body, span }));
                return Ok(());
            }
        }
        // `void name(...)`.
        if self.eat_kw(Kw::Void) {
            let (name, _) = self.expect_ident()?;
            self.expect_p(P::LParen)?;
            return self.finish_method(out, name, is_static, None, span);
        }
        let ty = self.type_ref()?;
        let (name, _) = self.expect_ident()?;
        if self.eat_p(P::LParen) {
            return self.finish_method(out, name, is_static, Some(ty), span);
        }
        // Field declarator list.
        let mut name = name;
        loop {
            let init = if self.eat_p(P::Assign) {
                Some(self.maybe_array_init(&ty)?)
            } else {
                None
            };
            out.push(Member::Field(FieldDecl {
                name,
                ty: ty.clone(),
                is_static,
                init,
                span,
            }));
            if self.eat_p(P::Comma) {
                name = self.expect_ident()?.0;
            } else {
                break;
            }
        }
        self.expect_p(P::Semi)?;
        Ok(())
    }

    fn throws_clause(&mut self) -> Result<(), CompileError> {
        if self.eat_kw(Kw::Throws) {
            loop {
                self.expect_ident()?;
                if !self.eat_p(P::Comma) {
                    break;
                }
            }
        }
        Ok(())
    }

    fn finish_method(
        &mut self,
        out: &mut Vec<Member>,
        name: String,
        is_static: bool,
        ret: Option<TypeRef>,
        span: Span,
    ) -> Result<(), CompileError> {
        let params = self.params_after_lparen()?;
        self.throws_clause()?;
        let body = self.block()?;
        out.push(Member::Method(MethodDecl {
            name,
            is_static,
            ret,
            params,
            body,
            span,
        }));
        Ok(())
    }

    fn params(&mut self) -> Result<Vec<(TypeRef, String)>, CompileError> {
        self.expect_p(P::LParen)?;
        self.params_after_lparen()
    }

    fn params_after_lparen(&mut self) -> Result<Vec<(TypeRef, String)>, CompileError> {
        let mut params = Vec::new();
        if self.eat_p(P::RParen) {
            return Ok(params);
        }
        loop {
            self.eat_kw(Kw::Final);
            let ty = self.type_ref()?;
            let (name, _) = self.expect_ident()?;
            params.push((ty, name));
            if !self.eat_p(P::Comma) {
                break;
            }
        }
        self.expect_p(P::RParen)?;
        Ok(params)
    }

    fn type_ref(&mut self) -> Result<TypeRef, CompileError> {
        let mut base = match self.peek().clone() {
            Tok::Kw(Kw::Boolean) => {
                self.bump();
                TypeRef::Bool
            }
            Tok::Kw(Kw::Char) => {
                self.bump();
                TypeRef::Char
            }
            Tok::Kw(Kw::Int) => {
                self.bump();
                TypeRef::Int
            }
            Tok::Kw(Kw::Long) => {
                self.bump();
                TypeRef::Long
            }
            Tok::Kw(Kw::Float) => {
                self.bump();
                TypeRef::Float
            }
            Tok::Kw(Kw::Double) => {
                self.bump();
                TypeRef::Double
            }
            Tok::Ident(s) => {
                self.bump();
                TypeRef::Named(s)
            }
            t => return Err(self.err(format!("expected type, found {t}"))),
        };
        while *self.peek() == Tok::P(P::LBracket) && *self.peek_at(1) == Tok::P(P::RBracket) {
            self.bump();
            self.bump();
            base = TypeRef::Array(Box::new(base));
        }
        Ok(base)
    }

    /// Whether a type reference starts here and is followed by an
    /// identifier — i.e. a local variable declaration.
    fn at_local_decl(&self) -> bool {
        let mut i = 0;
        match self.peek_at(i) {
            Tok::Kw(Kw::Boolean | Kw::Char | Kw::Int | Kw::Long | Kw::Float | Kw::Double)
            | Tok::Ident(_) => i += 1,
            _ => return false,
        }
        while *self.peek_at(i) == Tok::P(P::LBracket) && *self.peek_at(i + 1) == Tok::P(P::RBracket)
        {
            i += 2;
        }
        // prim types: always a decl if followed by ident; named types
        // need `Name name` shape (array suffix already consumed).
        matches!(
            (self.peek_at(0), self.peek_at(i)),
            (Tok::Kw(_), Tok::Ident(_)) | (Tok::Ident(_), Tok::Ident(_))
        )
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect_p(P::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat_p(P::RBrace) {
            if self.at_eof() {
                return Err(self.err("unterminated block"));
            }
            self.stmt_into(&mut stmts)?;
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let mut v = Vec::new();
        self.stmt_into(&mut v)?;
        Ok(if v.len() == 1 {
            v.into_iter().next().unwrap()
        } else {
            Stmt::Block(v)
        })
    }

    /// Parses one statement; multi-declarator locals expand to several.
    fn stmt_into(&mut self, out: &mut Vec<Stmt>) -> Result<(), CompileError> {
        match self.peek().clone() {
            Tok::P(P::LBrace) => {
                let b = self.block()?;
                out.push(Stmt::Block(b));
            }
            Tok::P(P::Semi) => {
                self.bump();
                out.push(Stmt::Empty);
            }
            Tok::Kw(Kw::If) => {
                self.bump();
                self.expect_p(P::LParen)?;
                let cond = self.expr()?;
                self.expect_p(P::RParen)?;
                let then = Box::new(self.stmt()?);
                let els = if self.eat_kw(Kw::Else) {
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                out.push(Stmt::If { cond, then, els });
            }
            Tok::Kw(Kw::While) => {
                self.bump();
                self.expect_p(P::LParen)?;
                let cond = self.expr()?;
                self.expect_p(P::RParen)?;
                let body = Box::new(self.stmt()?);
                out.push(Stmt::While { cond, body });
            }
            Tok::Kw(Kw::Do) => {
                self.bump();
                let body = Box::new(self.stmt()?);
                self.expect_kw(Kw::While)?;
                self.expect_p(P::LParen)?;
                let cond = self.expr()?;
                self.expect_p(P::RParen)?;
                self.expect_p(P::Semi)?;
                out.push(Stmt::Do { body, cond });
            }
            Tok::Kw(Kw::For) => {
                self.bump();
                self.expect_p(P::LParen)?;
                let mut init = Vec::new();
                if !self.eat_p(P::Semi) {
                    if self.at_local_decl() {
                        self.local_decl_into(&mut init)?;
                    } else {
                        loop {
                            let e = self.expr()?;
                            init.push(Stmt::Expr(e));
                            if !self.eat_p(P::Comma) {
                                break;
                            }
                        }
                        self.expect_p(P::Semi)?;
                    }
                }
                let cond = if *self.peek() == Tok::P(P::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_p(P::Semi)?;
                let mut update = Vec::new();
                if *self.peek() != Tok::P(P::RParen) {
                    loop {
                        update.push(self.expr()?);
                        if !self.eat_p(P::Comma) {
                            break;
                        }
                    }
                }
                self.expect_p(P::RParen)?;
                let body = Box::new(self.stmt()?);
                out.push(Stmt::For {
                    init,
                    cond,
                    update,
                    body,
                });
            }
            Tok::Kw(Kw::Break) => {
                let sp = self.bump().span;
                let label = match self.peek().clone() {
                    Tok::Ident(l) => {
                        self.bump();
                        Some(l)
                    }
                    _ => None,
                };
                self.expect_p(P::Semi)?;
                out.push(Stmt::Break(label, sp));
            }
            Tok::Kw(Kw::Continue) => {
                let sp = self.bump().span;
                let label = match self.peek().clone() {
                    Tok::Ident(l) => {
                        self.bump();
                        Some(l)
                    }
                    _ => None,
                };
                self.expect_p(P::Semi)?;
                out.push(Stmt::Continue(label, sp));
            }
            Tok::Kw(Kw::Return) => {
                let sp = self.bump().span;
                let v = if *self.peek() == Tok::P(P::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_p(P::Semi)?;
                out.push(Stmt::Return(v, sp));
            }
            Tok::Kw(Kw::Throw) => {
                self.bump();
                let e = self.expr()?;
                self.expect_p(P::Semi)?;
                out.push(Stmt::Throw(e));
            }
            Tok::Kw(Kw::Try) => {
                self.bump();
                let body = self.block()?;
                let mut catches = Vec::new();
                while self.eat_kw(Kw::Catch) {
                    let span = self.span();
                    self.expect_p(P::LParen)?;
                    self.eat_kw(Kw::Final);
                    let (class, _) = self.expect_ident()?;
                    let (var, _) = self.expect_ident()?;
                    self.expect_p(P::RParen)?;
                    let cbody = self.block()?;
                    catches.push(CatchClause {
                        class,
                        var,
                        body: cbody,
                        span,
                    });
                }
                let finally = if self.eat_kw(Kw::Finally) {
                    Some(self.block()?)
                } else {
                    None
                };
                if catches.is_empty() && finally.is_none() {
                    return Err(self.err("try without catch or finally"));
                }
                out.push(Stmt::Try {
                    body,
                    catches,
                    finally,
                });
            }
            Tok::Kw(Kw::Super) if *self.peek_at(1) == Tok::P(P::LParen) => {
                let sp = self.bump().span;
                self.bump(); // (
                let args = self.args_after_lparen()?;
                self.expect_p(P::Semi)?;
                out.push(Stmt::SuperCall(args, sp));
            }
            Tok::Ident(name) if *self.peek_at(1) == Tok::P(P::Colon) && !self.at_local_decl() => {
                // A labeled statement: `name: <loop>`.
                let span = self.bump().span;
                self.bump(); // ':'
                let body = Box::new(self.stmt()?);
                out.push(Stmt::Labeled { name, body, span });
            }
            _ => {
                if self.at_local_decl() {
                    self.local_decl_into(out)?;
                } else {
                    let e = self.expr()?;
                    self.expect_p(P::Semi)?;
                    out.push(Stmt::Expr(e));
                }
            }
        }
        Ok(())
    }

    fn local_decl_into(&mut self, out: &mut Vec<Stmt>) -> Result<(), CompileError> {
        let ty = self.type_ref()?;
        loop {
            let (name, span) = self.expect_ident()?;
            // trailing `[]` after the name: `int a[]`
            let mut vty = ty.clone();
            while *self.peek() == Tok::P(P::LBracket) && *self.peek_at(1) == Tok::P(P::RBracket) {
                self.bump();
                self.bump();
                vty = TypeRef::Array(Box::new(vty));
            }
            let init = if self.eat_p(P::Assign) {
                Some(self.maybe_array_init(&vty)?)
            } else {
                None
            };
            out.push(Stmt::Local {
                ty: vty,
                name,
                init,
                span,
            });
            if !self.eat_p(P::Comma) {
                break;
            }
        }
        self.expect_p(P::Semi)?;
        Ok(())
    }

    /// Parses an initializer, allowing `{ ... }` array-literal sugar.
    fn maybe_array_init(&mut self, decl_ty: &TypeRef) -> Result<Expr, CompileError> {
        if *self.peek() == Tok::P(P::LBrace) {
            let span = self.span();
            let elems = self.array_lit_elems(decl_ty)?;
            let elem = match decl_ty {
                TypeRef::Array(e) => Some((**e).clone()),
                _ => None,
            };
            return Ok(Expr {
                kind: ExprKind::ArrayLit { elem, elems },
                span,
            });
        }
        self.expr()
    }

    fn array_lit_elems(&mut self, decl_ty: &TypeRef) -> Result<Vec<Expr>, CompileError> {
        self.expect_p(P::LBrace)?;
        let inner = match decl_ty {
            TypeRef::Array(e) => (**e).clone(),
            other => other.clone(),
        };
        let mut elems = Vec::new();
        if self.eat_p(P::RBrace) {
            return Ok(elems);
        }
        loop {
            elems.push(self.maybe_array_init(&inner)?);
            if self.eat_p(P::Comma) {
                if self.eat_p(P::RBrace) {
                    return Ok(elems); // trailing comma
                }
            } else {
                self.expect_p(P::RBrace)?;
                return Ok(elems);
            }
        }
    }

    // ----- expressions (precedence climbing) -----

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, CompileError> {
        let lhs = self.conditional()?;
        let op = match self.peek() {
            Tok::P(P::Assign) => None,
            Tok::P(P::PlusAssign) => Some(BinOp::Add),
            Tok::P(P::MinusAssign) => Some(BinOp::Sub),
            Tok::P(P::StarAssign) => Some(BinOp::Mul),
            Tok::P(P::SlashAssign) => Some(BinOp::Div),
            Tok::P(P::PercentAssign) => Some(BinOp::Rem),
            Tok::P(P::AmpAssign) => Some(BinOp::BitAnd),
            Tok::P(P::PipeAssign) => Some(BinOp::BitOr),
            Tok::P(P::CaretAssign) => Some(BinOp::BitXor),
            Tok::P(P::ShlAssign) => Some(BinOp::Shl),
            Tok::P(P::ShrAssign) => Some(BinOp::Shr),
            Tok::P(P::UshrAssign) => Some(BinOp::Ushr),
            _ => return Ok(lhs),
        };
        let span = self.bump().span;
        let value = self.assignment()?;
        Ok(Expr {
            kind: ExprKind::Assign {
                target: Box::new(lhs),
                op,
                value: Box::new(value),
            },
            span,
        })
    }

    fn conditional(&mut self) -> Result<Expr, CompileError> {
        let c = self.binary(0)?;
        if self.eat_p(P::Question) {
            let span = c.span;
            let t = self.expr()?;
            self.expect_p(P::Colon)?;
            let e = self.conditional()?;
            return Ok(Expr {
                kind: ExprKind::Cond {
                    cond: Box::new(c),
                    then: Box::new(t),
                    els: Box::new(e),
                },
                span,
            });
        }
        Ok(c)
    }

    fn bin_op_at(&self, level: u8) -> Option<BinOp> {
        use BinOp::*;
        let op = match (level, self.peek()) {
            (0, Tok::P(P::PipePipe)) => OrOr,
            (1, Tok::P(P::AmpAmp)) => AndAnd,
            (2, Tok::P(P::Pipe)) => BitOr,
            (3, Tok::P(P::Caret)) => BitXor,
            (4, Tok::P(P::Amp)) => BitAnd,
            (5, Tok::P(P::Eq)) => Eq,
            (5, Tok::P(P::Ne)) => Ne,
            (6, Tok::P(P::Lt)) => Lt,
            (6, Tok::P(P::Le)) => Le,
            (6, Tok::P(P::Gt)) => Gt,
            (6, Tok::P(P::Ge)) => Ge,
            (7, Tok::P(P::Shl)) => Shl,
            (7, Tok::P(P::Shr)) => Shr,
            (7, Tok::P(P::Ushr)) => Ushr,
            (8, Tok::P(P::Plus)) => Add,
            (8, Tok::P(P::Minus)) => Sub,
            (9, Tok::P(P::Star)) => Mul,
            (9, Tok::P(P::Slash)) => Div,
            (9, Tok::P(P::Percent)) => Rem,
            _ => return None,
        };
        Some(op)
    }

    fn binary(&mut self, level: u8) -> Result<Expr, CompileError> {
        if level > 9 {
            return self.unary();
        }
        let mut lhs = self.binary(level + 1)?;
        loop {
            // `instanceof` sits at relational precedence.
            if level == 6 && *self.peek() == Tok::Kw(Kw::Instanceof) {
                let span = self.bump().span;
                let ty = self.type_ref()?;
                lhs = Expr {
                    kind: ExprKind::InstanceOf {
                        expr: Box::new(lhs),
                        ty,
                    },
                    span,
                };
                continue;
            }
            match self.bin_op_at(level) {
                Some(op) => {
                    let span = self.bump().span;
                    let rhs = self.binary(level + 1)?;
                    lhs = Expr {
                        kind: ExprKind::Binary {
                            op,
                            l: Box::new(lhs),
                            r: Box::new(rhs),
                        },
                        span,
                    };
                }
                None => return Ok(lhs),
            }
        }
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        // Every nesting level (parenthesis, prefix operator, cast)
        // passes through here exactly once; bounding it bounds the
        // parser's recursion on adversarial inputs.
        self.depth += 1;
        if self.depth > MAX_NESTING {
            self.depth -= 1;
            return Err(self.err("expression nesting too deep"));
        }
        let r = self.unary_inner();
        self.depth -= 1;
        r
    }

    fn unary_inner(&mut self) -> Result<Expr, CompileError> {
        let span = self.span();
        match self.peek().clone() {
            Tok::P(P::Minus) => {
                self.bump();
                // Fold -literal so Integer.MIN_VALUE / Long.MIN_VALUE work.
                if let Tok::IntLit(v) = self.peek() {
                    let v = *v;
                    self.bump();
                    return Ok(Expr {
                        kind: ExprKind::IntLit(-v),
                        span,
                    });
                }
                if let Tok::LongLit(v) = self.peek() {
                    let v = *v;
                    self.bump();
                    return Ok(Expr {
                        kind: ExprKind::LongLit(v.wrapping_neg()),
                        span,
                    });
                }
                let e = self.unary()?;
                Ok(Expr {
                    kind: ExprKind::Unary {
                        op: UnOp::Neg,
                        expr: Box::new(e),
                    },
                    span,
                })
            }
            Tok::P(P::Plus) => {
                self.bump();
                self.unary()
            }
            Tok::P(P::Bang) => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr {
                    kind: ExprKind::Unary {
                        op: UnOp::Not,
                        expr: Box::new(e),
                    },
                    span,
                })
            }
            Tok::P(P::Tilde) => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr {
                    kind: ExprKind::Unary {
                        op: UnOp::BitNot,
                        expr: Box::new(e),
                    },
                    span,
                })
            }
            Tok::P(P::PlusPlus) | Tok::P(P::MinusMinus) => {
                let inc = *self.peek() == Tok::P(P::PlusPlus);
                self.bump();
                let e = self.unary()?;
                Ok(Expr {
                    kind: ExprKind::IncDec {
                        target: Box::new(e),
                        inc,
                        prefix: true,
                    },
                    span,
                })
            }
            Tok::P(P::LParen) if self.at_cast() => {
                self.bump();
                let ty = self.type_ref()?;
                self.expect_p(P::RParen)?;
                let e = self.unary()?;
                Ok(Expr {
                    kind: ExprKind::Cast {
                        ty,
                        expr: Box::new(e),
                    },
                    span,
                })
            }
            _ => self.postfix(),
        }
    }

    /// Cast lookahead: `(` primitive-type …, or `(Name)` / `(Name[])`
    /// followed by a token that can begin a unary expression.
    fn at_cast(&self) -> bool {
        debug_assert!(matches!(self.peek(), Tok::P(P::LParen)));
        let mut i = 1;
        let prim = matches!(
            self.peek_at(i),
            Tok::Kw(Kw::Boolean | Kw::Char | Kw::Int | Kw::Long | Kw::Float | Kw::Double)
        );
        if !prim && !matches!(self.peek_at(i), Tok::Ident(_)) {
            return false;
        }
        i += 1;
        let mut is_array = false;
        while *self.peek_at(i) == Tok::P(P::LBracket) && *self.peek_at(i + 1) == Tok::P(P::RBracket)
        {
            is_array = true;
            i += 2;
        }
        if *self.peek_at(i) != Tok::P(P::RParen) {
            return false;
        }
        if prim || is_array {
            return true;
        }
        // `(Name) x` — cast only if the next token can begin an operand.
        matches!(
            self.peek_at(i + 1),
            Tok::Ident(_)
                | Tok::IntLit(_)
                | Tok::LongLit(_)
                | Tok::FloatLit(_)
                | Tok::DoubleLit(_)
                | Tok::CharLit(_)
                | Tok::StrLit(_)
                | Tok::P(P::LParen)
                | Tok::P(P::Bang)
                | Tok::P(P::Tilde)
                | Tok::Kw(Kw::New)
                | Tok::Kw(Kw::This)
                | Tok::Kw(Kw::Null)
                | Tok::Kw(Kw::True)
                | Tok::Kw(Kw::False)
        )
    }

    fn args_after_lparen(&mut self) -> Result<Vec<Expr>, CompileError> {
        let mut args = Vec::new();
        if self.eat_p(P::RParen) {
            return Ok(args);
        }
        loop {
            args.push(self.expr()?);
            if !self.eat_p(P::Comma) {
                break;
            }
        }
        self.expect_p(P::RParen)?;
        Ok(args)
    }

    fn postfix(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.primary()?;
        loop {
            let span = self.span();
            if self.eat_p(P::Dot) {
                let (name, _) = self.expect_ident()?;
                if self.eat_p(P::LParen) {
                    let args = self.args_after_lparen()?;
                    e = Expr {
                        kind: ExprKind::CallQualified {
                            recv: Box::new(e),
                            name,
                            args,
                        },
                        span,
                    };
                } else {
                    e = Expr {
                        kind: ExprKind::FieldAccess {
                            obj: Box::new(e),
                            name,
                        },
                        span,
                    };
                }
            } else if self.eat_p(P::LBracket) {
                let idx = self.expr()?;
                self.expect_p(P::RBracket)?;
                e = Expr {
                    kind: ExprKind::Index {
                        arr: Box::new(e),
                        idx: Box::new(idx),
                    },
                    span,
                };
            } else if *self.peek() == Tok::P(P::PlusPlus) || *self.peek() == Tok::P(P::MinusMinus) {
                let inc = *self.peek() == Tok::P(P::PlusPlus);
                self.bump();
                e = Expr {
                    kind: ExprKind::IncDec {
                        target: Box::new(e),
                        inc,
                        prefix: false,
                    },
                    span,
                };
            } else {
                return Ok(e);
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let span = self.span();
        let kind = match self.peek().clone() {
            Tok::IntLit(v) => {
                self.bump();
                if v > i32::MAX as i64 {
                    return Err(CompileError::new(span, "int literal too large"));
                }
                ExprKind::IntLit(v)
            }
            Tok::LongLit(v) => {
                self.bump();
                ExprKind::LongLit(v)
            }
            Tok::FloatLit(v) => {
                self.bump();
                ExprKind::FloatLit(v)
            }
            Tok::DoubleLit(v) => {
                self.bump();
                ExprKind::DoubleLit(v)
            }
            Tok::CharLit(v) => {
                self.bump();
                ExprKind::CharLit(v)
            }
            Tok::StrLit(s) => {
                self.bump();
                ExprKind::StrLit(s)
            }
            Tok::Kw(Kw::True) => {
                self.bump();
                ExprKind::BoolLit(true)
            }
            Tok::Kw(Kw::False) => {
                self.bump();
                ExprKind::BoolLit(false)
            }
            Tok::Kw(Kw::Null) => {
                self.bump();
                ExprKind::Null
            }
            Tok::Kw(Kw::This) => {
                self.bump();
                ExprKind::This
            }
            Tok::P(P::LParen) => {
                self.bump();
                let e = self.expr()?;
                self.expect_p(P::RParen)?;
                return Ok(e);
            }
            Tok::Kw(Kw::New) => {
                self.bump();
                let base = self.base_type_no_array()?;
                if self.eat_p(P::LBracket) {
                    // `new T[len]([])*` or `new T[]{...}`
                    if self.eat_p(P::RBracket) {
                        // `new T[] { ... }`
                        let elems =
                            self.array_lit_elems(&TypeRef::Array(Box::new(base.clone())))?;
                        return Ok(Expr {
                            kind: ExprKind::ArrayLit {
                                elem: Some(base),
                                elems,
                            },
                            span,
                        });
                    }
                    let len = self.expr()?;
                    self.expect_p(P::RBracket)?;
                    let mut extra_dims = 0;
                    while *self.peek() == Tok::P(P::LBracket)
                        && *self.peek_at(1) == Tok::P(P::RBracket)
                    {
                        self.bump();
                        self.bump();
                        extra_dims += 1;
                    }
                    ExprKind::NewArray {
                        elem: base,
                        len: Box::new(len),
                        extra_dims,
                    }
                } else {
                    let class = match base {
                        TypeRef::Named(n) => n,
                        _ => return Err(CompileError::new(span, "cannot `new` a primitive")),
                    };
                    self.expect_p(P::LParen)?;
                    let args = self.args_after_lparen()?;
                    ExprKind::New { class, args }
                }
            }
            Tok::Ident(name) => {
                self.bump();
                if self.eat_p(P::LParen) {
                    let args = self.args_after_lparen()?;
                    ExprKind::CallUnqualified { name, args }
                } else {
                    ExprKind::Name(name)
                }
            }
            t => return Err(self.err(format!("expected expression, found {t}"))),
        };
        Ok(Expr { kind, span })
    }

    fn base_type_no_array(&mut self) -> Result<TypeRef, CompileError> {
        Ok(match self.peek().clone() {
            Tok::Kw(Kw::Boolean) => {
                self.bump();
                TypeRef::Bool
            }
            Tok::Kw(Kw::Char) => {
                self.bump();
                TypeRef::Char
            }
            Tok::Kw(Kw::Int) => {
                self.bump();
                TypeRef::Int
            }
            Tok::Kw(Kw::Long) => {
                self.bump();
                TypeRef::Long
            }
            Tok::Kw(Kw::Float) => {
                self.bump();
                TypeRef::Float
            }
            Tok::Kw(Kw::Double) => {
                self.bump();
                TypeRef::Double
            }
            Tok::Ident(s) => {
                self.bump();
                TypeRef::Named(s)
            }
            t => return Err(self.err(format!("expected type after `new`, found {t}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> CompilationUnit {
        parse(lex(src).unwrap()).unwrap()
    }

    #[test]
    fn minimal_class() {
        let cu = parse_src("class A { }");
        assert_eq!(cu.classes.len(), 1);
        assert_eq!(cu.classes[0].name, "A");
        assert!(cu.classes[0].superclass.is_none());
    }

    #[test]
    fn fields_methods_ctor() {
        let cu = parse_src(
            "class P extends Q {
                 int x; static double y = 1.5;
                 P(int x) { this.x = x; }
                 static int f(int a, int b) { return a + b * 2; }
                 void g() { }
             }",
        );
        let c = &cu.classes[0];
        assert_eq!(c.superclass.as_deref(), Some("Q"));
        assert_eq!(c.members.len(), 5);
        assert!(matches!(c.members[0], Member::Field(_)));
        assert!(matches!(c.members[2], Member::Ctor(_)));
        if let Member::Method(m) = &c.members[3] {
            assert!(m.is_static);
            assert_eq!(m.params.len(), 2);
        } else {
            panic!("expected method");
        }
    }

    #[test]
    fn precedence() {
        let cu = parse_src("class A { int f() { return 1 + 2 * 3; } }");
        if let Member::Method(m) = &cu.classes[0].members[0] {
            if let Stmt::Return(Some(e), _) = &m.body[0] {
                if let ExprKind::Binary { op, r, .. } = &e.kind {
                    assert_eq!(*op, BinOp::Add);
                    assert!(matches!(r.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
                    return;
                }
            }
        }
        panic!("unexpected shape");
    }

    #[test]
    fn control_flow_statements() {
        parse_src(
            "class A { void f(int n) {
                 for (int i = 0, j = 1; i < n; i++, j += 2) { if (i == j) continue; }
                 while (n > 0) { n--; }
                 do { n++; } while (n < 10);
                 try { n = n / 0; } catch (Exception e) { n = 0; } finally { n = 1; }
                 int[] a = {1, 2, 3};
                 int[][] m = new int[3][];
                 m[0] = new int[] {4, 5};
             } }",
        );
    }

    #[test]
    fn casts_vs_parens() {
        let cu = parse_src(
            "class A { int f(double d, Object o) {
                 int x = (int) d;
                 A a = (A) o;
                 int y = (x) + 1;
                 return x + y;
             } }",
        );
        if let Member::Method(m) = &cu.classes[0].members[0] {
            assert!(matches!(
                &m.body[0],
                Stmt::Local { init: Some(e), .. } if matches!(e.kind, ExprKind::Cast { .. })
            ));
            assert!(matches!(
                &m.body[1],
                Stmt::Local { init: Some(e), .. } if matches!(e.kind, ExprKind::Cast { .. })
            ));
            // `(x) + 1` is addition, not a cast
            assert!(matches!(
                &m.body[2],
                Stmt::Local { init: Some(e), .. } if matches!(e.kind, ExprKind::Binary { .. })
            ));
        } else {
            panic!("expected method");
        }
    }

    #[test]
    fn ternary_and_shortcircuit() {
        parse_src(
            "class A { int f(int a, int b) {
                return a > 0 && b > 0 ? a : (a < 0 || b < 0) ? -a : 0;
            } }",
        );
    }

    #[test]
    fn calls_and_chains() {
        parse_src(
            "class A { void f(A other) {
                this.g().h(1).h(2);
                other.g();
                g();
                A.s();
            }
            A g() { return this; }
            A h(int x) { return this; }
            static void s() { } }",
        );
    }

    #[test]
    fn instanceof_parses_at_relational() {
        let cu = parse_src("class A { boolean f(Object o) { return o instanceof A == true; } }");
        let _ = cu;
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse(lex("class A { int }").unwrap()).is_err());
        assert!(parse(lex("class A { void f() { return }").unwrap()).is_err());
    }

    #[test]
    fn int_min_literal() {
        let cu = parse_src("class A { int f() { return -2147483648; } }");
        if let Member::Method(m) = &cu.classes[0].members[0] {
            if let Stmt::Return(Some(e), _) = &m.body[0] {
                assert_eq!(e.kind, ExprKind::IntLit(i32::MIN as i64));
                return;
            }
        }
        panic!("unexpected shape");
    }
}
