//! The typed, resolved high-level IR produced by semantic analysis.
//!
//! Both back-ends consume this form: `safetsa-ssa` lowers it to the
//! SafeTSA representation, and `safetsa-baseline` compiles it to the
//! JVM-style stack code used as the paper's comparison baseline.
//!
//! Design notes:
//!
//! * every local variable is definitely initialized (sema inserts
//!   default values), so SSA construction never sees an undefined use;
//! * overloads are resolved and numeric promotions / conversions are
//!   explicit [`ExprKind::Conv`] nodes;
//! * string concatenation is already lowered to `String.valueOf` /
//!   `String.concat` intrinsic calls;
//! * compound assignment and `++`/`--` are desugared.

use std::fmt;

/// Index of a class in [`Program::classes`].
pub type ClassIdx = usize;
/// Index of a method in its class's method list.
pub type MethodIdx = usize;
/// Index of a field in its class's field list.
pub type FieldIdx = usize;
/// Index of a local slot in its body's `locals`.
pub type LocalId = usize;

/// Primitive types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum PrimTy {
    Bool,
    Char,
    Int,
    Long,
    Float,
    Double,
}

/// A semantic type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Ty {
    /// A primitive type.
    Prim(PrimTy),
    /// A class reference.
    Ref(ClassIdx),
    /// An array.
    Array(Box<Ty>),
    /// The type of `null` (assignable to any reference type).
    Null,
    /// `void` (method returns only).
    Void,
}

impl Ty {
    /// Shorthand for `Ty::Prim(PrimTy::Int)`.
    pub const INT: Ty = Ty::Prim(PrimTy::Int);
    /// Shorthand for `Ty::Prim(PrimTy::Bool)`.
    pub const BOOL: Ty = Ty::Prim(PrimTy::Bool);

    /// Whether the type is a reference type (class, array, or null).
    pub fn is_ref(&self) -> bool {
        matches!(self, Ty::Ref(_) | Ty::Array(_) | Ty::Null)
    }

    /// Whether the type is numeric (char counts, per Java promotion).
    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            Ty::Prim(PrimTy::Char | PrimTy::Int | PrimTy::Long | PrimTy::Float | PrimTy::Double)
        )
    }

    /// The primitive kind, if primitive.
    pub fn prim(&self) -> Option<PrimTy> {
        match self {
            Ty::Prim(p) => Some(*p),
            _ => None,
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Prim(p) => write!(f, "{p:?}"),
            Ty::Ref(c) => write!(f, "class#{c}"),
            Ty::Array(e) => write!(f, "{e}[]"),
            Ty::Null => write!(f, "null"),
            Ty::Void => write!(f, "void"),
        }
    }
}

/// Host-provided methods implemented natively by the runtimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Intrinsic {
    ObjectCtor,
    MathSqrt,
    MathAbsI,
    MathAbsL,
    MathAbsD,
    MathMinI,
    MathMaxI,
    MathMinD,
    MathMaxD,
    MathFloor,
    MathCeil,
    MathPow,
    SysPrintI,
    SysPrintL,
    SysPrintD,
    SysPrintC,
    SysPrintB,
    SysPrintS,
    SysPrintlnI,
    SysPrintlnL,
    SysPrintlnD,
    SysPrintlnC,
    SysPrintlnB,
    SysPrintlnS,
    SysPrintln,
    StrLength,
    StrCharAt,
    StrConcat,
    StrEquals,
    StrCompareTo,
    StrIndexOfChar,
    StrSubstring,
    StrValueOfI,
    StrValueOfL,
    StrValueOfD,
    StrValueOfC,
    StrValueOfB,
    ThrowableCtor,
    ThrowableCtorMsg,
    ThrowableGetMessage,
}

/// A class after resolution.
#[derive(Debug, Clone)]
pub struct Class {
    /// Class name.
    pub name: String,
    /// Resolved superclass (`None` only for `Object`).
    pub superclass: Option<ClassIdx>,
    /// Declared fields.
    pub fields: Vec<Field>,
    /// Declared methods (constructors included, named `<init>`; the
    /// synthesized static initializer is named `<clinit>`).
    pub methods: Vec<Method>,
    /// The dispatch table: slot → (declaring class, method index) of the
    /// implementation inherited or defined by *this* class.
    pub vtable: Vec<(ClassIdx, MethodIdx)>,
    /// Whether this is a host (built-in) class.
    pub is_builtin: bool,
}

/// A field after resolution.
#[derive(Debug, Clone)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Ty,
    /// Whether the field is static.
    pub is_static: bool,
}

/// Dispatch kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodKind {
    /// No receiver.
    Static,
    /// Dynamically dispatched.
    Virtual,
    /// Statically bound with receiver (constructors).
    Special,
}

/// A method after resolution.
#[derive(Debug, Clone)]
pub struct Method {
    /// Name (`<init>` for constructors, `<clinit>` for static init).
    pub name: String,
    /// Dispatch kind.
    pub kind: MethodKind,
    /// Parameter types (receiver excluded).
    pub params: Vec<Ty>,
    /// Result type (`Ty::Void` for none).
    pub ret: Ty,
    /// Vtable slot for virtual methods.
    pub vtable_slot: Option<usize>,
    /// The body, if the method is user-defined.
    pub body: Option<Body>,
    /// Host implementation, if the method is built-in.
    pub intrinsic: Option<Intrinsic>,
}

/// A local slot.
#[derive(Debug, Clone)]
pub struct Local {
    /// Diagnostic name.
    pub name: String,
    /// Slot type.
    pub ty: Ty,
}

/// A method body.
#[derive(Debug, Clone)]
pub struct Body {
    /// All local slots. For instance methods slot 0 is `this`; the
    /// following slots are the parameters, then declared locals.
    pub locals: Vec<Local>,
    /// Statements.
    pub stmts: Vec<Stmt>,
}

/// A catch clause.
#[derive(Debug, Clone)]
pub struct Catch {
    /// The caught class.
    pub class: ClassIdx,
    /// Slot receiving the exception.
    pub local: LocalId,
    /// Handler body.
    pub body: Vec<Stmt>,
}

/// Statements.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// Evaluate for effect.
    Expr(Expr),
    /// Two-way conditional.
    If {
        /// Boolean condition.
        cond: Expr,
        /// Then branch.
        then: Vec<Stmt>,
        /// Else branch.
        els: Vec<Stmt>,
    },
    /// `while (cond) body`.
    While {
        /// Boolean condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `do body while (cond)`.
    DoWhile {
        /// Loop body.
        body: Vec<Stmt>,
        /// Boolean condition.
        cond: Expr,
    },
    /// `for (init; cond; update) body` (init hoisted by sema).
    For {
        /// Optional condition (`None` = `true`).
        cond: Option<Expr>,
        /// Update expressions, run after the body and on `continue`.
        update: Vec<Expr>,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `break` out of the `depth`-th enclosing loop (0 = innermost).
    Break {
        /// Enclosing-loop index, innermost = 0.
        depth: usize,
    },
    /// `continue` the `depth`-th enclosing loop (0 = innermost).
    Continue {
        /// Enclosing-loop index, innermost = 0.
        depth: usize,
    },
    /// Return.
    Return(Option<Expr>),
    /// Throw.
    Throw(Expr),
    /// Exception region.
    Try {
        /// Protected statements.
        body: Vec<Stmt>,
        /// Catch clauses.
        catches: Vec<Catch>,
        /// Optional finally statements (duplicated by the back-ends on
        /// the normal path and appended to a catch-all rethrow arm).
        finally: Option<Vec<Stmt>>,
    },
}

/// Literal values.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum Lit {
    Bool(bool),
    Char(u16),
    Int(i32),
    Long(i64),
    Float(f32),
    Double(f64),
    Str(String),
    Null,
}

/// Typed unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Boolean not.
    Not,
    /// Bitwise complement.
    BitNot,
}

/// Typed binary operators (operand type recorded separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    Ushr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl BinOp {
    /// Whether the operator yields `boolean`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// A typed expression.
#[derive(Debug, Clone)]
pub struct Expr {
    /// The expression's kind.
    pub kind: ExprKind,
    /// The expression's type.
    pub ty: Ty,
}

/// Expression kinds.
#[derive(Debug, Clone)]
pub enum ExprKind {
    /// A literal.
    Lit(Lit),
    /// Read a local slot.
    Local(LocalId),
    /// Write a local slot; value of the expression is the stored value.
    AssignLocal {
        /// Target slot.
        local: LocalId,
        /// Stored value.
        value: Box<Expr>,
    },
    /// Read an instance field.
    GetField {
        /// Receiver.
        obj: Box<Expr>,
        /// Declaring class.
        class: ClassIdx,
        /// Field index within the declaring class.
        field: FieldIdx,
    },
    /// Write an instance field; value of the expression is the stored
    /// value.
    SetField {
        /// Receiver.
        obj: Box<Expr>,
        /// Declaring class.
        class: ClassIdx,
        /// Field index.
        field: FieldIdx,
        /// Stored value.
        value: Box<Expr>,
    },
    /// Read a static field.
    GetStatic {
        /// Declaring class.
        class: ClassIdx,
        /// Field index.
        field: FieldIdx,
    },
    /// Write a static field.
    SetStatic {
        /// Declaring class.
        class: ClassIdx,
        /// Field index.
        field: FieldIdx,
        /// Stored value.
        value: Box<Expr>,
    },
    /// Read `arr[idx]`.
    GetElem {
        /// The array.
        arr: Box<Expr>,
        /// The index (int).
        idx: Box<Expr>,
    },
    /// Write `arr[idx] = value`.
    SetElem {
        /// The array.
        arr: Box<Expr>,
        /// The index (int).
        idx: Box<Expr>,
        /// Stored value.
        value: Box<Expr>,
    },
    /// `arr.length`.
    ArrayLen {
        /// The array.
        arr: Box<Expr>,
    },
    /// Typed unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand primitive type.
        prim: PrimTy,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Typed binary operation on primitives.
    Binary {
        /// Operator.
        op: BinOp,
        /// Operand primitive type (after promotion).
        prim: PrimTy,
        /// Left operand.
        l: Box<Expr>,
        /// Right operand.
        r: Box<Expr>,
    },
    /// Reference identity comparison.
    RefCmp {
        /// Left operand.
        l: Box<Expr>,
        /// Right operand.
        r: Box<Expr>,
        /// `true` for `==`, `false` for `!=`.
        eq: bool,
    },
    /// Short-circuit `&&`.
    And {
        /// Left operand.
        l: Box<Expr>,
        /// Right operand.
        r: Box<Expr>,
    },
    /// Short-circuit `||`.
    Or {
        /// Left operand.
        l: Box<Expr>,
        /// Right operand.
        r: Box<Expr>,
    },
    /// `cond ? then : els`.
    Cond {
        /// Boolean condition.
        cond: Box<Expr>,
        /// Then value.
        then: Box<Expr>,
        /// Else value.
        els: Box<Expr>,
    },
    /// Primitive conversion.
    Conv {
        /// Source primitive type.
        from: PrimTy,
        /// Target primitive type.
        to: PrimTy,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Static method call.
    CallStatic {
        /// Declaring class.
        class: ClassIdx,
        /// Method index.
        method: MethodIdx,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Virtual call (dynamic dispatch).
    CallVirtual {
        /// Declaring class of the resolved method.
        class: ClassIdx,
        /// Method index within the declaring class.
        method: MethodIdx,
        /// Receiver.
        recv: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Statically bound instance call (constructors, `super` calls).
    CallSpecial {
        /// Declaring class.
        class: ClassIdx,
        /// Method index.
        method: MethodIdx,
        /// Receiver.
        recv: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `new C(args)`: allocation + constructor call.
    New {
        /// The instantiated class.
        class: ClassIdx,
        /// Constructor method index.
        ctor: MethodIdx,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `new T[len]`.
    NewArray {
        /// Element type.
        elem: Ty,
        /// Length (int).
        len: Box<Expr>,
    },
    /// `new T[] { ... }`.
    ArrayLit {
        /// Element type.
        elem: Ty,
        /// Elements (already converted to the element type).
        elems: Vec<Expr>,
    },
    /// Reference cast.
    CastRef {
        /// Target type.
        target: Ty,
        /// Operand.
        expr: Box<Expr>,
        /// Whether a runtime check is required (narrowing).
        checked: bool,
    },
    /// Effect sequencing: evaluate `effects` for their side effects
    /// (discarding values), then `result`. Produced by desugaring of
    /// compound assignment and postfix `++`/`--`.
    Seq {
        /// Expressions evaluated for effect, in order.
        effects: Vec<Expr>,
        /// The resulting value.
        result: Box<Expr>,
    },
    /// `expr instanceof target`.
    InstanceOf {
        /// Operand.
        expr: Box<Expr>,
        /// Tested type.
        target: Ty,
    },
}

/// A fully resolved program.
#[derive(Debug, Clone)]
pub struct Program {
    /// All classes; built-ins first.
    pub classes: Vec<Class>,
    /// `Object`.
    pub object: ClassIdx,
    /// `String`.
    pub string: ClassIdx,
    /// `Throwable`.
    pub throwable: ClassIdx,
    /// `Exception` (supertype of the implicit runtime exceptions).
    pub exception: ClassIdx,
    /// `ArithmeticException` (integer division by zero).
    pub arithmetic_exception: ClassIdx,
    /// `NullPointerException`.
    pub null_pointer_exception: ClassIdx,
    /// `IndexOutOfBoundsException`.
    pub index_exception: ClassIdx,
    /// `ClassCastException`.
    pub cast_exception: ClassIdx,
    /// `NegativeArraySizeException`.
    pub negative_size_exception: ClassIdx,
    /// `Error` (supertype of the resource-exhaustion errors).
    pub error: ClassIdx,
    /// `OutOfMemoryError` (heap byte budget exceeded).
    pub oom_error: ClassIdx,
    /// `StackOverflowError` (call depth budget exceeded).
    pub stack_overflow_error: ClassIdx,
}

impl Program {
    /// The class at `idx`.
    pub fn class(&self, idx: ClassIdx) -> &Class {
        &self.classes[idx]
    }

    /// The method `(class, method)`.
    pub fn method(&self, class: ClassIdx, method: MethodIdx) -> &Method {
        &self.classes[class].methods[method]
    }

    /// The field `(class, field)`.
    pub fn field(&self, class: ClassIdx, field: FieldIdx) -> &Field {
        &self.classes[class].fields[field]
    }

    /// Whether `sub` is `sup` or a transitive subclass.
    pub fn is_subclass(&self, sub: ClassIdx, sup: ClassIdx) -> bool {
        let mut cur = Some(sub);
        while let Some(c) = cur {
            if c == sup {
                return true;
            }
            cur = self.classes[c].superclass;
        }
        false
    }

    /// Whether a value of type `from` is assignable to `to` without a
    /// runtime check (identity, widening reference conversion, or
    /// `null` to any reference).
    pub fn ref_assignable(&self, from: &Ty, to: &Ty) -> bool {
        match (from, to) {
            (Ty::Null, t) if t.is_ref() => true,
            (a, b) if a == b => true,
            (Ty::Ref(a), Ty::Ref(b)) => self.is_subclass(*a, *b),
            (Ty::Array(_), Ty::Ref(b)) => *b == self.object,
            _ => false,
        }
    }

    /// Finds a class by name.
    pub fn find_class(&self, name: &str) -> Option<ClassIdx> {
        self.classes.iter().position(|c| c.name == name)
    }

    /// Finds a field by name along the superclass chain; returns the
    /// declaring class and field index.
    pub fn find_field(&self, class: ClassIdx, name: &str) -> Option<(ClassIdx, FieldIdx)> {
        let mut cur = Some(class);
        while let Some(c) = cur {
            if let Some(i) = self.classes[c].fields.iter().position(|f| f.name == name) {
                return Some((c, i));
            }
            cur = self.classes[c].superclass;
        }
        None
    }

    /// Finds a method by name in `class` or its ancestors; returns all
    /// candidates as `(declaring class, method index)` (nearest first).
    pub fn find_methods(&self, class: ClassIdx, name: &str) -> Vec<(ClassIdx, MethodIdx)> {
        let mut out = Vec::new();
        let mut cur = Some(class);
        while let Some(c) = cur {
            for (i, m) in self.classes[c].methods.iter().enumerate() {
                if m.name == name {
                    // Skip overridden duplicates (same signature seen in a
                    // subclass already).
                    let dup = out.iter().any(|&(oc, om): &(ClassIdx, MethodIdx)| {
                        self.method(oc, om).params == m.params
                    });
                    if !dup {
                        out.push((c, i));
                    }
                }
            }
            cur = self.classes[c].superclass;
        }
        out
    }
}
