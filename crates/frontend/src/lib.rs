//! # safetsa-frontend
//!
//! A from-scratch front-end for the Java subset used by the SafeTSA
//! reproduction (the paper compiled Java sources with a Pizza-derived
//! front-end; see DESIGN.md for the substitution rationale).
//!
//! Pipeline: [`lexer`] → [`parser`] → [`sema`] → typed [`hir`], which
//! both the SafeTSA producer (`safetsa-ssa`) and the Java-bytecode
//! baseline (`safetsa-baseline`) consume.
//!
//! # Examples
//!
//! ```
//! let src = "class Hello { static int twice(int x) { return x * 2; } }";
//! let program = safetsa_frontend::compile(src)?;
//! let hello = program.find_class("Hello").unwrap();
//! assert_eq!(program.class(hello).methods[0].name, "twice");
//! # Ok::<(), safetsa_frontend::span::CompileError>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod builtins;
pub mod hir;
pub mod lexer;
pub mod parser;
pub mod sema;
pub mod span;
pub mod token;

use span::CompileError;

/// Compiles Java-subset source text into a resolved [`hir::Program`].
///
/// # Errors
///
/// Returns the first lexical, syntactic, or semantic error.
pub fn compile(src: &str) -> Result<hir::Program, CompileError> {
    let tokens = lexer::lex(src)?;
    let cu = parser::parse(tokens)?;
    sema::analyze(&cu)
}

/// Compiles several source files as one program (shared class space).
///
/// # Errors
///
/// Returns the first error, without attributing the file.
pub fn compile_many(srcs: &[&str]) -> Result<hir::Program, CompileError> {
    let mut classes = Vec::new();
    for src in srcs {
        let tokens = lexer::lex(src)?;
        let cu = parser::parse(tokens)?;
        classes.extend(cu.classes);
    }
    sema::analyze(&ast::CompilationUnit { classes })
}
