//! # safetsa-frontend
//!
//! A from-scratch front-end for the Java subset used by the SafeTSA
//! reproduction (the paper compiled Java sources with a Pizza-derived
//! front-end; see DESIGN.md for the substitution rationale).
//!
//! Pipeline: [`lexer`] → [`parser`] → [`sema`] → typed [`hir`], which
//! both the SafeTSA producer (`safetsa-ssa`) and the Java-bytecode
//! baseline (`safetsa-baseline`) consume.
//!
//! # Examples
//!
//! ```
//! let src = "class Hello { static int twice(int x) { return x * 2; } }";
//! let program = safetsa_frontend::compile(src)?;
//! let hello = program.find_class("Hello").unwrap();
//! assert_eq!(program.class(hello).methods[0].name, "twice");
//! # Ok::<(), safetsa_frontend::span::CompileError>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod builtins;
pub mod hir;
pub mod lexer;
pub mod parser;
pub mod sema;
pub mod span;
pub mod token;

use safetsa_telemetry::Telemetry;
use span::CompileError;

/// Compiles Java-subset source text into a resolved [`hir::Program`].
///
/// # Errors
///
/// Returns the first lexical, syntactic, or semantic error.
pub fn compile(src: &str) -> Result<hir::Program, CompileError> {
    compile_sources(&[src], &Telemetry::disabled())
}

/// Compiles several source files as one program (shared class space).
///
/// # Errors
///
/// Returns the first error, without attributing the file.
pub fn compile_many(srcs: &[&str]) -> Result<hir::Program, CompileError> {
    compile_sources(srcs, &Telemetry::disabled())
}

/// The canonical instrumented entry point: compiles several source
/// files as one program (shared class space), recording per-phase wall
/// time (`frontend.lex_ns` / `frontend.parse_ns` / `frontend.sema_ns`)
/// and size counters (`frontend.source_bytes`, `frontend.tokens`,
/// `frontend.ast_nodes`, `frontend.classes`, `frontend.methods`;
/// counters accumulate across the input files). [`compile`] and
/// [`compile_many`] delegate here with a disabled registry.
///
/// # Errors
///
/// Returns the first error, without attributing the file.
pub fn compile_sources(srcs: &[&str], tm: &Telemetry) -> Result<hir::Program, CompileError> {
    let mut classes = Vec::new();
    for src in srcs {
        tm.add("frontend.source_bytes", src.len() as u64);
        let tokens = tm.time("frontend.lex_ns", || lexer::lex(src))?;
        tm.add("frontend.tokens", tokens.len() as u64);
        let cu = tm.time("frontend.parse_ns", || parser::parse(tokens))?;
        tm.add("frontend.ast_nodes", cu.node_count());
        classes.extend(cu.classes);
    }
    tm.add("frontend.files", srcs.len() as u64);
    let unit = ast::CompilationUnit { classes };
    tm.add("frontend.classes", unit.classes.len() as u64);
    tm.add(
        "frontend.methods",
        unit.classes
            .iter()
            .flat_map(|c| &c.members)
            .filter(|m| matches!(m, ast::Member::Method(_) | ast::Member::Ctor(_)))
            .count() as u64,
    );
    tm.time("frontend.sema_ns", || sema::analyze(&unit))
}
