//! Integration tests for the front-end: parsing + semantic analysis.

use safetsa_frontend::hir::*;
use safetsa_frontend::{compile, compile_many};

#[test]
fn compile_minimal() {
    let p = compile("class A { }").unwrap();
    let a = p.find_class("A").unwrap();
    assert!(p.class(a).superclass == Some(p.object));
    assert!(p.class(a).methods.iter().any(|m| m.name == "<init>"));
}

#[test]
fn builtins_present() {
    let p = compile("class A { }").unwrap();
    for name in [
        "Object",
        "String",
        "Throwable",
        "Exception",
        "Math",
        "Sys",
        "NullPointerException",
    ] {
        assert!(p.find_class(name).is_some(), "missing builtin {name}");
    }
}

#[test]
fn field_and_method_resolution() {
    let p = compile(
        "class A { int x; int get() { return x; } }
         class B extends A { int get2() { return x + get(); } }",
    )
    .unwrap();
    let b = p.find_class("B").unwrap();
    let get2 = p
        .class(b)
        .methods
        .iter()
        .find(|m| m.name == "get2")
        .unwrap();
    assert!(get2.body.is_some());
}

#[test]
fn vtable_override_shares_slot() {
    let p = compile(
        "class A { int f() { return 1; } int g() { return 2; } }
         class B extends A { int g() { return 3; } int h() { return 4; } }",
    )
    .unwrap();
    let a = p.find_class("A").unwrap();
    let b = p.find_class("B").unwrap();
    let a_g = p.class(a).methods.iter().find(|m| m.name == "g").unwrap();
    let b_g = p.class(b).methods.iter().find(|m| m.name == "g").unwrap();
    assert_eq!(a_g.vtable_slot, b_g.vtable_slot);
    let slot = b_g.vtable_slot.unwrap();
    assert_eq!(p.class(b).vtable[slot].0, b, "B's vtable points at B.g");
    let b_h = p.class(b).methods.iter().find(|m| m.name == "h").unwrap();
    assert_ne!(b_h.vtable_slot, b_g.vtable_slot);
}

#[test]
fn overload_resolution_picks_most_specific() {
    let p = compile(
        "class A {
             static int f(int x) { return 1; }
             static int f(double x) { return 2; }
             static int g() { return f(3); }
         }",
    )
    .unwrap();
    let a = p.find_class("A").unwrap();
    let g = p.class(a).methods.iter().find(|m| m.name == "g").unwrap();
    let body = g.body.as_ref().unwrap();
    if let Stmt::Return(Some(e)) = &body.stmts[0] {
        if let ExprKind::CallStatic { method, .. } = &e.kind {
            assert_eq!(
                p.class(a).methods[*method].params,
                vec![Ty::INT],
                "int overload chosen"
            );
            return;
        }
    }
    panic!("unexpected body shape");
}

#[test]
fn numeric_promotion_inserts_conv() {
    let p = compile("class A { static double f(int x, double y) { return x + y; } }").unwrap();
    let a = p.find_class("A").unwrap();
    let f = p.class(a).methods.iter().find(|m| m.name == "f").unwrap();
    if let Stmt::Return(Some(e)) = &f.body.as_ref().unwrap().stmts[0] {
        if let ExprKind::Binary { prim, l, .. } = &e.kind {
            assert_eq!(*prim, PrimTy::Double);
            assert!(matches!(l.kind, ExprKind::Conv { .. }));
            return;
        }
    }
    panic!("unexpected shape");
}

#[test]
fn string_concat_lowered() {
    let p = compile(r#"class A { static String f(int x) { return "v=" + x; } }"#).unwrap();
    let a = p.find_class("A").unwrap();
    let f = p.class(a).methods.iter().find(|m| m.name == "f").unwrap();
    if let Stmt::Return(Some(e)) = &f.body.as_ref().unwrap().stmts[0] {
        assert!(matches!(e.kind, ExprKind::CallVirtual { .. })); // concat
        return;
    }
    panic!("unexpected shape");
}

#[test]
fn missing_return_rejected() {
    let err = compile("class A { static int f(boolean b) { if (b) return 1; } }").unwrap_err();
    assert!(err.message.contains("missing return"), "{err}");
}

#[test]
fn both_branches_return_ok() {
    compile("class A { static int f(boolean b) { if (b) return 1; else return 2; } }").unwrap();
}

#[test]
fn unreachable_statement_rejected() {
    let err = compile("class A { static int f() { return 1; int x = 2; return x; } }").unwrap_err();
    assert!(err.message.contains("unreachable"), "{err}");
}

#[test]
fn while_true_with_break_completes() {
    compile(
        "class A { static int f() { int i = 0; while (true) { i++; if (i > 3) break; } return i; } }",
    )
    .unwrap();
}

#[test]
fn static_context_rejects_this() {
    let err = compile("class A { int x; static int f() { return x; } }").unwrap_err();
    assert!(err.message.contains("static"), "{err}");
}

#[test]
fn ctor_gets_implicit_super_and_field_inits() {
    let p = compile("class A { int x = 41; A() { x = x + 1; } }").unwrap();
    let a = p.find_class("A").unwrap();
    let ctor = p
        .class(a)
        .methods
        .iter()
        .find(|m| m.name == "<init>")
        .unwrap();
    let body = ctor.body.as_ref().unwrap();
    assert!(body.stmts.len() >= 3);
    assert!(matches!(
        &body.stmts[0],
        Stmt::Expr(Expr {
            kind: ExprKind::CallSpecial { .. },
            ..
        })
    ));
    assert!(matches!(
        &body.stmts[1],
        Stmt::Expr(Expr {
            kind: ExprKind::SetField { .. },
            ..
        })
    ));
}

#[test]
fn clinit_synthesized_for_static_inits() {
    let p = compile("class A { static int X = 7; static int[] T = {1,2}; }").unwrap();
    let a = p.find_class("A").unwrap();
    let clinit = p
        .class(a)
        .methods
        .iter()
        .find(|m| m.name == "<clinit>")
        .expect("clinit exists");
    assert_eq!(clinit.body.as_ref().unwrap().stmts.len(), 2);
}

#[test]
fn throw_requires_throwable() {
    let err = compile("class A { static void f(String s) { throw s; } }").unwrap_err();
    assert!(err.message.contains("Throwable"), "{err}");
    compile("class A { static void f() { throw new Exception(\"boom\"); } }").unwrap();
}

#[test]
fn user_exception_subclass() {
    compile(
        "class MyError extends Exception {
             int code;
             MyError(int c) { super(); code = c; }
         }
         class A { static void f() { throw new MyError(3); } }",
    )
    .unwrap();
}

#[test]
fn compound_assignment_narrowing() {
    compile("class A { static int f(int x, double d) { x += d; return x; } }").unwrap();
}

#[test]
fn duplicate_class_rejected() {
    assert!(compile("class A { } class A { }").is_err());
    assert!(compile("class String { }").is_err());
}

#[test]
fn cyclic_hierarchy_rejected() {
    let err = compile("class A extends B { } class B extends A { }").unwrap_err();
    assert!(err.message.contains("cyclic"), "{err}");
}

#[test]
fn unknown_method_rejected() {
    assert!(compile("class A { void f() { g(); } }").is_err());
}

#[test]
fn break_outside_loop_rejected() {
    assert!(compile("class A { void f() { break; } }").is_err());
}

#[test]
fn array_ops_check() {
    compile(
        "class A {
             static int sum(int[] a) {
                 int s = 0;
                 for (int i = 0; i < a.length; i++) s += a[i];
                 return s;
             }
         }",
    )
    .unwrap();
    assert!(compile("class A { static int f(int x) { return x.length; } }").is_err());
    assert!(compile("class A { static int f(int[] a, double d) { return a[d]; } }").is_err());
}

#[test]
fn casts() {
    compile(
        "class A {
             static int f(double d) { return (int) d; }
             static char g(long l) { return (char) l; }
         }
         class B extends A { }
         class C { static A h(Object o) { return (A) o; } }",
    )
    .unwrap();
    assert!(compile("class A { static boolean f(int x) { return (boolean) x; } }").is_err());
    assert!(compile("class A { } class B { static A f(B b) { return (A) b; } }").is_err());
}

#[test]
fn instance_vs_static_calls() {
    compile(
        "class A {
             int v;
             int get() { return v; }
             static int use(A a) { return a.get(); }
         }",
    )
    .unwrap();
    assert!(compile("class A { int g() { return 1; } static int f() { return g(); } }").is_err());
}

#[test]
fn ternary_lub() {
    compile(
        "class A { }
         class B extends A { }
         class C extends A { }
         class D {
             static A pick(boolean c, B b, C x) { return c ? b : x; }
             static double num(boolean c, int i, double d) { return c ? i : d; }
         }",
    )
    .unwrap();
}

#[test]
fn try_catch_finally_compiles() {
    compile(
        "class A {
             static int f(int x) {
                 int r = 0;
                 try { r = 10 / x; }
                 catch (ArithmeticException e) { r = -1; }
                 finally { r = r + 100; }
                 return r;
             }
         }",
    )
    .unwrap();
}

#[test]
fn compile_many_shares_classes() {
    let p = compile_many(&[
        "class A { static int one() { return 1; } }",
        "class B { static int two() { return A.one() + 1; } }",
    ])
    .unwrap();
    assert!(p.find_class("A").is_some());
    assert!(p.find_class("B").is_some());
}

#[test]
fn null_comparisons() {
    compile("class A { static boolean f(A a) { return a == null || a != null; } }").unwrap();
}

#[test]
fn shifts_with_long() {
    compile(
        "class A { static long f(long x, int s) { return (x << s) | (x >>> 3) | (x >> 1L); } }",
    )
    .unwrap();
}

#[test]
fn char_arithmetic_promotes() {
    compile("class A { static int f(char c) { return c + 1; } static boolean g(char a, char b) { return a < b; } }").unwrap();
}

#[test]
fn labeled_loops_resolve() {
    compile(
        "class A { static int f() {
             int s = 0;
             outer: for (int i = 0; i < 3; i++) {
                 for (int j = 0; j < 3; j++) {
                     if (j == 2) continue outer;
                     if (i == 2) break outer;
                     s++;
                 }
             }
             return s;
         } }",
    )
    .unwrap();
}

#[test]
fn unknown_label_rejected() {
    let err = compile("class A { static void f() { while (true) { break nope; } } }").unwrap_err();
    assert!(err.message.contains("unknown label"), "{err}");
}

#[test]
fn label_on_non_loop_rejected() {
    let err = compile("class A { static void f() { lab: { int x = 1; } } }").unwrap_err();
    assert!(err.message.contains("loops"), "{err}");
}

#[test]
fn duplicate_label_rejected() {
    let err = compile(
        "class A { static void f() {
             x: while (true) { x: while (true) { break x; } break; }
         } }",
    )
    .unwrap_err();
    assert!(err.message.contains("already in scope"), "{err}");
}

#[test]
fn while_true_with_labeled_break_completes() {
    // The break targets the OUTER loop, so the outer completes but the
    // inner `while(true)` (no break targeting it) does not.
    compile(
        "class A { static int f() {
             out: while (true) {
                 while (true) { break out; }
             }
             return 1;
         } }",
    )
    .unwrap();
    // No break reaches the loop: code after is unreachable.
    let err = compile(
        "class A { static int f() {
             while (true) { int x = 1; }
             return 1;
         } }",
    )
    .unwrap_err();
    assert!(err.message.contains("unreachable"), "{err}");
}
