//! Robustness property tests: the lexer, parser, and sema must return
//! errors (never panic) on arbitrary input.

use proptest::prelude::*;
use safetsa_frontend::{compile, lexer, parser};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lexer_never_panics(src in "\\PC*") {
        let _ = lexer::lex(&src);
    }

    #[test]
    fn parser_never_panics(src in "\\PC*") {
        if let Ok(toks) = lexer::lex(&src) {
            let _ = parser::parse(toks);
        }
    }

    #[test]
    fn compile_never_panics_on_java_ish_soup(
        words in proptest::collection::vec(
            prop_oneof![
                Just("class"), Just("int"), Just("if"), Just("else"),
                Just("while"), Just("return"), Just("{"), Just("}"),
                Just("("), Just(")"), Just(";"), Just("="), Just("+"),
                Just("x"), Just("y"), Just("A"), Just("B"), Just("0"),
                Just("1"), Just("new"), Just("static"), Just("try"),
                Just("catch"), Just("void"), Just("["), Just("]"),
                Just("."), Just(","), Just("for"), Just("break"),
            ],
            0..60,
        )
    ) {
        let src = words.join(" ");
        let _ = compile(&src);
    }
}

#[test]
fn pathological_nesting_is_handled() {
    // Moderate nesting compiles; adversarial depth is rejected with a
    // clean error instead of exhausting the stack.
    let nest = |n: usize| {
        let mut src = String::from("class A { static int f(int x) { return ");
        for _ in 0..n {
            src.push('(');
        }
        src.push('x');
        for _ in 0..n {
            src.push(')');
        }
        src.push_str("; } }");
        src
    };
    compile(&nest(40)).expect("40-deep parens compile");
    let err = compile(&nest(100_000)).unwrap_err();
    assert!(err.message.contains("nesting"), "{err}");
}

#[test]
fn deeply_nested_blocks() {
    let mut src = String::from("class A { static int f() { int x = 0; ");
    for _ in 0..40 {
        src.push_str("{ x = x + 1; ");
    }
    for _ in 0..40 {
        src.push('}');
    }
    src.push_str(" return x; } }");
    compile(&src).expect("deeply nested blocks compile");
}
