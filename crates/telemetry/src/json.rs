//! A minimal, dependency-free JSON document model.
//!
//! The workspace has no registry access, so instead of `serde` the
//! metrics report is built from this small value type. Objects keep
//! *insertion order*, which is what makes the emitted documents
//! byte-stable: the same pipeline produces the same key sequence every
//! run (the schema-stability golden test relies on it).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the common case for counters).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float, emitted with enough precision to round-trip.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object preserving insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Inserts (or replaces) `key` in an object; on non-objects this is
    /// a no-op, so builder chains stay infallible.
    pub fn set(&mut self, key: &str, value: Json) -> &mut Self {
        if let Json::Obj(pairs) = self {
            if let Some(slot) = pairs.iter_mut().find(|(k, _)| k == key) {
                slot.1 = value;
            } else {
                pairs.push((key.to_string(), value));
            }
        }
        self
    }

    /// Fetches a member of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Renders the value as compact single-line JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders the value as pretty-printed JSON, one member per line —
    /// the layout the golden schema test diffs line by line.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    // `{v:?}` keeps a trailing `.0` on integral floats,
                    // so the value re-parses as a float.
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_escapes() {
        assert_eq!(Json::U64(7).render(), "7");
        assert_eq!(Json::I64(-3).render(), "-3");
        assert_eq!(Json::F64(1.5).render(), "1.5");
        assert_eq!(Json::F64(2.0).render(), "2.0");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Str("a\"b\n".into()).render(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn object_preserves_insertion_order_and_replaces() {
        let mut o = Json::obj();
        o.set("b", Json::U64(1));
        o.set("a", Json::U64(2));
        o.set("b", Json::U64(3));
        assert_eq!(o.render(), "{\"b\":3,\"a\":2}");
        assert_eq!(o.get("b").and_then(Json::as_u64), Some(3));
    }

    #[test]
    fn pretty_puts_one_member_per_line() {
        let mut o = Json::obj();
        o.set("x", Json::Arr(vec![Json::U64(1), Json::U64(2)]));
        let text = o.render_pretty();
        assert_eq!(text.lines().count(), 6, "{text}");
        assert!(text.contains("\"x\": ["), "{text}");
    }
}
