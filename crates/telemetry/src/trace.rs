//! Structured spans and instant events — the causal half of telemetry.
//!
//! The metrics registry answers "how much"; this module answers
//! "when, inside what". A [`SpanRecord`] is one named interval with a
//! parent, a lane (the Chrome `tid`), monotonic start/end nanoseconds
//! relative to the trace epoch, and typed attributes. Spans nest
//! through a per-registry stack: whatever span is innermost-open when
//! a new span starts becomes its parent, so the pipeline's stage
//! structure falls out of ordinary lexical nesting with no plumbing.
//!
//! Traces are exported two ways:
//!
//! * a flat JSON span/event listing (schema [`TRACE_SCHEMA`]) — what
//!   the serve daemon's flight recorder retains per request and the
//!   determinism tests diff, and
//! * Chrome `trace_event` JSON (the `traceEvents` array of `ph:"X"`
//!   complete events and `ph:"i"` instants) — what `--trace-json`
//!   writes and `chrome://tracing` / Perfetto load directly.
//!
//! Timestamps are the only nondeterministic field: span names, ids,
//! parents, lanes and attributes are pure functions of the work
//! performed, which is what makes the `--jobs 1` vs `--jobs 8`
//! span-tree equality test possible.

use crate::json::Json;
use std::time::Instant;

/// Schema identifier stamped into every exported trace document.
/// Versioned separately from the metrics schema: adding span attributes
/// is compatible, renaming span fields bumps the suffix.
pub const TRACE_SCHEMA: &str = "safetsa-trace/1";

/// A typed span/event attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// An unsigned integer attribute.
    U64(u64),
    /// A string attribute.
    Str(String),
    /// A boolean attribute.
    Bool(bool),
}

impl AttrValue {
    /// The attribute as a JSON value.
    pub fn to_json(&self) -> Json {
        match self {
            AttrValue::U64(v) => Json::U64(*v),
            AttrValue::Str(s) => Json::Str(s.clone()),
            AttrValue::Bool(b) => Json::Bool(*b),
        }
    }
}

/// One completed span: a named interval in the causal tree.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span id, unique within one (merged) registry; ids start at 1.
    pub id: u64,
    /// Enclosing span, `None` for roots.
    pub parent: Option<u64>,
    /// Span name (a pipeline stage, `"request"`, `"task"`, …).
    pub name: String,
    /// Start, in monotonic nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// End, in monotonic nanoseconds since the trace epoch.
    pub end_ns: u64,
    /// Lane (exported as the Chrome `tid`): 0 for driver-level work,
    /// `task index + 1` for batch tasks — a scheduling-independent
    /// timeline assignment.
    pub lane: u32,
    /// Typed attributes, in recording order.
    pub attrs: Vec<(String, AttrValue)>,
}

/// One instant event (a cache probe outcome, a shed decision): a point
/// in time attached to the span that was open when it fired.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// The span this event fired inside, `None` at top level.
    pub parent: Option<u64>,
    /// Event name.
    pub name: String,
    /// Timestamp in monotonic nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Lane (Chrome `tid`).
    pub lane: u32,
    /// Typed attributes.
    pub attrs: Vec<(String, AttrValue)>,
}

/// A span opened but not yet closed.
#[derive(Debug)]
struct OpenSpan {
    id: u64,
    name: String,
    start_ns: u64,
    attrs: Vec<(String, AttrValue)>,
}

/// The per-registry trace buffer: an epoch, a stack of open spans, and
/// the completed records.
#[derive(Debug)]
pub(crate) struct TraceBuf {
    epoch: Instant,
    lane: u32,
    /// Next span id to assign (ids start at 1 so `0` can mean "no
    /// span" in the open/close API).
    next_id: u64,
    open: Vec<OpenSpan>,
    spans: Vec<SpanRecord>,
    events: Vec<EventRecord>,
}

impl TraceBuf {
    pub(crate) fn new(epoch: Instant, lane: u32) -> TraceBuf {
        TraceBuf {
            epoch,
            lane,
            next_id: 1,
            open: Vec::new(),
            spans: Vec::new(),
            events: Vec::new(),
        }
    }

    fn now_ns(&self) -> u64 {
        Instant::now()
            .saturating_duration_since(self.epoch)
            .as_nanos()
            .min(u64::MAX as u128) as u64
    }

    fn rel_ns(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.epoch)
            .as_nanos()
            .min(u64::MAX as u128) as u64
    }

    fn innermost(&self) -> Option<u64> {
        self.open.last().map(|s| s.id)
    }

    pub(crate) fn open(&mut self, name: &str) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.open.push(OpenSpan {
            id,
            name: name.to_string(),
            start_ns: self.now_ns(),
            attrs: Vec::new(),
        });
        id
    }

    /// Closes `id` and (defensively) any spans left open inside it —
    /// a panic that unwound past child `span_close` calls must not
    /// corrupt the nesting of later spans.
    pub(crate) fn close(&mut self, id: u64) {
        if !self.open.iter().any(|s| s.id == id) {
            return;
        }
        let end_ns = self.now_ns();
        while let Some(top) = self.open.pop() {
            let parent = self.innermost();
            let done = top.id == id;
            self.spans.push(SpanRecord {
                id: top.id,
                parent,
                name: top.name,
                start_ns: top.start_ns,
                end_ns,
                lane: self.lane,
                attrs: top.attrs,
            });
            if done {
                return;
            }
        }
    }

    pub(crate) fn attr(&mut self, key: &str, value: AttrValue) {
        if let Some(top) = self.open.last_mut() {
            top.attrs.push((key.to_string(), value));
        }
    }

    pub(crate) fn record_complete(
        &mut self,
        name: &str,
        start: Instant,
        end: Instant,
        attrs: &[(&str, AttrValue)],
    ) {
        let id = self.next_id;
        self.next_id += 1;
        let rec = SpanRecord {
            id,
            parent: self.innermost(),
            name: name.to_string(),
            start_ns: self.rel_ns(start),
            end_ns: self.rel_ns(end),
            lane: self.lane,
            attrs: own_attrs(attrs),
        };
        self.spans.push(rec);
    }

    pub(crate) fn event(&mut self, name: &str, attrs: &[(&str, AttrValue)]) {
        let rec = EventRecord {
            parent: self.innermost(),
            name: name.to_string(),
            ts_ns: self.now_ns(),
            lane: self.lane,
            attrs: own_attrs(attrs),
        };
        self.events.push(rec);
    }

    /// All spans: the completed ones, then every still-open span
    /// synthesized with `end = now` and an `unfinished` attribute —
    /// that is precisely the "what was in flight when the worker died"
    /// view the flight recorder wants after a panic.
    pub(crate) fn snapshot_spans(&self) -> Vec<SpanRecord> {
        let mut out = self.spans.clone();
        let end_ns = self.now_ns();
        for (depth, s) in self.open.iter().enumerate() {
            let parent = depth.checked_sub(1).map(|i| self.open[i].id);
            let mut attrs = s.attrs.clone();
            attrs.push(("unfinished".to_string(), AttrValue::Bool(true)));
            out.push(SpanRecord {
                id: s.id,
                parent,
                name: s.name.clone(),
                start_ns: s.start_ns,
                end_ns,
                lane: self.lane,
                attrs,
            });
        }
        out
    }

    pub(crate) fn snapshot_events(&self) -> Vec<EventRecord> {
        self.events.clone()
    }

    /// Appends another buffer's completed records, remapping its span
    /// ids past this buffer's and shifting its timestamps onto this
    /// buffer's epoch. Open spans in `other` are not merged (they
    /// belong to work still running over there).
    pub(crate) fn merge(&mut self, other: &TraceBuf) {
        let offset = self.next_id - 1;
        // Epoch shift: other's nanoseconds are relative to its own
        // epoch; express them relative to ours.
        let (add, sub) = match other.epoch.checked_duration_since(self.epoch) {
            Some(d) => (d.as_nanos().min(u64::MAX as u128) as u64, 0),
            None => (
                0,
                self.epoch
                    .saturating_duration_since(other.epoch)
                    .as_nanos()
                    .min(u64::MAX as u128) as u64,
            ),
        };
        let shift = |ns: u64| ns.saturating_add(add).saturating_sub(sub);
        for s in &other.spans {
            self.spans.push(SpanRecord {
                id: s.id + offset,
                parent: s.parent.map(|p| p + offset),
                name: s.name.clone(),
                start_ns: shift(s.start_ns),
                end_ns: shift(s.end_ns),
                lane: s.lane,
                attrs: s.attrs.clone(),
            });
        }
        for e in &other.events {
            self.events.push(EventRecord {
                parent: e.parent.map(|p| p + offset),
                name: e.name.clone(),
                ts_ns: shift(e.ts_ns),
                lane: e.lane,
                attrs: e.attrs.clone(),
            });
        }
        self.next_id += other.next_id - 1;
    }
}

fn own_attrs(attrs: &[(&str, AttrValue)]) -> Vec<(String, AttrValue)> {
    attrs
        .iter()
        .map(|(k, v)| ((*k).to_string(), v.clone()))
        .collect()
}

fn attrs_json(attrs: &[(String, AttrValue)]) -> Json {
    let mut o = Json::obj();
    for (k, v) in attrs {
        o.set(k, v.to_json());
    }
    o
}

/// Renders spans and events as the flat `safetsa-trace/1` listing:
/// `{"schema":…,"spans":[…],"events":[…]}`. Each span object carries
/// `id`, `parent`, `name`, `lane`, `start_ns`, `end_ns`, `attrs` — only
/// the `_ns` members are timing-dependent, everything else is
/// deterministic.
pub fn trace_to_json(spans: &[SpanRecord], events: &[EventRecord]) -> Json {
    let mut doc = Json::obj();
    doc.set("schema", Json::Str(TRACE_SCHEMA.into()));
    let items = spans
        .iter()
        .map(|s| {
            let mut o = Json::obj();
            o.set("id", Json::U64(s.id));
            o.set(
                "parent",
                s.parent.map_or(Json::Null, Json::U64),
            );
            o.set("name", Json::Str(s.name.clone()));
            o.set("lane", Json::U64(u64::from(s.lane)));
            o.set("start_ns", Json::U64(s.start_ns));
            o.set("end_ns", Json::U64(s.end_ns));
            o.set("attrs", attrs_json(&s.attrs));
            o
        })
        .collect();
    doc.set("spans", Json::Arr(items));
    let items = events
        .iter()
        .map(|e| {
            let mut o = Json::obj();
            o.set(
                "parent",
                e.parent.map_or(Json::Null, Json::U64),
            );
            o.set("name", Json::Str(e.name.clone()));
            o.set("lane", Json::U64(u64::from(e.lane)));
            o.set("ts_ns", Json::U64(e.ts_ns));
            o.set("attrs", attrs_json(&e.attrs));
            o
        })
        .collect();
    doc.set("events", Json::Arr(items));
    doc
}

/// Renders spans and events as Chrome `trace_event` JSON: an object
/// with the `traceEvents` array (complete `ph:"X"` events for spans,
/// `ph:"i"` instants for events; timestamps in microseconds) plus the
/// `schema` marker. Loads directly in `chrome://tracing` and Perfetto;
/// the span id/parent/attributes travel in `args`.
pub fn chrome_trace_json(spans: &[SpanRecord], events: &[EventRecord]) -> Json {
    chrome_trace_json_offset(spans, events, 0)
}

/// [`chrome_trace_json`] with every lane shifted by `tid_offset` —
/// lets a multi-request export (the flight recorder) give each request
/// its own row group.
pub fn chrome_trace_json_offset(
    spans: &[SpanRecord],
    events: &[EventRecord],
    tid_offset: u64,
) -> Json {
    let mut doc = Json::obj();
    doc.set("schema", Json::Str(TRACE_SCHEMA.into()));
    doc.set("displayTimeUnit", Json::Str("ms".into()));
    doc.set(
        "traceEvents",
        Json::Arr(chrome_events(spans, events, tid_offset)),
    );
    doc
}

/// The bare `traceEvents` entries (no enclosing document) — callers
/// that stitch several traces together concatenate these.
pub fn chrome_events(
    spans: &[SpanRecord],
    events: &[EventRecord],
    tid_offset: u64,
) -> Vec<Json> {
    let us = |ns: u64| Json::F64(ns as f64 / 1_000.0);
    let mut out = Vec::with_capacity(spans.len() + events.len());
    for s in spans {
        let mut o = Json::obj();
        o.set("name", Json::Str(s.name.clone()));
        o.set("cat", Json::Str("safetsa".into()));
        o.set("ph", Json::Str("X".into()));
        o.set("ts", us(s.start_ns));
        o.set("dur", us(s.end_ns.saturating_sub(s.start_ns)));
        o.set("pid", Json::U64(1));
        o.set("tid", Json::U64(u64::from(s.lane) + tid_offset));
        let mut args = Json::obj();
        args.set("id", Json::U64(s.id));
        args.set("parent", s.parent.map_or(Json::Null, Json::U64));
        for (k, v) in &s.attrs {
            args.set(k, v.to_json());
        }
        o.set("args", args);
        out.push(o);
    }
    for e in events {
        let mut o = Json::obj();
        o.set("name", Json::Str(e.name.clone()));
        o.set("cat", Json::Str("safetsa".into()));
        o.set("ph", Json::Str("i".into()));
        o.set("ts", us(e.ts_ns));
        o.set("s", Json::Str("t".into()));
        o.set("pid", Json::U64(1));
        o.set("tid", Json::U64(u64::from(e.lane) + tid_offset));
        let mut args = Json::obj();
        args.set("parent", e.parent.map_or(Json::Null, Json::U64));
        for (k, v) in &e.attrs {
            args.set(k, v.to_json());
        }
        o.set("args", args);
        out.push(o);
    }
    out
}
