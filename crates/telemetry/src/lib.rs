//! # safetsa-telemetry
//!
//! Lightweight instrumentation for the SafeTSA pipeline: monotonic
//! counters, span timers, and power-of-two histograms, collected in a
//! single-threaded [`Telemetry`] registry and exported as a
//! machine-readable JSON document with a stable key order.
//!
//! The paper's evaluation (§5, Tables 1–3 and Figures 5/6) is a set of
//! *measurements* — check-elimination rates, encoding-size ratios,
//! verification cost. Every pipeline stage records the quantities
//! behind those tables into this registry, and the CLI's
//! `--metrics-json` flag serializes it.
//!
//! ## Zero cost when disabled
//!
//! [`Telemetry::disabled`] carries no registry at all: every recording
//! method starts with a branch on an `Option` that is `None`, so the
//! disabled path does no allocation, no map lookup, and no clock read.
//! Hot loops (the VM's dispatch loop) additionally gate their own
//! bookkeeping on [`Telemetry::is_enabled`] so the per-instruction cost
//! of disabled telemetry is one predictable branch.
//!
//! # Examples
//!
//! ```
//! use safetsa_telemetry::Telemetry;
//!
//! let tm = Telemetry::enabled();
//! tm.add("opt.checks_eliminated", 3);
//! let sum = tm.time("frontend.lex_ns", || 1 + 1);
//! assert_eq!(sum, 2);
//! tm.observe("ssa.fn_instrs", 17);
//! let doc = tm.to_json();
//! assert_eq!(doc.get("opt").unwrap().get("checks_eliminated").unwrap().as_u64(), Some(3));
//!
//! // Disabled: records nothing, costs (almost) nothing.
//! let off = Telemetry::disabled();
//! off.add("opt.checks_eliminated", 3);
//! assert!(!off.is_enabled());
//! assert_eq!(off.to_json().render(), "{}");
//! ```

#![warn(missing_docs)]

pub mod json;
pub mod trace;

pub use json::Json;
pub use trace::{AttrValue, EventRecord, SpanRecord, TRACE_SCHEMA};

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;
use trace::TraceBuf;

/// Schema identifier stamped into every metrics document. Bump the
/// suffix when a key is renamed or removed; adding keys is
/// backwards-compatible and keeps the version.
pub const SCHEMA: &str = "safetsa-metrics/1";

/// A recorded metric.
#[derive(Debug, Clone, PartialEq)]
enum Metric {
    /// A monotonic counter.
    Counter(u64),
    /// An accumulated span duration in nanoseconds.
    TimeNs(u64),
    /// A distribution (boxed: a `Histogram` is ~300 bytes of buckets,
    /// far larger than the scalar variants).
    Hist(Box<Histogram>),
}

/// A fixed-size power-of-two-bucket histogram: bucket `i` counts
/// observations `v` with `⌈log₂(v+1)⌉ = i`. Tracks count, sum, min and
/// max exactly; the buckets give the shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Observation count.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// `buckets[i]` counts observations in `[2^(i-1), 2^i)` (bucket 0
    /// counts zeros).
    pub buckets: [u64; 33],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; 33],
        }
    }
}

impl Histogram {
    /// Merges another histogram into this one: counts, sums and buckets
    /// add; min/max widen. Merging is commutative and associative, so a
    /// fold over any partition of the observations equals observing
    /// them all into one histogram.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 || other.min < self.min {
            self.min = other.min;
        }
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (b, ob) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += ob;
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        if self.count == 0 || v < self.min {
            self.min = v;
        }
        self.max = self.max.max(v);
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        let b = (64 - v.leading_zeros()).min(32) as usize;
        self.buckets[b] += 1;
    }

    /// Mean of the observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("count", Json::U64(self.count));
        o.set("sum", Json::U64(self.sum));
        o.set("min", Json::U64(self.min));
        o.set("max", Json::U64(self.max));
        o.set("mean", Json::F64(self.mean()));
        o
    }
}

#[derive(Debug, Default)]
struct Registry {
    /// Dotted-path name → metric. A `BTreeMap` so the export order is
    /// the sorted key order — independent of recording order, which
    /// keeps the JSON schema stable across pipeline reorderings.
    metrics: BTreeMap<String, Metric>,
}

/// The instrumentation handle threaded through the pipeline.
///
/// Cloning is not needed: stages borrow `&Telemetry`. The registry is a
/// `RefCell` because the pipeline is single-threaded; recording from
/// within a `time` closure on the *same* name is the only re-entrancy
/// hazard and each method borrows only for the duration of one map
/// update.
#[derive(Debug, Default)]
pub struct Telemetry {
    inner: Option<RefCell<Registry>>,
    /// Trace buffer, populated only by the `with_trace*` constructors.
    /// Kept strictly separate from the metrics map: span/event calls
    /// never create counters, so a metrics-only registry exports the
    /// same document whether or not tracing code paths ran.
    tracing: Option<RefCell<TraceBuf>>,
}

impl Telemetry {
    /// A recording registry.
    pub fn enabled() -> Telemetry {
        Telemetry {
            inner: Some(RefCell::new(Registry::default())),
            tracing: None,
        }
    }

    /// A no-op registry: every recording call returns immediately.
    pub fn disabled() -> Telemetry {
        Telemetry {
            inner: None,
            tracing: None,
        }
    }

    /// A recording registry that also collects spans and events, with
    /// the trace epoch at construction time and lane 0.
    pub fn with_trace() -> Telemetry {
        Telemetry::with_trace_at(Instant::now(), 0)
    }

    /// A recording registry collecting spans relative to an explicit
    /// `epoch` on the given `lane` — how batch tasks share one time
    /// axis: every per-task registry is built against the batch epoch,
    /// on lane `task index + 1`, so merged traces line up.
    pub fn with_trace_at(epoch: Instant, lane: u32) -> Telemetry {
        Telemetry {
            inner: Some(RefCell::new(Registry::default())),
            tracing: Some(RefCell::new(TraceBuf::new(epoch, lane))),
        }
    }

    /// Whether this handle records anything. Hot loops may check once
    /// and skip their own bookkeeping entirely.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether this handle collects spans and events.
    pub fn is_tracing(&self) -> bool {
        self.tracing.is_some()
    }

    /// Adds `delta` to the counter `name` (creating it at zero).
    pub fn add(&self, name: &str, delta: u64) {
        let Some(inner) = &self.inner else { return };
        let mut reg = inner.borrow_mut();
        match reg
            .metrics
            .entry(name.to_string())
            .or_insert(Metric::Counter(0))
        {
            Metric::Counter(c) => *c = c.saturating_add(delta),
            _ => debug_assert!(false, "metric {name} is not a counter"),
        }
    }

    /// Sets the counter `name` to `value` (last write wins).
    pub fn set(&self, name: &str, value: u64) {
        let Some(inner) = &self.inner else { return };
        inner
            .borrow_mut()
            .metrics
            .insert(name.to_string(), Metric::Counter(value));
    }

    /// Reads back a counter or accumulated timer (for tests, report
    /// assembly, and the CLI's phase table).
    pub fn counter(&self, name: &str) -> Option<u64> {
        let inner = self.inner.as_ref()?;
        match inner.borrow().metrics.get(name) {
            Some(Metric::Counter(c)) => Some(*c),
            Some(Metric::TimeNs(t)) => Some(*t),
            _ => None,
        }
    }

    /// Records one observation into the histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        let Some(inner) = &self.inner else { return };
        let mut reg = inner.borrow_mut();
        match reg
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Hist(Box::default()))
        {
            Metric::Hist(h) => h.observe(value),
            _ => debug_assert!(false, "metric {name} is not a histogram"),
        }
    }

    /// Times `f`, accumulating the wall-clock nanoseconds under `name`.
    /// When disabled the closure runs directly — no clock is read.
    pub fn time<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        let Some(inner) = &self.inner else { return f() };
        let start = Instant::now();
        let out = f();
        let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let mut reg = inner.borrow_mut();
        match reg
            .metrics
            .entry(name.to_string())
            .or_insert(Metric::TimeNs(0))
        {
            Metric::TimeNs(t) => *t = t.saturating_add(ns),
            _ => debug_assert!(false, "metric {name} is not a timer"),
        }
        out
    }

    /// Records an externally measured duration under `name`.
    pub fn add_time_ns(&self, name: &str, ns: u64) {
        let Some(inner) = &self.inner else { return };
        let mut reg = inner.borrow_mut();
        match reg
            .metrics
            .entry(name.to_string())
            .or_insert(Metric::TimeNs(0))
        {
            Metric::TimeNs(t) => *t = t.saturating_add(ns),
            _ => debug_assert!(false, "metric {name} is not a timer"),
        }
    }

    /// Merges another registry into this one: counters and timers add,
    /// histograms merge bucket-wise. Summing is commutative and
    /// associative, so merging per-worker registries produces the same
    /// registry regardless of how tasks were scheduled across workers —
    /// and equals what a single registry would have recorded, provided
    /// the recording used the accumulating calls (`add` / `time` /
    /// `add_time_ns` / `observe`; a `set` is last-write-wins within one
    /// registry but sums across a merge, so absolute gauges should be
    /// recorded at most once per merged registry).
    ///
    /// Merging into a disabled registry is a no-op, as is merging a
    /// disabled registry in. On a kind mismatch (a counter merged onto
    /// a histogram) the existing metric is kept and the merge of that
    /// key is dropped, mirroring the recording methods' behavior.
    pub fn merge(&mut self, other: &Telemetry) {
        self.merge_trace(other);
        let (Some(inner), Some(oinner)) = (&self.inner, &other.inner) else {
            return;
        };
        let mut reg = inner.borrow_mut();
        for (name, metric) in &oinner.borrow().metrics {
            match reg.metrics.entry(name.clone()) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(metric.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    match (slot.get_mut(), metric) {
                        (Metric::Counter(a), Metric::Counter(b)) => *a = a.saturating_add(*b),
                        (Metric::TimeNs(a), Metric::TimeNs(b)) => *a = a.saturating_add(*b),
                        (Metric::Hist(a), Metric::Hist(b)) => a.merge(b),
                        _ => debug_assert!(false, "metric {name} merged with a different kind"),
                    }
                }
            }
        }
    }

    /// Serializes the registry as line-oriented plain text, one metric
    /// per line (`c name value`, `t name ns`, `h name count sum min max
    /// b0..b32`), in sorted key order. Unlike [`Telemetry::to_json`]
    /// this is lossless (histogram buckets included), so a registry can
    /// be persisted — the batch driver's module cache stores each
    /// program's metrics this way — and later [`Telemetry::import_flat`]ed
    /// and [`Telemetry::merge`]d as if the work had re-run.
    pub fn export_flat(&self) -> String {
        let mut out = String::new();
        let Some(inner) = &self.inner else { return out };
        for (name, metric) in &inner.borrow().metrics {
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "c {name} {c}");
                }
                Metric::TimeNs(t) => {
                    let _ = writeln!(out, "t {name} {t}");
                }
                Metric::Hist(h) => {
                    let _ = write!(out, "h {name} {} {} {} {}", h.count, h.sum, h.min, h.max);
                    for b in h.buckets {
                        let _ = write!(out, " {b}");
                    }
                    out.push('\n');
                }
            }
        }
        out
    }

    /// Parses a document produced by [`Telemetry::export_flat`] into a
    /// fresh (enabled) registry.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn import_flat(text: &str) -> Result<Telemetry, String> {
        let tm = Telemetry::enabled();
        {
            let inner = tm.inner.as_ref().expect("enabled");
            let mut reg = inner.borrow_mut();
            for (lineno, line) in text.lines().enumerate() {
                let bad = || format!("line {}: malformed metric `{line}`", lineno + 1);
                let mut parts = line.split(' ');
                let (Some(kind), Some(name)) = (parts.next(), parts.next()) else {
                    return Err(bad());
                };
                let num = |parts: &mut std::str::Split<'_, char>| -> Result<u64, String> {
                    parts
                        .next()
                        .and_then(|v| v.parse::<u64>().ok())
                        .ok_or_else(bad)
                };
                let metric = match kind {
                    "c" => Metric::Counter(num(&mut parts)?),
                    "t" => Metric::TimeNs(num(&mut parts)?),
                    "h" => {
                        let mut h = Histogram {
                            count: num(&mut parts)?,
                            sum: num(&mut parts)?,
                            min: num(&mut parts)?,
                            max: num(&mut parts)?,
                            buckets: [0; 33],
                        };
                        for b in h.buckets.iter_mut() {
                            *b = num(&mut parts)?;
                        }
                        Metric::Hist(Box::new(h))
                    }
                    _ => return Err(bad()),
                };
                if parts.next().is_some() {
                    return Err(bad());
                }
                reg.metrics.insert(name.to_string(), metric);
            }
        }
        Ok(tm)
    }

    /// Exports the registry as a nested JSON object: dotted metric
    /// paths become nested objects (`"opt.cse.removed"` →
    /// `{"opt":{"cse":{"removed":…}}}`), members in sorted-path order.
    pub fn to_json(&self) -> Json {
        let mut root = Json::obj();
        let Some(inner) = &self.inner else { return root };
        for (path, metric) in &inner.borrow().metrics {
            let value = match metric {
                Metric::Counter(c) => Json::U64(*c),
                Metric::TimeNs(t) => Json::U64(*t),
                Metric::Hist(h) => h.to_json(),
            };
            insert_path(&mut root, path, value);
        }
        root
    }

    /// Wraps the registry export into a full metrics document:
    /// `{schema, command, subject, metrics}` — the shape `safetsa
    /// compile/run --metrics-json` writes and `BENCH_pipeline.json`
    /// aggregates.
    pub fn report(&self, command: &str, subject: &str) -> Json {
        let mut doc = Json::obj();
        doc.set("schema", Json::Str(SCHEMA.into()));
        doc.set("command", Json::Str(command.into()));
        doc.set("subject", Json::Str(subject.into()));
        doc.set("metrics", self.to_json());
        doc
    }

    /// Renders selected counters as a compact `k=v` line — the CLI's
    /// stderr resource report. Missing keys render as `k=?` so a typo
    /// is visible instead of silent. The leading path segments are
    /// dropped from the label (`vm.steps` → `steps=…`).
    pub fn summary_line(&self, keys: &[&str]) -> String {
        let mut parts = Vec::with_capacity(keys.len());
        for key in keys {
            let label = key.rsplit('.').next().unwrap_or(key);
            match self.counter(key) {
                Some(v) => parts.push(format!("{label}={v}")),
                None => parts.push(format!("{label}=?")),
            }
        }
        parts.join(" ")
    }

    // ----- spans & events (no-ops unless built `with_trace*`) -----

    /// Runs `f` inside a span named `name`: the span opens before and
    /// closes after, and any span opened within `f` nests under it. If
    /// `f` panics the span stays open — deliberately: the unfinished
    /// span is exactly what a post-panic snapshot should show.
    pub fn span<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        let Some(buf) = &self.tracing else { return f() };
        let id = buf.borrow_mut().open(name);
        let out = f();
        buf.borrow_mut().close(id);
        out
    }

    /// Opens a span and returns its id (0 when tracing is off) for the
    /// non-lexical cases; close with [`Telemetry::span_close`].
    pub fn span_open(&self, name: &str) -> u64 {
        match &self.tracing {
            Some(buf) => buf.borrow_mut().open(name),
            None => 0,
        }
    }

    /// Closes the span returned by [`Telemetry::span_open`], along with
    /// any spans still open inside it. Unknown ids (including 0) are
    /// ignored.
    pub fn span_close(&self, id: u64) {
        if let Some(buf) = &self.tracing {
            buf.borrow_mut().close(id);
        }
    }

    /// Attaches a typed attribute to the innermost open span.
    pub fn span_attr(&self, key: &str, value: AttrValue) {
        if let Some(buf) = &self.tracing {
            buf.borrow_mut().attr(key, value);
        }
    }

    /// Records an already-measured interval as a completed span under
    /// the innermost open span — for durations observed from outside
    /// (queue wait measured between admission and dispatch, worker
    /// lifetimes reassembled after a join).
    pub fn record_span(
        &self,
        name: &str,
        start: Instant,
        end: Instant,
        attrs: &[(&str, AttrValue)],
    ) {
        if let Some(buf) = &self.tracing {
            buf.borrow_mut().record_complete(name, start, end, attrs);
        }
    }

    /// Records an instant event attached to the innermost open span.
    pub fn event(&self, name: &str, attrs: &[(&str, AttrValue)]) {
        if let Some(buf) = &self.tracing {
            buf.borrow_mut().event(name, attrs);
        }
    }

    /// All spans recorded so far; still-open spans are synthesized with
    /// `end = now` and an `unfinished: true` attribute.
    pub fn trace_spans(&self) -> Vec<SpanRecord> {
        match &self.tracing {
            Some(buf) => buf.borrow().snapshot_spans(),
            None => Vec::new(),
        }
    }

    /// All instant events recorded so far.
    pub fn trace_events(&self) -> Vec<EventRecord> {
        match &self.tracing {
            Some(buf) => buf.borrow().snapshot_events(),
            None => Vec::new(),
        }
    }

    /// The flat `safetsa-trace/1` listing of this registry's spans and
    /// events (see [`trace::trace_to_json`]).
    pub fn trace_to_json(&self) -> Json {
        trace::trace_to_json(&self.trace_spans(), &self.trace_events())
    }

    /// This registry's trace as Chrome `trace_event` JSON (see
    /// [`trace::chrome_trace_json`]).
    pub fn to_chrome_trace(&self) -> Json {
        trace::chrome_trace_json(&self.trace_spans(), &self.trace_events())
    }

    /// Merges another registry's *completed* trace records into this
    /// one (span ids remapped past ours, timestamps shifted onto our
    /// epoch; `other`'s still-open spans are skipped — they belong to
    /// work that has not finished there). A no-op unless both sides
    /// are tracing; [`Telemetry::merge`] calls this first.
    pub fn merge_trace(&mut self, other: &Telemetry) {
        if let (Some(buf), Some(obuf)) = (&self.tracing, &other.tracing) {
            buf.borrow_mut().merge(&obuf.borrow());
        }
    }
}

fn insert_path(root: &mut Json, path: &str, value: Json) {
    let mut cur = root;
    let mut rest = path;
    while let Some((head, tail)) = rest.split_once('.') {
        if cur.get(head).is_none() {
            cur.set(head, Json::obj());
        }
        let Json::Obj(pairs) = cur else { unreachable!() };
        cur = &mut pairs
            .iter_mut()
            .find(|(k, _)| k == head)
            .expect("just inserted")
            .1;
        // A leaf and a subtree may collide ("a" and "a.b"); the subtree
        // wins — replace the scalar with an object.
        if !matches!(cur, Json::Obj(_)) {
            *cur = Json::obj();
        }
        rest = tail;
    }
    cur.set(rest, value);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_nest() {
        let tm = Telemetry::enabled();
        tm.add("a.b.c", 2);
        tm.add("a.b.c", 3);
        tm.add("a.x", 1);
        let doc = tm.to_json();
        assert_eq!(
            doc.get("a").unwrap().get("b").unwrap().get("c").unwrap(),
            &Json::U64(5)
        );
        assert_eq!(tm.counter("a.x"), Some(1));
    }

    #[test]
    fn disabled_records_nothing() {
        let tm = Telemetry::disabled();
        tm.add("c", 1);
        tm.set("c", 9);
        tm.observe("h", 4);
        tm.add_time_ns("t", 100);
        assert_eq!(tm.time("t", || 41 + 1), 42);
        assert_eq!(tm.to_json().render(), "{}");
        assert_eq!(tm.counter("c"), None);
    }

    #[test]
    fn histogram_tracks_shape() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 8, 1024] {
            h.observe(v);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1024);
        assert_eq!(h.sum, 1038);
        assert_eq!(h.buckets[0], 1); // the zero
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2, 3
        assert!((h.mean() - 173.0).abs() < 0.001);
    }

    #[test]
    fn export_order_is_sorted_not_insertion() {
        let tm = Telemetry::enabled();
        tm.add("z.last", 1);
        tm.add("a.first", 1);
        let text = tm.to_json().render();
        assert!(text.find("a").unwrap() < text.find("z").unwrap(), "{text}");
    }

    #[test]
    fn summary_line_labels_and_missing_keys() {
        let tm = Telemetry::enabled();
        tm.set("vm.steps", 12);
        tm.set("vm.heap_bytes", 30);
        assert_eq!(
            tm.summary_line(&["vm.steps", "vm.heap_bytes", "vm.nope"]),
            "steps=12 heap_bytes=30 nope=?"
        );
    }

    /// The batch driver's correctness condition: recording a stream of
    /// events split across two registries and merging must equal
    /// recording the whole stream into one registry.
    #[test]
    fn merge_equals_single_registry_recording() {
        let record = |tm: &Telemetry, vals: &[u64]| {
            for &v in vals {
                tm.add("a.counter", v);
                tm.add_time_ns("a.span_ns", v * 3);
                tm.observe("a.hist", v);
            }
        };
        let whole = Telemetry::enabled();
        record(&whole, &[0, 1, 5, 9, 1024, 7]);
        let left = Telemetry::enabled();
        record(&left, &[0, 1, 5]);
        let right = Telemetry::enabled();
        record(&right, &[9, 1024, 7]);
        let mut merged = Telemetry::enabled();
        merged.merge(&left);
        merged.merge(&right);
        assert_eq!(merged.to_json().render(), whole.to_json().render());
        assert_eq!(merged.export_flat(), whole.export_flat());
        // Merge order must not matter either.
        let mut flipped = Telemetry::enabled();
        flipped.merge(&right);
        flipped.merge(&left);
        assert_eq!(flipped.export_flat(), whole.export_flat());
    }

    #[test]
    fn merge_with_disabled_is_noop() {
        let mut tm = Telemetry::enabled();
        tm.add("k", 2);
        tm.merge(&Telemetry::disabled());
        assert_eq!(tm.counter("k"), Some(2));
        let mut off = Telemetry::disabled();
        off.merge(&tm);
        assert_eq!(off.to_json().render(), "{}");
    }

    #[test]
    fn flat_round_trips_losslessly() {
        let tm = Telemetry::enabled();
        tm.add("x.count", 41);
        tm.add_time_ns("x.span_ns", 9000);
        for v in [0, 3, 3, 900] {
            tm.observe("x.sizes", v);
        }
        let text = tm.export_flat();
        let back = Telemetry::import_flat(&text).unwrap();
        assert_eq!(back.export_flat(), text);
        assert_eq!(back.counter("x.count"), Some(41));
        // A merged reimport doubles everything, proving buckets survive.
        let mut doubled = Telemetry::import_flat(&text).unwrap();
        doubled.merge(&back);
        for v in [0, 3, 3, 900] {
            tm.observe("x.sizes", v);
        }
        tm.add("x.count", 41);
        tm.add_time_ns("x.span_ns", 9000);
        assert_eq!(doubled.export_flat(), tm.export_flat());
    }

    #[test]
    fn import_flat_rejects_malformed_lines() {
        assert!(Telemetry::import_flat("c missing-value").is_err());
        assert!(Telemetry::import_flat("q name 3").is_err());
        assert!(Telemetry::import_flat("c name 3 extra").is_err());
        assert!(Telemetry::import_flat("h name 1 2 3").is_err());
    }

    #[test]
    fn time_accumulates_across_spans() {
        let tm = Telemetry::enabled();
        tm.time("t.ns", || std::hint::black_box(()));
        tm.add_time_ns("t.ns", 5);
        let doc = tm.to_json();
        assert!(doc.get("t").unwrap().get("ns").unwrap().as_u64().unwrap() >= 5);
    }

    #[test]
    fn spans_nest_lexically() {
        let tm = Telemetry::with_trace();
        tm.span("outer", || {
            tm.span_attr("k", AttrValue::U64(7));
            tm.span("inner", || {});
            tm.event("tick", &[("hit", AttrValue::Bool(true))]);
        });
        let spans = tm.trace_spans();
        assert_eq!(spans.len(), 2);
        // Inner closed first, so it is recorded first.
        let inner = &spans[0];
        let outer = &spans[1];
        assert_eq!(inner.name, "inner");
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.parent, None);
        assert_eq!(outer.attrs, vec![("k".to_string(), AttrValue::U64(7))]);
        let events = tm.trace_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].parent, Some(outer.id));
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.end_ns <= outer.end_ns);
    }

    #[test]
    fn open_spans_snapshot_as_unfinished() {
        let tm = Telemetry::with_trace();
        let root = tm.span_open("request");
        tm.span_open("vm.run");
        let spans = tm.trace_spans();
        assert_eq!(spans.len(), 2);
        assert!(spans
            .iter()
            .all(|s| s.attrs.contains(&("unfinished".into(), AttrValue::Bool(true)))));
        assert_eq!(spans[1].parent, Some(root));
        // Closing the root closes the orphan child too.
        tm.span_close(root);
        let spans = tm.trace_spans();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| !s
            .attrs
            .contains(&("unfinished".into(), AttrValue::Bool(true)))));
    }

    #[test]
    fn tracing_adds_zero_counters() {
        // The overhead contract: span/event recording must never touch
        // the metrics map, and a non-tracing registry must stay
        // span-free no matter which tracing calls run against it.
        let tm = Telemetry::with_trace();
        tm.span("stage", || {});
        tm.event("probe", &[]);
        assert_eq!(tm.to_json().render(), "{}");
        assert_eq!(tm.export_flat(), "");
        let plain = Telemetry::enabled();
        plain.span("stage", || {});
        assert_eq!(plain.span_open("x"), 0);
        plain.event("probe", &[]);
        assert!(plain.trace_spans().is_empty());
        assert!(!plain.is_tracing());
        let off = Telemetry::disabled();
        off.span("stage", || {});
        assert!(off.trace_spans().is_empty());
    }

    #[test]
    fn trace_merge_remaps_ids_onto_one_epoch() {
        let epoch = Instant::now();
        let mut base = Telemetry::with_trace_at(epoch, 0);
        base.span("batch-setup", || {});
        let task = Telemetry::with_trace_at(epoch, 3);
        task.span("task", || {
            task.span("frontend", || {});
        });
        base.merge(&task);
        let spans = base.trace_spans();
        assert_eq!(spans.len(), 3);
        let ids: Vec<u64> = spans.iter().map(|s| s.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "merged ids must stay unique: {ids:?}");
        let frontend = spans.iter().find(|s| s.name == "frontend").unwrap();
        let task_span = spans.iter().find(|s| s.name == "task").unwrap();
        assert_eq!(frontend.parent, Some(task_span.id));
        assert_eq!(task_span.lane, 3);
        // Fresh ids after a merge do not collide with merged ones.
        base.span("post", || {});
        let spans = base.trace_spans();
        let mut ids: Vec<u64> = spans.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4);
    }

    #[test]
    fn chrome_export_shape() {
        let tm = Telemetry::with_trace();
        tm.span("compile", || tm.event("cache.probe", &[]));
        let doc = tm.to_chrome_trace();
        assert_eq!(
            doc.get("schema"),
            Some(&Json::Str(TRACE_SCHEMA.into()))
        );
        let Some(Json::Arr(events)) = doc.get("traceEvents") else {
            panic!("missing traceEvents: {}", doc.render());
        };
        assert_eq!(events.len(), 2);
        for e in events {
            for key in ["name", "ph", "ts", "pid", "tid", "args"] {
                assert!(e.get(key).is_some(), "missing {key}: {}", e.render());
            }
        }
        assert_eq!(events[0].get("ph"), Some(&Json::Str("X".into())));
        assert!(events[0].get("dur").is_some());
        assert_eq!(events[1].get("ph"), Some(&Json::Str("i".into())));
        assert_eq!(events[1].get("s"), Some(&Json::Str("t".into())));
    }
}
