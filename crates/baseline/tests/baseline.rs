//! Baseline toolchain tests: compile → dataflow-verify → execute, and
//! class-file serialization sanity.

use safetsa_baseline::{classfile, compile, interp, verify};
use safetsa_frontend::compile as fe_compile;
use safetsa_rt::Value;

fn run(src: &str, entry: &str) -> (Option<Value>, String) {
    let prog = fe_compile(src).expect("front-end");
    let mut code = compile::compile_program(&prog);
    verify::verify_program(&prog, &mut code).expect("bytecode verifies");
    let mut vm = interp::Bvm::load(&prog, &code);
    vm.set_fuel(50_000_000);
    let r = vm.run_entry(entry).expect("runs");
    (r, vm.output.text().to_string())
}

fn run_int(src: &str, entry: &str) -> i32 {
    match run(src, entry).0 {
        Some(Value::I(v)) => v,
        other => panic!("expected int, got {other:?}"),
    }
}

#[test]
fn arithmetic() {
    assert_eq!(
        run_int(
            "class A { static int main() { return 2 + 3 * 4 - 5 / 2; } }",
            "A.main"
        ),
        12
    );
}

#[test]
fn loops_and_branches() {
    assert_eq!(
        run_int(
            "class A { static int main() {
                 int s = 0;
                 for (int i = 1; i <= 10; i++) if (i % 2 == 0) s += i;
                 int j = 0;
                 while (j < 3) { s += 100; j++; }
                 do { s++; } while (false);
                 return s;
             } }",
            "A.main"
        ),
        331
    );
}

#[test]
fn objects_and_dispatch() {
    assert_eq!(
        run_int(
            "class Shape { int area() { return 0; } }
             class Sq extends Shape { int s; Sq(int s) { this.s = s; } int area() { return s * s; } }
             class Main { static int main() { Shape x = new Sq(6); return x.area(); } }",
            "Main.main"
        ),
        36
    );
}

#[test]
fn exceptions() {
    assert_eq!(
        run_int(
            "class A { static int main() {
                 int r = 0;
                 try { r = 10 / 0; } catch (ArithmeticException e) { r = -1; }
                 int[] a = new int[2];
                 try { r += a[5]; } catch (IndexOutOfBoundsException e) { r -= 10; }
                 return r;
             } }",
            "A.main"
        ),
        -11
    );
}

#[test]
fn strings_and_prints() {
    let (_, out) = run(
        r#"class A { static int main() {
               Sys.println("x=" + 4 + " y=" + 2.5 + " b=" + true);
               return 0;
           } }"#,
        "A.main",
    );
    assert_eq!(out, "x=4 y=2.5 b=true\n");
}

#[test]
fn long_shift_and_char() {
    let (_, out) = run(
        r#"class A { static int main() {
               long x = 1L << 33;
               Sys.println(x);
               char c = 'A';
               c++;
               Sys.println(c);
               boolean[] flags = new boolean[2];
               flags[1] = true;
               Sys.println(flags[1]);
               char[] cs = new char[3];
               cs[0] = 'z';
               Sys.println(cs[0]);
               return 0;
           } }"#,
        "A.main",
    );
    assert_eq!(out, "8589934592\nB\ntrue\nz\n");
}

#[test]
fn verifier_computes_max_stack() {
    let prog = fe_compile(
        "class A { static int f(int a, int b, int c) { return a * b + b * c + a * c; } }",
    )
    .unwrap();
    let mut code = compile::compile_program(&prog);
    verify::verify_program(&prog, &mut code).unwrap();
    let a = prog.find_class("A").unwrap();
    let f = prog.classes[a]
        .methods
        .iter()
        .position(|m| m.name == "f")
        .unwrap();
    let c = code.code(a, f).unwrap();
    assert!(
        c.max_stack >= 2 && c.max_stack <= 4,
        "max_stack={}",
        c.max_stack
    );
}

#[test]
fn verifier_rejects_corrupt_code() {
    use safetsa_baseline::opcode::Op;
    let prog = fe_compile("class A { static int f(int x) { return x + 1; } }").unwrap();
    let mut code = compile::compile_program(&prog);
    let a = prog.find_class("A").unwrap();
    let f = prog.classes[a]
        .methods
        .iter()
        .position(|m| m.name == "f")
        .unwrap();
    // Corrupt: replace iadd with ladd (type mismatch).
    let body = code.methods.get_mut(&(a, f)).unwrap();
    for op in &mut body.ops {
        if *op == Op::IAdd {
            *op = Op::LAdd;
        }
    }
    assert!(verify::verify_program(&prog, &mut code).is_err());
}

#[test]
fn verifier_rejects_stack_depth_mismatch_at_join() {
    use safetsa_baseline::opcode::{Code, Op};
    let prog = fe_compile("class A { static int f(int x) { return x; } }").unwrap();
    let a = prog.find_class("A").unwrap();
    let f = prog.classes[a]
        .methods
        .iter()
        .position(|m| m.name == "f")
        .unwrap();
    // Hand-craft: iconst pushed on one path only → depth mismatch at 3.
    let code = Code {
        ops: vec![
            Op::ILoad(0),  // 0
            Op::IfEq(3),   // 1: jump with depth 0
            Op::IConst(1), // 2: depth 1 on fall-through
            Op::IReturn,   // 3: merge of depth 0 and 1 → error
        ],
        ex_table: vec![],
        max_stack: 2,
        max_locals: 1,
        strings: vec![],
        types: vec![],
    };
    let err = verify::verify_method(&prog, a, f, &code).unwrap_err();
    assert!(
        err.0.contains("mismatch") || err.0.contains("underflow"),
        "{err}"
    );
}

#[test]
fn classfile_bytes_look_like_classfiles() {
    let prog = fe_compile(
        r#"class Point {
               int x; int y;
               Point(int x, int y) { this.x = x; this.y = y; }
               int dist2() { return x * x + y * y; }
               static double len(Point p) { return Math.sqrt(p.dist2()); }
           }"#,
    )
    .unwrap();
    let mut code = compile::compile_program(&prog);
    verify::verify_program(&prog, &mut code).unwrap();
    let p = prog.find_class("Point").unwrap();
    let bytes = classfile::serialize_class(&prog, &code, p);
    assert_eq!(&bytes[0..4], &[0xCA, 0xFE, 0xBA, 0xBE]);
    assert!(bytes.len() > 200, "non-trivial file: {}", bytes.len());
    // Class name appears in the constant pool.
    let needle = b"Point";
    assert!(bytes.windows(needle.len()).any(|w| w == needle));
    // Descriptors appear too.
    assert!(bytes.windows(4).any(|w| w == b"(II)"));
}

#[test]
fn iinc_peephole_used() {
    use safetsa_baseline::opcode::Op;
    let prog = fe_compile(
        "class A { static int f() { int s = 0; for (int i = 0; i < 9; i++) s += 2; return s; } }",
    )
    .unwrap();
    let code = compile::compile_program(&prog);
    let a = prog.find_class("A").unwrap();
    let f = prog.classes[a]
        .methods
        .iter()
        .position(|m| m.name == "f")
        .unwrap();
    let body = code.code(a, f).unwrap();
    let iincs = body
        .ops
        .iter()
        .filter(|o| matches!(o, Op::IInc(_, _)))
        .count();
    assert!(iincs >= 2, "i++ and s+=2 both become iinc: {iincs}");
}

#[test]
fn recursion_and_statics() {
    assert_eq!(
        run_int(
            "class A { static int CALLS = 0;
                      static int fib(int n) { CALLS++; if (n < 2) return n; return fib(n-1) + fib(n-2); }
                      static int main() { int r = fib(10); return r * 1000 + CALLS; } }",
            "A.main"
        ),
        55_000 + 177
    );
}
