//! HIR → stack-code compiler, in the straightforward javac style the
//! paper's measurements assume (`javac -g:none`): no optimization, one
//! pass, `iinc` peephole, branch-form compilation of boolean
//! expressions, bottom-tested loops.

use crate::opcode::{ArrayKind, Code, ExTableEntry, Label, Op};
use safetsa_frontend::hir::{
    BinOp, Body, Class, ClassIdx, Expr, ExprKind, Lit, MethodIdx, MethodKind, PrimTy, Program,
    Stmt, Ty, UnOp,
};
use std::collections::HashMap;

/// A whole compiled program: code per `(class, method)` with a body.
#[derive(Debug, Default)]
pub struct CompiledProgram {
    /// Compiled bodies.
    pub methods: HashMap<(ClassIdx, MethodIdx), Code>,
}

impl CompiledProgram {
    /// Looks up a compiled body.
    pub fn code(&self, class: ClassIdx, method: MethodIdx) -> Option<&Code> {
        self.methods.get(&(class, method))
    }

    /// Total instruction count (Figure 5 metric).
    pub fn instr_count(&self) -> usize {
        self.methods.values().map(|c| c.instr_count()).sum()
    }
}

/// Compiles every user method body; `max_stack` is filled in by running
/// the dataflow analysis of [`crate::verify`] afterwards.
pub fn compile_program(prog: &Program) -> CompiledProgram {
    let mut out = CompiledProgram::default();
    for (ci, class) in prog.classes.iter().enumerate() {
        for (mi, method) in class.methods.iter().enumerate() {
            if let Some(body) = &method.body {
                let code = compile_method(prog, class, body, method.kind);
                out.methods.insert((ci, mi), code);
            }
        }
    }
    out
}

/// Slot width of a type (long/double take two JVM slots).
fn width(ty: &Ty) -> u16 {
    match ty {
        Ty::Prim(PrimTy::Long | PrimTy::Double) => 2,
        Ty::Void => 0,
        _ => 1,
    }
}

fn compile_method(prog: &Program, _class: &Class, body: &Body, _kind: MethodKind) -> Code {
    let mut slots = Vec::with_capacity(body.locals.len());
    let mut next = 0u16;
    for l in &body.locals {
        slots.push(next);
        next += width(&l.ty);
    }
    let mut c = C {
        prog,
        body,
        ops: Vec::new(),
        ex_table: Vec::new(),
        strings: Vec::new(),
        string_ids: HashMap::new(),
        types: Vec::new(),
        slots,
        max_locals: next,
        labels: Vec::new(),
        loops: Vec::new(),
    };
    c.stmts(&body.stmts);
    // Ensure the method ends with a return (void fall-through).
    if c.falls_into_next() {
        c.ops.push(Op::Return);
    }
    c.patch_labels();
    Code {
        ops: c.ops,
        ex_table: c.ex_table,
        max_stack: 0, // filled by the dataflow analysis
        max_locals: c.max_locals,
        strings: c.strings,
        types: c.types,
    }
}

struct LoopCtx {
    continue_label: usize,
    break_label: usize,
}

struct C<'a> {
    prog: &'a Program,
    body: &'a Body,
    ops: Vec<Op>,
    ex_table: Vec<ExTableEntry>,
    strings: Vec<String>,
    string_ids: HashMap<String, u32>,
    types: Vec<Ty>,
    slots: Vec<u16>,
    max_locals: u16,
    /// Label table: position once bound.
    labels: Vec<Option<u32>>,
    loops: Vec<LoopCtx>,
}

impl<'a> C<'a> {
    fn emit(&mut self, op: Op) {
        self.ops.push(op);
    }

    fn new_label(&mut self) -> usize {
        self.labels.push(None);
        self.labels.len() - 1
    }

    fn bind(&mut self, l: usize) {
        debug_assert!(self.labels[l].is_none(), "label bound twice");
        self.labels[l] = Some(self.ops.len() as u32);
    }

    /// Emits a branch whose target is patched later; the label id is
    /// stored in the target field with a high-bit marker.
    fn emit_branch(&mut self, mut op: Op, label: usize) {
        op.set_branch_target(LABEL_MARK | label as Label);
        self.ops.push(op);
    }

    fn patch_labels(&mut self) {
        for op in &mut self.ops {
            if let Some(t) = op.branch_target() {
                if t & LABEL_MARK != 0 {
                    let l = (t & !LABEL_MARK) as usize;
                    let pos = self.labels[l].expect("label bound");
                    op.set_branch_target(pos);
                }
            }
        }
    }

    fn type_id(&mut self, t: &Ty) -> u32 {
        if let Some(i) = self.types.iter().position(|x| x == t) {
            return i as u32;
        }
        self.types.push(t.clone());
        (self.types.len() - 1) as u32
    }

    fn string_id(&mut self, s: &str) -> u32 {
        if let Some(&i) = self.string_ids.get(s) {
            return i;
        }
        let i = self.strings.len() as u32;
        self.strings.push(s.to_string());
        self.string_ids.insert(s.to_string(), i);
        i
    }

    /// Whether control can reach the current end of the code: the last
    /// instruction falls through, or some label is bound right here
    /// (a branch from inside an earlier construct lands at this point).
    fn falls_into_next(&self) -> bool {
        let here = self.ops.len() as u32;
        !self.ops.last().map(Op::is_terminator).unwrap_or(false)
            || self.labels.contains(&Some(here))
    }

    fn slot(&self, local: usize) -> u16 {
        self.slots[local]
    }

    fn local_ty(&self, local: usize) -> &Ty {
        &self.body.locals[local].ty
    }

    // ------------------------------------------------------ statements

    fn stmts(&mut self, list: &[Stmt]) {
        for s in list {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Expr(e) => self.expr_for_effect(e),
            Stmt::If { cond, then, els } => {
                let else_l = self.new_label();
                self.branch(cond, false, else_l);
                self.stmts(then);
                if els.is_empty() {
                    self.bind(else_l);
                } else {
                    let end = self.new_label();
                    if self.falls_into_next() {
                        self.emit_branch(Op::Goto(0), end);
                    }
                    self.bind(else_l);
                    self.stmts(els);
                    self.bind(end);
                }
            }
            Stmt::While { cond, body } => {
                // javac shape: goto cond; body: …; cond: if(cond) goto body
                let cond_l = self.new_label();
                let body_l = self.new_label();
                let end_l = self.new_label();
                self.emit_branch(Op::Goto(0), cond_l);
                self.bind(body_l);
                self.loops.push(LoopCtx {
                    continue_label: cond_l,
                    break_label: end_l,
                });
                self.stmts(body);
                self.loops.pop();
                self.bind(cond_l);
                self.branch(cond, true, body_l);
                self.bind(end_l);
            }
            Stmt::DoWhile { body, cond } => {
                let body_l = self.new_label();
                let cond_l = self.new_label();
                let end_l = self.new_label();
                self.bind(body_l);
                self.loops.push(LoopCtx {
                    continue_label: cond_l,
                    break_label: end_l,
                });
                self.stmts(body);
                self.loops.pop();
                self.bind(cond_l);
                self.branch(cond, true, body_l);
                self.bind(end_l);
            }
            Stmt::For { cond, update, body } => {
                let cond_l = self.new_label();
                let body_l = self.new_label();
                let update_l = self.new_label();
                let end_l = self.new_label();
                self.emit_branch(Op::Goto(0), cond_l);
                self.bind(body_l);
                self.loops.push(LoopCtx {
                    continue_label: update_l,
                    break_label: end_l,
                });
                self.stmts(body);
                self.loops.pop();
                self.bind(update_l);
                for u in update {
                    self.expr_for_effect(u);
                }
                self.bind(cond_l);
                match cond {
                    Some(c) => self.branch(c, true, body_l),
                    None => self.emit_branch(Op::Goto(0), body_l),
                }
                self.bind(end_l);
            }
            Stmt::Break { depth } => {
                let idx = self.loops.len() - 1 - depth;
                let l = self.loops[idx].break_label;
                self.emit_branch(Op::Goto(0), l);
            }
            Stmt::Continue { depth } => {
                let idx = self.loops.len() - 1 - depth;
                let l = self.loops[idx].continue_label;
                self.emit_branch(Op::Goto(0), l);
            }
            Stmt::Return(e) => match e {
                None => self.emit(Op::Return),
                Some(e) => {
                    self.expr(e);
                    self.emit(match &e.ty {
                        Ty::Prim(PrimTy::Long) => Op::LReturn,
                        Ty::Prim(PrimTy::Float) => Op::FReturn,
                        Ty::Prim(PrimTy::Double) => Op::DReturn,
                        Ty::Prim(_) => Op::IReturn,
                        _ => Op::AReturn,
                    });
                }
            },
            Stmt::Throw(e) => {
                self.expr(e);
                self.emit(Op::AThrow);
            }
            Stmt::Try {
                body,
                catches,
                finally,
            } => {
                debug_assert!(finally.is_none(), "finally desugared by sema");
                let start = self.ops.len() as u32;
                self.stmts(body);
                let end = self.ops.len() as u32;
                let after = self.new_label();
                if self.falls_into_next() {
                    self.emit_branch(Op::Goto(0), after);
                }
                for arm in catches {
                    let handler = self.ops.len() as u32;
                    self.ex_table.push(ExTableEntry {
                        start,
                        end,
                        handler,
                        class: arm.class,
                    });
                    self.emit(Op::AStore(self.slot(arm.local)));
                    self.stmts(&arm.body);
                    if self.falls_into_next() {
                        self.emit_branch(Op::Goto(0), after);
                    }
                }
                self.bind(after);
            }
        }
    }

    // --------------------------------------------- boolean branch form

    /// Compiles `e` as control flow: jumps to `target` when the value
    /// equals `jump_if`, falls through otherwise (javac's genCond).
    fn branch(&mut self, e: &Expr, jump_if: bool, target: usize) {
        match &e.kind {
            ExprKind::Lit(Lit::Bool(b)) => {
                if *b == jump_if {
                    self.emit_branch(Op::Goto(0), target);
                }
            }
            ExprKind::Unary {
                op: UnOp::Not,
                expr,
                ..
            } => self.branch(expr, !jump_if, target),
            ExprKind::And { l, r } => {
                if jump_if {
                    // both must hold: l false → skip
                    let skip = self.new_label();
                    self.branch(l, false, skip);
                    self.branch(r, true, target);
                    self.bind(skip);
                } else {
                    self.branch(l, false, target);
                    self.branch(r, false, target);
                }
            }
            ExprKind::Or { l, r } => {
                if jump_if {
                    self.branch(l, true, target);
                    self.branch(r, true, target);
                } else {
                    let skip = self.new_label();
                    self.branch(l, true, skip);
                    self.branch(r, false, target);
                    self.bind(skip);
                }
            }
            ExprKind::Binary { op, prim, l, r } if op.is_comparison() => {
                self.compare_branch(*op, *prim, l, r, jump_if, target);
            }
            ExprKind::RefCmp { l, r, eq } => {
                // null comparisons use ifnull/ifnonnull
                let lnull = matches!(l.kind, ExprKind::Lit(Lit::Null))
                    || matches!(l.kind, ExprKind::CastRef { ref expr, .. } if matches!(expr.kind, ExprKind::Lit(Lit::Null)));
                let rnull = matches!(r.kind, ExprKind::Lit(Lit::Null))
                    || matches!(r.kind, ExprKind::CastRef { ref expr, .. } if matches!(expr.kind, ExprKind::Lit(Lit::Null)));
                if rnull && !lnull {
                    self.expr(l);
                    let want_eq = *eq == jump_if;
                    self.emit_branch(
                        if want_eq {
                            Op::IfNull(0)
                        } else {
                            Op::IfNonNull(0)
                        },
                        target,
                    );
                } else if lnull && !rnull {
                    self.expr(r);
                    let want_eq = *eq == jump_if;
                    self.emit_branch(
                        if want_eq {
                            Op::IfNull(0)
                        } else {
                            Op::IfNonNull(0)
                        },
                        target,
                    );
                } else {
                    self.expr(l);
                    self.expr(r);
                    let want_eq = *eq == jump_if;
                    self.emit_branch(
                        if want_eq {
                            Op::IfACmpEq(0)
                        } else {
                            Op::IfACmpNe(0)
                        },
                        target,
                    );
                }
            }
            _ => {
                // Generic boolean value: compare against zero.
                self.expr(e);
                self.emit_branch(if jump_if { Op::IfNe(0) } else { Op::IfEq(0) }, target);
            }
        }
    }

    fn compare_branch(
        &mut self,
        op: BinOp,
        prim: PrimTy,
        l: &Expr,
        r: &Expr,
        jump_if: bool,
        target: usize,
    ) {
        // Effective operator when the branch is taken.
        let eff = if jump_if { op } else { negate_cmp(op) };
        match prim {
            PrimTy::Int | PrimTy::Char | PrimTy::Bool => {
                // `x op 0` uses the single-operand forms.
                let rzero = matches!(r.kind, ExprKind::Lit(Lit::Int(0)));
                self.expr(l);
                if rzero {
                    self.emit_branch(zero_cmp_op(eff), target);
                } else {
                    self.expr(r);
                    self.emit_branch(icmp_op(eff), target);
                }
            }
            PrimTy::Long => {
                self.expr(l);
                self.expr(r);
                self.emit(Op::LCmp);
                self.emit_branch(zero_cmp_op(eff), target);
            }
            PrimTy::Float => {
                self.expr(l);
                self.expr(r);
                // NaN discipline: < and <= must not jump on NaN.
                self.emit(match eff {
                    BinOp::Lt | BinOp::Le => Op::FCmpG,
                    _ => Op::FCmpL,
                });
                self.emit_branch(zero_cmp_op(eff), target);
            }
            PrimTy::Double => {
                self.expr(l);
                self.expr(r);
                self.emit(match eff {
                    BinOp::Lt | BinOp::Le => Op::DCmpG,
                    _ => Op::DCmpL,
                });
                self.emit_branch(zero_cmp_op(eff), target);
            }
        }
    }

    // ------------------------------------------------ effect position

    fn expr_for_effect(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::AssignLocal { local, value } => {
                // iinc peephole: i = i + c
                if let Some(c) = iinc_delta(*local, value) {
                    if self.local_ty(*local) == &Ty::INT && (-32768..=32767).contains(&c) {
                        self.emit(Op::IInc(self.slot(*local), c as i16));
                        return;
                    }
                }
                self.expr(value);
                self.store_local(*local);
            }
            ExprKind::SetField {
                obj,
                class,
                field,
                value,
            } => {
                self.expr(obj);
                self.expr(value);
                self.emit(Op::PutField(*class, *field));
            }
            ExprKind::SetStatic {
                class,
                field,
                value,
            } => {
                self.expr(value);
                self.emit(Op::PutStatic(*class, *field));
            }
            ExprKind::SetElem { arr, idx, value } => {
                self.expr(arr);
                self.expr(idx);
                self.expr(value);
                self.emit(self.astore_op(&value.ty));
            }
            ExprKind::CallStatic { .. }
            | ExprKind::CallVirtual { .. }
            | ExprKind::CallSpecial { .. }
            | ExprKind::New { .. } => {
                self.expr_keep(e, false);
            }
            ExprKind::Seq { effects, result } => {
                for eff in effects {
                    self.expr_for_effect(eff);
                }
                self.expr_for_effect(result);
            }
            ExprKind::Lit(_) | ExprKind::Local(_) => {} // pure, no effect
            _ => {
                self.expr(e);
                self.pop_value(&e.ty);
            }
        }
    }

    fn pop_value(&mut self, ty: &Ty) {
        match width(ty) {
            0 => {}
            2 => self.emit(Op::Pop2),
            _ => self.emit(Op::Pop),
        }
    }

    // ------------------------------------------------- value position

    fn expr(&mut self, e: &Expr) {
        self.expr_keep(e, true);
    }

    /// Compiles `e`; when `keep` is false, call results are discarded.
    fn expr_keep(&mut self, e: &Expr, keep: bool) {
        match &e.kind {
            ExprKind::Lit(l) => self.literal(l),
            ExprKind::Local(l) => self.load_local(*l),
            ExprKind::AssignLocal { local, value } => {
                self.expr(value);
                self.dup_value(&e.ty);
                self.store_local(*local);
            }
            ExprKind::GetField { obj, class, field } => {
                self.expr(obj);
                self.emit(Op::GetField(*class, *field));
            }
            ExprKind::SetField {
                obj,
                class,
                field,
                value,
            } => {
                self.expr(obj);
                self.expr(value);
                // keep the value under the objectref
                if width(&e.ty) == 2 {
                    self.emit(Op::Dup2X1);
                } else {
                    self.emit(Op::DupX1);
                }
                self.emit(Op::PutField(*class, *field));
            }
            ExprKind::GetStatic { class, field } => self.emit(Op::GetStatic(*class, *field)),
            ExprKind::SetStatic {
                class,
                field,
                value,
            } => {
                self.expr(value);
                self.dup_value(&e.ty);
                self.emit(Op::PutStatic(*class, *field));
            }
            ExprKind::GetElem { arr, idx } => {
                self.expr(arr);
                self.expr(idx);
                self.emit(self.aload_op(&e.ty));
            }
            ExprKind::SetElem { arr, idx, value } => {
                self.expr(arr);
                self.expr(idx);
                self.expr(value);
                if width(&e.ty) == 2 {
                    self.emit(Op::Dup2X2);
                } else {
                    self.emit(Op::DupX2);
                }
                self.emit(self.astore_op(&value.ty));
            }
            ExprKind::ArrayLen { arr } => {
                self.expr(arr);
                self.emit(Op::ArrayLength);
            }
            ExprKind::Unary { op, prim, expr } => {
                self.expr(expr);
                match (op, prim) {
                    (UnOp::Neg, PrimTy::Int) => self.emit(Op::INeg),
                    (UnOp::Neg, PrimTy::Long) => self.emit(Op::LNeg),
                    (UnOp::Neg, PrimTy::Float) => self.emit(Op::FNeg),
                    (UnOp::Neg, PrimTy::Double) => self.emit(Op::DNeg),
                    (UnOp::BitNot, PrimTy::Int) => {
                        self.emit(Op::IConst(-1));
                        self.emit(Op::IXor);
                    }
                    (UnOp::BitNot, PrimTy::Long) => {
                        self.emit(Op::LConst(-1));
                        self.emit(Op::LXor);
                    }
                    (UnOp::Not, _) => {
                        self.emit(Op::IConst(1));
                        self.emit(Op::IXor);
                    }
                    _ => unreachable!("bad unary"),
                }
            }
            ExprKind::Binary { op, prim, l, r } => {
                if op.is_comparison() {
                    self.materialize_bool(e);
                } else {
                    self.expr(l);
                    self.expr(r);
                    self.emit(arith_op(*op, *prim));
                }
            }
            ExprKind::RefCmp { .. } | ExprKind::And { .. } | ExprKind::Or { .. } => {
                self.materialize_bool(e)
            }
            ExprKind::Cond { cond, then, els } => {
                let else_l = self.new_label();
                let end_l = self.new_label();
                self.branch(cond, false, else_l);
                self.expr(then);
                self.emit_branch(Op::Goto(0), end_l);
                self.bind(else_l);
                self.expr(els);
                self.bind(end_l);
            }
            ExprKind::Conv { from, to, expr } => {
                self.expr(expr);
                if let Some(op) = conv_op(*from, *to) {
                    self.emit(op);
                }
            }
            ExprKind::CallStatic {
                class,
                method,
                args,
            } => {
                for a in args {
                    self.expr(a);
                }
                self.emit(Op::InvokeStatic(*class, *method));
                self.discard_result(*class, *method, keep);
            }
            ExprKind::CallVirtual {
                class,
                method,
                recv,
                args,
            } => {
                self.expr(recv);
                for a in args {
                    self.expr(a);
                }
                self.emit(Op::InvokeVirtual(*class, *method));
                self.discard_result(*class, *method, keep);
            }
            ExprKind::CallSpecial {
                class,
                method,
                recv,
                args,
            } => {
                self.expr(recv);
                for a in args {
                    self.expr(a);
                }
                self.emit(Op::InvokeSpecial(*class, *method));
                self.discard_result(*class, *method, keep);
            }
            ExprKind::New { class, ctor, args } => {
                self.emit(Op::New(*class));
                if keep {
                    self.emit(Op::Dup);
                }
                for a in args {
                    self.expr(a);
                }
                self.emit(Op::InvokeSpecial(*class, *ctor));
            }
            ExprKind::NewArray { elem, len } => {
                self.expr(len);
                let tid = self.type_id(&e.ty);
                self.emit(Op::NewArray(array_kind(elem), tid));
            }
            ExprKind::ArrayLit { elem, elems } => {
                self.emit(Op::IConst(elems.len() as i32));
                let tid = self.type_id(&e.ty);
                self.emit(Op::NewArray(array_kind(elem), tid));
                for (i, el) in elems.iter().enumerate() {
                    self.emit(Op::Dup);
                    self.emit(Op::IConst(i as i32));
                    self.expr(el);
                    self.emit(self.astore_op(elem));
                }
            }
            ExprKind::CastRef {
                target,
                expr,
                checked,
            } => {
                self.expr(expr);
                if *checked {
                    let tid = self.type_id(target);
                    self.emit(Op::CheckCast(tid));
                }
            }
            ExprKind::InstanceOf { expr, target } => {
                self.expr(expr);
                let tid = self.type_id(target);
                self.emit(Op::InstanceOf(tid));
            }
            ExprKind::Seq { effects, result } => {
                for eff in effects {
                    self.expr_for_effect(eff);
                }
                self.expr_keep(result, keep);
            }
        }
    }

    fn discard_result(&mut self, class: ClassIdx, method: MethodIdx, keep: bool) {
        if keep {
            return;
        }
        let ret = &self.prog.method(class, method).ret;
        self.pop_value(ret);
    }

    /// Materializes a boolean expression as 0/1 via branches.
    fn materialize_bool(&mut self, e: &Expr) {
        let true_l = self.new_label();
        let end_l = self.new_label();
        self.branch(e, true, true_l);
        self.emit(Op::IConst(0));
        self.emit_branch(Op::Goto(0), end_l);
        self.bind(true_l);
        self.emit(Op::IConst(1));
        self.bind(end_l);
    }

    fn dup_value(&mut self, ty: &Ty) {
        if width(ty) == 2 {
            self.emit(Op::Dup2);
        } else {
            self.emit(Op::Dup);
        }
    }

    fn literal(&mut self, l: &Lit) {
        match l {
            Lit::Bool(b) => self.emit(Op::IConst(i32::from(*b))),
            Lit::Char(c) => self.emit(Op::IConst(*c as i32)),
            Lit::Int(v) => self.emit(Op::IConst(*v)),
            Lit::Long(v) => self.emit(Op::LConst(*v)),
            Lit::Float(v) => self.emit(Op::FConst(*v)),
            Lit::Double(v) => self.emit(Op::DConst(*v)),
            Lit::Str(s) => {
                let id = self.string_id(s);
                self.emit(Op::SConst(id));
            }
            Lit::Null => self.emit(Op::AConstNull),
        }
    }

    fn load_local(&mut self, l: usize) {
        let slot = self.slot(l);
        self.emit(match self.local_ty(l) {
            Ty::Prim(PrimTy::Long) => Op::LLoad(slot),
            Ty::Prim(PrimTy::Float) => Op::FLoad(slot),
            Ty::Prim(PrimTy::Double) => Op::DLoad(slot),
            Ty::Prim(_) => Op::ILoad(slot),
            _ => Op::ALoad(slot),
        });
    }

    fn store_local(&mut self, l: usize) {
        let slot = self.slot(l);
        self.emit(match self.local_ty(l) {
            Ty::Prim(PrimTy::Long) => Op::LStore(slot),
            Ty::Prim(PrimTy::Float) => Op::FStore(slot),
            Ty::Prim(PrimTy::Double) => Op::DStore(slot),
            Ty::Prim(_) => Op::IStore(slot),
            _ => Op::AStore(slot),
        });
    }

    fn aload_op(&self, elem: &Ty) -> Op {
        match elem {
            Ty::Prim(PrimTy::Bool) => Op::BALoad,
            Ty::Prim(PrimTy::Char) => Op::CALoad,
            Ty::Prim(PrimTy::Int) => Op::IALoad,
            Ty::Prim(PrimTy::Long) => Op::LALoad,
            Ty::Prim(PrimTy::Float) => Op::FALoad,
            Ty::Prim(PrimTy::Double) => Op::DALoad,
            _ => Op::AALoad,
        }
    }

    fn astore_op(&self, elem: &Ty) -> Op {
        match elem {
            Ty::Prim(PrimTy::Bool) => Op::BAStore,
            Ty::Prim(PrimTy::Char) => Op::CAStore,
            Ty::Prim(PrimTy::Int) => Op::IAStore,
            Ty::Prim(PrimTy::Long) => Op::LAStore,
            Ty::Prim(PrimTy::Float) => Op::FAStore,
            Ty::Prim(PrimTy::Double) => Op::DAStore,
            _ => Op::AAStore,
        }
    }
}

const LABEL_MARK: Label = 0x8000_0000;

/// `i = i + c` / `i = i - c` with `i` int-typed → `iinc` delta.
fn iinc_delta(local: usize, value: &Expr) -> Option<i64> {
    if let ExprKind::Binary {
        op,
        prim: PrimTy::Int,
        l,
        r,
    } = &value.kind
    {
        if let (ExprKind::Local(ll), ExprKind::Lit(Lit::Int(c))) = (&l.kind, &r.kind) {
            if *ll == local {
                return match op {
                    BinOp::Add => Some(*c as i64),
                    BinOp::Sub => Some(-(*c as i64)),
                    _ => None,
                };
            }
        }
    }
    None
}

fn negate_cmp(op: BinOp) -> BinOp {
    match op {
        BinOp::Eq => BinOp::Ne,
        BinOp::Ne => BinOp::Eq,
        BinOp::Lt => BinOp::Ge,
        BinOp::Le => BinOp::Gt,
        BinOp::Gt => BinOp::Le,
        BinOp::Ge => BinOp::Lt,
        _ => unreachable!("not a comparison"),
    }
}

fn zero_cmp_op(op: BinOp) -> Op {
    match op {
        BinOp::Eq => Op::IfEq(0),
        BinOp::Ne => Op::IfNe(0),
        BinOp::Lt => Op::IfLt(0),
        BinOp::Le => Op::IfLe(0),
        BinOp::Gt => Op::IfGt(0),
        BinOp::Ge => Op::IfGe(0),
        _ => unreachable!("not a comparison"),
    }
}

fn icmp_op(op: BinOp) -> Op {
    match op {
        BinOp::Eq => Op::IfICmpEq(0),
        BinOp::Ne => Op::IfICmpNe(0),
        BinOp::Lt => Op::IfICmpLt(0),
        BinOp::Le => Op::IfICmpLe(0),
        BinOp::Gt => Op::IfICmpGt(0),
        BinOp::Ge => Op::IfICmpGe(0),
        _ => unreachable!("not a comparison"),
    }
}

fn arith_op(op: BinOp, prim: PrimTy) -> Op {
    use BinOp::*;
    use PrimTy::*;
    match (prim, op) {
        (Int | Char | Bool, Add) => Op::IAdd,
        (Int | Char | Bool, Sub) => Op::ISub,
        (Int, Mul) => Op::IMul,
        (Int, Div) => Op::IDiv,
        (Int, Rem) => Op::IRem,
        (Int | Bool, BitAnd) => Op::IAnd,
        (Int | Bool, BitOr) => Op::IOr,
        (Int | Bool, BitXor) => Op::IXor,
        (Int, Shl) => Op::IShl,
        (Int, Shr) => Op::IShr,
        (Int, Ushr) => Op::IUshr,
        (Long, Add) => Op::LAdd,
        (Long, Sub) => Op::LSub,
        (Long, Mul) => Op::LMul,
        (Long, Div) => Op::LDiv,
        (Long, Rem) => Op::LRem,
        (Long, BitAnd) => Op::LAnd,
        (Long, BitOr) => Op::LOr,
        (Long, BitXor) => Op::LXor,
        (Long, Shl) => Op::LShl,
        (Long, Shr) => Op::LShr,
        (Long, Ushr) => Op::LUshr,
        (Float, Add) => Op::FAdd,
        (Float, Sub) => Op::FSub,
        (Float, Mul) => Op::FMul,
        (Float, Div) => Op::FDiv,
        (Float, Rem) => Op::FRem,
        (Double, Add) => Op::DAdd,
        (Double, Sub) => Op::DSub,
        (Double, Mul) => Op::DMul,
        (Double, Div) => Op::DDiv,
        (Double, Rem) => Op::DRem,
        _ => unreachable!("bad arith {op:?} on {prim:?}"),
    }
}

fn conv_op(from: PrimTy, to: PrimTy) -> Option<Op> {
    use PrimTy::*;
    Some(match (from, to) {
        (Char, Int) => return None, // chars already live as ints
        (Int, Char) => Op::I2C,
        (Int, Long) => Op::I2L,
        (Int, Float) => Op::I2F,
        (Int, Double) => Op::I2D,
        (Long, Int) => Op::L2I,
        (Long, Float) => Op::L2F,
        (Long, Double) => Op::L2D,
        (Float, Int) => Op::F2I,
        (Float, Long) => Op::F2L,
        (Float, Double) => Op::F2D,
        (Double, Int) => Op::D2I,
        (Double, Long) => Op::D2L,
        (Double, Float) => Op::D2F,
        _ => return None,
    })
}

fn array_kind(elem: &Ty) -> ArrayKind {
    match elem {
        Ty::Prim(PrimTy::Bool) => ArrayKind::Bool,
        Ty::Prim(PrimTy::Char) => ArrayKind::Char,
        Ty::Prim(PrimTy::Int) => ArrayKind::Int,
        Ty::Prim(PrimTy::Long) => ArrayKind::Long,
        Ty::Prim(PrimTy::Float) => ArrayKind::Float,
        Ty::Prim(PrimTy::Double) => ArrayKind::Double,
        _ => ArrayKind::Ref,
    }
}
