//! The baseline's stack-machine instruction set: a faithful subset of
//! Java bytecode (typed arithmetic, slot-addressed locals, composed
//! memory operations like `iaload` that bundle null check + bounds
//! check + load — exactly the composition the paper's §9 criticizes).
//!
//! Instructions are kept structured for the interpreter and verifier;
//! [`Op::encoded_len`] gives the byte size the instruction would have
//! in a real class file (used by the Figure 5 size comparison).

use safetsa_frontend::hir::{ClassIdx, FieldIdx, MethodIdx, Ty};

/// A jump target: an index into the method's instruction list (a real
/// class file would use byte offsets; instruction indices keep the
/// interpreter simple while `encoded_len` preserves realistic sizes).
pub type Label = u32;

/// Primitive array element kinds (for `newarray`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum ArrayKind {
    Bool,
    Char,
    Int,
    Long,
    Float,
    Double,
    /// Reference arrays (`anewarray`), with the element described by a
    /// constant-pool class entry in a real class file.
    Ref,
}

/// One baseline instruction.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum Op {
    // ----- constants -----
    IConst(i32),
    LConst(i64),
    FConst(f32),
    DConst(f64),
    /// Load a string literal (constant-pool index in a class file).
    SConst(u32),
    AConstNull,

    // ----- locals -----
    ILoad(u16),
    LLoad(u16),
    FLoad(u16),
    DLoad(u16),
    ALoad(u16),
    IStore(u16),
    LStore(u16),
    FStore(u16),
    DStore(u16),
    AStore(u16),
    IInc(u16, i16),

    // ----- stack -----
    Pop,
    Pop2,
    Dup,
    Dup2,
    DupX1,
    DupX2,
    Dup2X1,
    Dup2X2,
    Swap,

    // ----- int arithmetic -----
    IAdd,
    ISub,
    IMul,
    IDiv,
    IRem,
    INeg,
    IShl,
    IShr,
    IUshr,
    IAnd,
    IOr,
    IXor,
    // ----- long arithmetic -----
    LAdd,
    LSub,
    LMul,
    LDiv,
    LRem,
    LNeg,
    LShl,
    LShr,
    LUshr,
    LAnd,
    LOr,
    LXor,
    // ----- float/double arithmetic -----
    FAdd,
    FSub,
    FMul,
    FDiv,
    FRem,
    FNeg,
    DAdd,
    DSub,
    DMul,
    DDiv,
    DRem,
    DNeg,

    // ----- conversions -----
    I2L,
    I2F,
    I2D,
    I2C,
    L2I,
    L2F,
    L2D,
    F2I,
    F2L,
    F2D,
    D2I,
    D2L,
    D2F,

    // ----- comparisons producing int -----
    LCmp,
    FCmpL,
    FCmpG,
    DCmpL,
    DCmpG,

    // ----- branches -----
    IfEq(Label),
    IfNe(Label),
    IfLt(Label),
    IfLe(Label),
    IfGt(Label),
    IfGe(Label),
    IfICmpEq(Label),
    IfICmpNe(Label),
    IfICmpLt(Label),
    IfICmpLe(Label),
    IfICmpGt(Label),
    IfICmpGe(Label),
    IfACmpEq(Label),
    IfACmpNe(Label),
    IfNull(Label),
    IfNonNull(Label),
    Goto(Label),

    // ----- arrays (composed operations: address computation + null
    // check + bounds check + access, per the paper's iaload remark) ----
    /// Allocate an array: element kind + index into the method's type
    /// pool recording the full array type (for `instanceof`).
    NewArray(ArrayKind, u32),
    ArrayLength,
    IALoad,
    LALoad,
    FALoad,
    DALoad,
    AALoad,
    BALoad,
    CALoad,
    IAStore,
    LAStore,
    FAStore,
    DAStore,
    AAStore,
    BAStore,
    CAStore,

    // ----- objects -----
    New(ClassIdx),
    GetField(ClassIdx, FieldIdx),
    PutField(ClassIdx, FieldIdx),
    GetStatic(ClassIdx, FieldIdx),
    PutStatic(ClassIdx, FieldIdx),
    InvokeVirtual(ClassIdx, MethodIdx),
    InvokeSpecial(ClassIdx, MethodIdx),
    InvokeStatic(ClassIdx, MethodIdx),
    CheckCast(u32),
    InstanceOf(u32),
    AThrow,

    // ----- returns -----
    IReturn,
    LReturn,
    FReturn,
    DReturn,
    AReturn,
    Return,
}

impl Op {
    /// The byte length this instruction would occupy in a class file
    /// (standard JVM encodings; `ldc` variants approximated by the wide
    /// forms where operands exceed the short ranges).
    pub fn encoded_len(&self) -> usize {
        use Op::*;
        match self {
            IConst(v) => match *v {
                -1..=5 => 1,         // iconst_<n>
                -128..=127 => 2,     // bipush
                -32768..=32767 => 3, // sipush
                _ => 3,              // ldc_w
            },
            LConst(v) => match *v {
                0 | 1 => 1, // lconst_<n>
                _ => 3,     // ldc2_w
            },
            FConst(v) => {
                if *v == 0.0 || *v == 1.0 || *v == 2.0 {
                    1
                } else {
                    3
                }
            }
            DConst(v) => {
                if *v == 0.0 || *v == 1.0 {
                    1
                } else {
                    3
                }
            }
            SConst(i) => {
                if *i < 256 {
                    2 // ldc
                } else {
                    3 // ldc_w
                }
            }
            AConstNull => 1,
            ILoad(s) | LLoad(s) | FLoad(s) | DLoad(s) | ALoad(s) | IStore(s) | LStore(s)
            | FStore(s) | DStore(s) | AStore(s) => match *s {
                0..=3 => 1,   // xload_<n>
                4..=255 => 2, // xload n
                _ => 4,       // wide
            },
            IInc(s, c) => {
                if *s < 256 && (-128..=127).contains(c) {
                    3
                } else {
                    6 // wide iinc
                }
            }
            Pop | Pop2 | Dup | Dup2 | DupX1 | DupX2 | Dup2X1 | Dup2X2 | Swap => 1,
            IAdd | ISub | IMul | IDiv | IRem | INeg | IShl | IShr | IUshr | IAnd | IOr | IXor
            | LAdd | LSub | LMul | LDiv | LRem | LNeg | LShl | LShr | LUshr | LAnd | LOr | LXor
            | FAdd | FSub | FMul | FDiv | FRem | FNeg | DAdd | DSub | DMul | DDiv | DRem | DNeg => {
                1
            }
            I2L | I2F | I2D | I2C | L2I | L2F | L2D | F2I | F2L | F2D | D2I | D2L | D2F => 1,
            LCmp | FCmpL | FCmpG | DCmpL | DCmpG => 1,
            IfEq(_) | IfNe(_) | IfLt(_) | IfLe(_) | IfGt(_) | IfGe(_) | IfICmpEq(_)
            | IfICmpNe(_) | IfICmpLt(_) | IfICmpLe(_) | IfICmpGt(_) | IfICmpGe(_) | IfACmpEq(_)
            | IfACmpNe(_) | IfNull(_) | IfNonNull(_) | Goto(_) => 3,
            NewArray(ArrayKind::Ref, _) => 3, // anewarray
            NewArray(_, _) => 2,
            ArrayLength => 1,
            IALoad | LALoad | FALoad | DALoad | AALoad | BALoad | CALoad | IAStore | LAStore
            | FAStore | DAStore | AAStore | BAStore | CAStore => 1,
            New(_) => 3,
            GetField(_, _) | PutField(_, _) | GetStatic(_, _) | PutStatic(_, _) => 3,
            InvokeVirtual(_, _) | InvokeSpecial(_, _) | InvokeStatic(_, _) => 3,
            CheckCast(_) | InstanceOf(_) => 3,
            AThrow => 1,
            IReturn | LReturn | FReturn | DReturn | AReturn | Return => 1,
        }
    }

    /// Whether this instruction unconditionally transfers control.
    pub fn is_terminator(&self) -> bool {
        use Op::*;
        matches!(
            self,
            Goto(_) | AThrow | IReturn | LReturn | FReturn | DReturn | AReturn | Return
        )
    }

    /// The branch target, if any.
    pub fn branch_target(&self) -> Option<Label> {
        use Op::*;
        match self {
            IfEq(l) | IfNe(l) | IfLt(l) | IfLe(l) | IfGt(l) | IfGe(l) | IfICmpEq(l)
            | IfICmpNe(l) | IfICmpLt(l) | IfICmpLe(l) | IfICmpGt(l) | IfICmpGe(l) | IfACmpEq(l)
            | IfACmpNe(l) | IfNull(l) | IfNonNull(l) | Goto(l) => Some(*l),
            _ => None,
        }
    }

    /// Rewrites the branch target (label patching).
    pub fn set_branch_target(&mut self, new: Label) {
        use Op::*;
        match self {
            IfEq(l) | IfNe(l) | IfLt(l) | IfLe(l) | IfGt(l) | IfGe(l) | IfICmpEq(l)
            | IfICmpNe(l) | IfICmpLt(l) | IfICmpLe(l) | IfICmpGt(l) | IfICmpGe(l) | IfACmpEq(l)
            | IfACmpNe(l) | IfNull(l) | IfNonNull(l) | Goto(l) => *l = new,
            _ => panic!("not a branch"),
        }
    }
}

/// One exception-table entry (`[start, end)` protects; `handler`
/// receives the exception when its class matches).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExTableEntry {
    /// First protected instruction index.
    pub start: u32,
    /// One past the last protected instruction index.
    pub end: u32,
    /// Handler entry point.
    pub handler: u32,
    /// The caught class.
    pub class: ClassIdx,
}

/// A compiled method body.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Code {
    /// The instructions.
    pub ops: Vec<Op>,
    /// Exception table, in catch-priority order.
    pub ex_table: Vec<ExTableEntry>,
    /// Maximum operand-stack depth (computed by the compiler).
    pub max_stack: u16,
    /// Number of local slots (longs/doubles take two).
    pub max_locals: u16,
    /// String literal pool for `SConst`.
    pub strings: Vec<String>,
    /// Type pool for `CheckCast`/`InstanceOf`/`NewArray`.
    pub types: Vec<Ty>,
}

impl Code {
    /// Total encoded byte length of the instruction stream.
    pub fn encoded_len(&self) -> usize {
        self.ops.iter().map(|o| o.encoded_len()).sum()
    }

    /// Number of instructions (Figure 5 metric).
    pub fn instr_count(&self) -> usize {
        self.ops.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoded_lengths_match_jvm() {
        assert_eq!(Op::IConst(3).encoded_len(), 1);
        assert_eq!(Op::IConst(100).encoded_len(), 2);
        assert_eq!(Op::IConst(1000).encoded_len(), 3);
        assert_eq!(Op::IConst(1_000_000).encoded_len(), 3);
        assert_eq!(Op::ILoad(2).encoded_len(), 1);
        assert_eq!(Op::ILoad(10).encoded_len(), 2);
        assert_eq!(Op::ILoad(300).encoded_len(), 4);
        assert_eq!(Op::Goto(7).encoded_len(), 3);
        assert_eq!(Op::IAdd.encoded_len(), 1);
        assert_eq!(Op::GetField(0, 0).encoded_len(), 3);
        assert_eq!(Op::IInc(1, 1).encoded_len(), 3);
    }

    #[test]
    fn branch_patching() {
        let mut op = Op::IfEq(0);
        assert_eq!(op.branch_target(), Some(0));
        op.set_branch_target(42);
        assert_eq!(op.branch_target(), Some(42));
        assert_eq!(Op::IAdd.branch_target(), None);
    }

    #[test]
    fn terminators() {
        assert!(Op::Goto(0).is_terminator());
        assert!(Op::Return.is_terminator());
        assert!(Op::AThrow.is_terminator());
        assert!(!Op::IfEq(0).is_terminator());
    }
}
