//! Class-file serialization: produces the on-disk byte image of each
//! class in the JVM class-file format (constant pool with symbolic
//! linking information, field/method members, Code attributes with
//! exception tables). Figure 5 compares these byte sizes against the
//! SafeTSA wire format.
//!
//! The emitted files use real JVM structure and instruction encodings;
//! they are not meant to load in a production JVM (constant-pool
//! details like `StackMapTable` are omitted, matching the paper's
//! JDK-1.2-era `javac -g:none` output, which predates stack maps).

use crate::compile::CompiledProgram;
use crate::opcode::{ArrayKind, Op};
use safetsa_frontend::hir::{ClassIdx, PrimTy, Program, Ty};
use std::collections::HashMap;

/// A constant-pool builder with interning.
#[derive(Debug, Default)]
struct Pool {
    entries: Vec<PoolEntry>,
    index: HashMap<PoolEntry, u16>,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum PoolEntry {
    Utf8(String),
    Integer(i32),
    Float(u32),
    Long(i64),
    Double(u64),
    Class(u16),
    Str(u16),
    NameAndType(u16, u16),
    FieldRef(u16, u16),
    MethodRef(u16, u16),
}

impl Pool {
    fn add(&mut self, e: PoolEntry) -> u16 {
        if let Some(&i) = self.index.get(&e) {
            return i;
        }
        // Longs/doubles take two constant-pool slots (JVM quirk).
        let wide = matches!(e, PoolEntry::Long(_) | PoolEntry::Double(_));
        let i = (self.entries.len() + 1) as u16;
        self.entries.push(e.clone());
        if wide {
            self.entries.push(PoolEntry::Utf8(String::new())); // placeholder slot
        }
        self.index.insert(e, i);
        i
    }

    fn utf8(&mut self, s: &str) -> u16 {
        self.add(PoolEntry::Utf8(s.to_string()))
    }

    fn class(&mut self, name: &str) -> u16 {
        let n = self.utf8(name);
        self.add(PoolEntry::Class(n))
    }

    fn string(&mut self, s: &str) -> u16 {
        let n = self.utf8(s);
        self.add(PoolEntry::Str(n))
    }

    fn name_and_type(&mut self, name: &str, desc: &str) -> u16 {
        let n = self.utf8(name);
        let d = self.utf8(desc);
        self.add(PoolEntry::NameAndType(n, d))
    }

    fn field_ref(&mut self, class: &str, name: &str, desc: &str) -> u16 {
        let c = self.class(class);
        let nt = self.name_and_type(name, desc);
        self.add(PoolEntry::FieldRef(c, nt))
    }

    fn method_ref(&mut self, class: &str, name: &str, desc: &str) -> u16 {
        let c = self.class(class);
        let nt = self.name_and_type(name, desc);
        self.add(PoolEntry::MethodRef(c, nt))
    }

    fn serialize(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&((self.entries.len() + 1) as u16).to_be_bytes());
        let mut skip = false;
        for e in &self.entries {
            if skip {
                skip = false;
                continue;
            }
            match e {
                PoolEntry::Utf8(s) => {
                    out.push(1);
                    out.extend_from_slice(&(s.len() as u16).to_be_bytes());
                    out.extend_from_slice(s.as_bytes());
                }
                PoolEntry::Integer(v) => {
                    out.push(3);
                    out.extend_from_slice(&v.to_be_bytes());
                }
                PoolEntry::Float(v) => {
                    out.push(4);
                    out.extend_from_slice(&v.to_be_bytes());
                }
                PoolEntry::Long(v) => {
                    out.push(5);
                    out.extend_from_slice(&v.to_be_bytes());
                    skip = true;
                }
                PoolEntry::Double(v) => {
                    out.push(6);
                    out.extend_from_slice(&v.to_be_bytes());
                    skip = true;
                }
                PoolEntry::Class(n) => {
                    out.push(7);
                    out.extend_from_slice(&n.to_be_bytes());
                }
                PoolEntry::Str(n) => {
                    out.push(8);
                    out.extend_from_slice(&n.to_be_bytes());
                }
                PoolEntry::FieldRef(c, nt) => {
                    out.push(9);
                    out.extend_from_slice(&c.to_be_bytes());
                    out.extend_from_slice(&nt.to_be_bytes());
                }
                PoolEntry::MethodRef(c, nt) => {
                    out.push(10);
                    out.extend_from_slice(&c.to_be_bytes());
                    out.extend_from_slice(&nt.to_be_bytes());
                }
                PoolEntry::NameAndType(n, d) => {
                    out.push(12);
                    out.extend_from_slice(&n.to_be_bytes());
                    out.extend_from_slice(&d.to_be_bytes());
                }
            }
        }
    }
}

/// JVM type descriptor for a semantic type.
pub fn descriptor(prog: &Program, ty: &Ty) -> String {
    match ty {
        Ty::Prim(PrimTy::Bool) => "Z".into(),
        Ty::Prim(PrimTy::Char) => "C".into(),
        Ty::Prim(PrimTy::Int) => "I".into(),
        Ty::Prim(PrimTy::Long) => "J".into(),
        Ty::Prim(PrimTy::Float) => "F".into(),
        Ty::Prim(PrimTy::Double) => "D".into(),
        Ty::Ref(c) => format!("L{};", prog.class(*c).name),
        Ty::Array(e) => format!("[{}", descriptor(prog, e)),
        Ty::Null => "Ljava/lang/Object;".into(),
        Ty::Void => "V".into(),
    }
}

/// Method descriptor `(args)ret`.
pub fn method_descriptor(prog: &Program, params: &[Ty], ret: &Ty) -> String {
    let mut s = String::from("(");
    for p in params {
        s.push_str(&descriptor(prog, p));
    }
    s.push(')');
    s.push_str(&descriptor(prog, ret));
    s
}

/// Serializes one class to class-file bytes.
pub fn serialize_class(prog: &Program, compiled: &CompiledProgram, class: ClassIdx) -> Vec<u8> {
    let c = prog.class(class);
    let mut pool = Pool::default();
    let this_idx = pool.class(&c.name);
    let super_idx = match c.superclass {
        Some(s) => pool.class(&prog.class(s).name),
        None => 0,
    };
    let code_attr = pool.utf8("Code");

    // Pre-intern member symbols and collect method bodies.
    /// `(start, end, handler, class)` exception-table rows.
    type ExRows = Vec<(u16, u16, u16, u16)>;
    struct MethodOut {
        name_idx: u16,
        desc_idx: u16,
        code: Option<(Vec<u8>, u16, u16, ExRows)>,
    }
    let mut methods_out = Vec::new();
    for (mi, m) in c.methods.iter().enumerate() {
        let name_idx = pool.utf8(&m.name);
        let desc = method_descriptor(prog, &m.params, &m.ret);
        let desc_idx = pool.utf8(&desc);
        let code = compiled.code(class, mi).map(|code| {
            // Encode instructions: compute byte offsets first.
            let mut offsets = Vec::with_capacity(code.ops.len() + 1);
            let mut off = 0u32;
            for op in &code.ops {
                offsets.push(off);
                off += op.encoded_len() as u32;
            }
            offsets.push(off);
            let mut bytes = Vec::with_capacity(off as usize);
            for (i, op) in code.ops.iter().enumerate() {
                encode_op(prog, &mut pool, op, code, offsets[i], &offsets, &mut bytes);
            }
            let ex: Vec<(u16, u16, u16, u16)> = code
                .ex_table
                .iter()
                .map(|e| {
                    let cls = pool.class(&prog.class(e.class).name);
                    (
                        offsets[e.start as usize] as u16,
                        offsets[e.end as usize] as u16,
                        offsets[e.handler as usize] as u16,
                        cls,
                    )
                })
                .collect();
            (bytes, code.max_stack, code.max_locals, ex)
        });
        methods_out.push(MethodOut {
            name_idx,
            desc_idx,
            code,
        });
    }
    let mut fields_out = Vec::new();
    for f in &c.fields {
        let name_idx = pool.utf8(&f.name);
        let desc = descriptor(prog, &f.ty);
        let desc_idx = pool.utf8(&desc);
        let access: u16 = if f.is_static { 0x0008 } else { 0x0000 };
        fields_out.push((access, name_idx, desc_idx));
    }

    // Assemble the file.
    let mut out = Vec::new();
    out.extend_from_slice(&0xCAFE_BABEu32.to_be_bytes());
    out.extend_from_slice(&46u32.to_be_bytes()); // minor/major (Java 1.2)
    pool.serialize(&mut out);
    out.extend_from_slice(&0x0021u16.to_be_bytes()); // ACC_PUBLIC | ACC_SUPER
    out.extend_from_slice(&this_idx.to_be_bytes());
    out.extend_from_slice(&super_idx.to_be_bytes());
    out.extend_from_slice(&0u16.to_be_bytes()); // interfaces
    out.extend_from_slice(&(fields_out.len() as u16).to_be_bytes());
    for (access, n, d) in fields_out {
        out.extend_from_slice(&access.to_be_bytes());
        out.extend_from_slice(&n.to_be_bytes());
        out.extend_from_slice(&d.to_be_bytes());
        out.extend_from_slice(&0u16.to_be_bytes()); // attributes
    }
    out.extend_from_slice(&(methods_out.len() as u16).to_be_bytes());
    for m in methods_out {
        out.extend_from_slice(&0x0001u16.to_be_bytes()); // ACC_PUBLIC
        out.extend_from_slice(&m.name_idx.to_be_bytes());
        out.extend_from_slice(&m.desc_idx.to_be_bytes());
        match m.code {
            None => out.extend_from_slice(&0u16.to_be_bytes()),
            Some((bytes, max_stack, max_locals, ex)) => {
                out.extend_from_slice(&1u16.to_be_bytes());
                out.extend_from_slice(&code_attr.to_be_bytes());
                let attr_len = 2 + 2 + 4 + bytes.len() + 2 + ex.len() * 8 + 2;
                out.extend_from_slice(&(attr_len as u32).to_be_bytes());
                out.extend_from_slice(&max_stack.to_be_bytes());
                out.extend_from_slice(&max_locals.to_be_bytes());
                out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
                out.extend_from_slice(&bytes);
                out.extend_from_slice(&(ex.len() as u16).to_be_bytes());
                for (s, e, h, cidx) in ex {
                    out.extend_from_slice(&s.to_be_bytes());
                    out.extend_from_slice(&e.to_be_bytes());
                    out.extend_from_slice(&h.to_be_bytes());
                    out.extend_from_slice(&cidx.to_be_bytes());
                }
                out.extend_from_slice(&0u16.to_be_bytes()); // code attributes
            }
        }
    }
    out.extend_from_slice(&0u16.to_be_bytes()); // class attributes
    out
}

/// Total class-file bytes for every user class.
pub fn total_size(prog: &Program, compiled: &CompiledProgram) -> usize {
    prog.classes
        .iter()
        .enumerate()
        .filter(|(_, c)| !c.is_builtin)
        .map(|(i, _)| serialize_class(prog, compiled, i).len())
        .sum()
}

#[allow(clippy::too_many_arguments)]
fn encode_op(
    prog: &Program,
    pool: &mut Pool,
    op: &Op,
    code: &crate::opcode::Code,
    at: u32,
    offsets: &[u32],
    out: &mut Vec<u8>,
) {
    use Op::*;
    let start = out.len();
    let branch16 = |out: &mut Vec<u8>, opcode: u8, target: u32| {
        out.push(opcode);
        let delta = offsets[target as usize] as i64 - at as i64;
        out.extend_from_slice(&(delta as i16).to_be_bytes());
    };
    match op {
        IConst(v) => match *v {
            -1..=5 => out.push((3 + *v) as u8),
            -128..=127 => {
                out.push(0x10);
                out.push(*v as u8);
            }
            -32768..=32767 => {
                out.push(0x11);
                out.extend_from_slice(&(*v as i16).to_be_bytes());
            }
            _ => {
                let idx = pool.add(PoolEntry::Integer(*v));
                out.push(0x13);
                out.extend_from_slice(&idx.to_be_bytes());
            }
        },
        LConst(v) => match *v {
            0 | 1 => out.push((9 + *v) as u8),
            _ => {
                let idx = pool.add(PoolEntry::Long(*v));
                out.push(0x14);
                out.extend_from_slice(&idx.to_be_bytes());
            }
        },
        FConst(v) => {
            if *v == 0.0 || *v == 1.0 || *v == 2.0 {
                out.push(0x0b + *v as u8);
            } else {
                let idx = pool.add(PoolEntry::Float(v.to_bits()));
                out.push(0x13);
                out.extend_from_slice(&idx.to_be_bytes());
            }
        }
        DConst(v) => {
            if *v == 0.0 || *v == 1.0 {
                out.push(0x0e + *v as u8);
            } else {
                let idx = pool.add(PoolEntry::Double(v.to_bits()));
                out.push(0x14);
                out.extend_from_slice(&idx.to_be_bytes());
            }
        }
        SConst(i) => {
            let s = &code.strings[*i as usize];
            let idx = pool.string(s);
            if idx < 256 {
                out.push(0x12);
                out.push(idx as u8);
            } else {
                out.push(0x13);
                out.extend_from_slice(&idx.to_be_bytes());
            }
        }
        AConstNull => out.push(0x01),
        ILoad(s) | LLoad(s) | FLoad(s) | DLoad(s) | ALoad(s) => {
            let base: u8 = match op {
                ILoad(_) => 0x15,
                LLoad(_) => 0x16,
                FLoad(_) => 0x17,
                DLoad(_) => 0x18,
                _ => 0x19,
            };
            encode_slot(out, base, *s);
        }
        IStore(s) | LStore(s) | FStore(s) | DStore(s) | AStore(s) => {
            let base: u8 = match op {
                IStore(_) => 0x36,
                LStore(_) => 0x37,
                FStore(_) => 0x38,
                DStore(_) => 0x39,
                _ => 0x3a,
            };
            encode_slot(out, base, *s);
        }
        IInc(s, c) => {
            if *s < 256 && (-128..=127).contains(c) {
                out.push(0x84);
                out.push(*s as u8);
                out.push(*c as u8);
            } else {
                out.push(0xc4);
                out.push(0x84);
                out.extend_from_slice(&s.to_be_bytes());
                out.extend_from_slice(&c.to_be_bytes());
            }
        }
        Pop => out.push(0x57),
        Pop2 => out.push(0x58),
        Dup => out.push(0x59),
        DupX1 => out.push(0x5a),
        DupX2 => out.push(0x5b),
        Dup2 => out.push(0x5c),
        Dup2X1 => out.push(0x5d),
        Dup2X2 => out.push(0x5e),
        Swap => out.push(0x5f),
        IAdd => out.push(0x60),
        LAdd => out.push(0x61),
        FAdd => out.push(0x62),
        DAdd => out.push(0x63),
        ISub => out.push(0x64),
        LSub => out.push(0x65),
        FSub => out.push(0x66),
        DSub => out.push(0x67),
        IMul => out.push(0x68),
        LMul => out.push(0x69),
        FMul => out.push(0x6a),
        DMul => out.push(0x6b),
        IDiv => out.push(0x6c),
        LDiv => out.push(0x6d),
        FDiv => out.push(0x6e),
        DDiv => out.push(0x6f),
        IRem => out.push(0x70),
        LRem => out.push(0x71),
        FRem => out.push(0x72),
        DRem => out.push(0x73),
        INeg => out.push(0x74),
        LNeg => out.push(0x75),
        FNeg => out.push(0x76),
        DNeg => out.push(0x77),
        IShl => out.push(0x78),
        LShl => out.push(0x79),
        IShr => out.push(0x7a),
        LShr => out.push(0x7b),
        IUshr => out.push(0x7c),
        LUshr => out.push(0x7d),
        IAnd => out.push(0x7e),
        LAnd => out.push(0x7f),
        IOr => out.push(0x80),
        LOr => out.push(0x81),
        IXor => out.push(0x82),
        LXor => out.push(0x83),
        I2L => out.push(0x85),
        I2F => out.push(0x86),
        I2D => out.push(0x87),
        L2I => out.push(0x88),
        L2F => out.push(0x89),
        L2D => out.push(0x8a),
        F2I => out.push(0x8b),
        F2L => out.push(0x8c),
        F2D => out.push(0x8d),
        D2I => out.push(0x8e),
        D2L => out.push(0x8f),
        D2F => out.push(0x90),
        I2C => out.push(0x92),
        LCmp => out.push(0x94),
        FCmpL => out.push(0x95),
        FCmpG => out.push(0x96),
        DCmpL => out.push(0x97),
        DCmpG => out.push(0x98),
        IfEq(t) => branch16(out, 0x99, *t),
        IfNe(t) => branch16(out, 0x9a, *t),
        IfLt(t) => branch16(out, 0x9b, *t),
        IfGe(t) => branch16(out, 0x9c, *t),
        IfGt(t) => branch16(out, 0x9d, *t),
        IfLe(t) => branch16(out, 0x9e, *t),
        IfICmpEq(t) => branch16(out, 0x9f, *t),
        IfICmpNe(t) => branch16(out, 0xa0, *t),
        IfICmpLt(t) => branch16(out, 0xa1, *t),
        IfICmpGe(t) => branch16(out, 0xa2, *t),
        IfICmpGt(t) => branch16(out, 0xa3, *t),
        IfICmpLe(t) => branch16(out, 0xa4, *t),
        IfACmpEq(t) => branch16(out, 0xa5, *t),
        IfACmpNe(t) => branch16(out, 0xa6, *t),
        Goto(t) => branch16(out, 0xa7, *t),
        IfNull(t) => branch16(out, 0xc6, *t),
        IfNonNull(t) => branch16(out, 0xc7, *t),
        NewArray(kind, tid) => match kind {
            ArrayKind::Ref => {
                let elem_name = match &code.types[*tid as usize] {
                    Ty::Array(e) => descriptor(prog, e),
                    other => descriptor(prog, other),
                };
                let idx = pool.class(&elem_name);
                out.push(0xbd);
                out.extend_from_slice(&idx.to_be_bytes());
            }
            _ => {
                out.push(0xbc);
                out.push(match kind {
                    ArrayKind::Bool => 4,
                    ArrayKind::Char => 5,
                    ArrayKind::Float => 6,
                    ArrayKind::Double => 7,
                    ArrayKind::Int => 10,
                    ArrayKind::Long => 11,
                    ArrayKind::Ref => unreachable!(),
                });
            }
        },
        ArrayLength => out.push(0xbe),
        IALoad => out.push(0x2e),
        LALoad => out.push(0x2f),
        FALoad => out.push(0x30),
        DALoad => out.push(0x31),
        AALoad => out.push(0x32),
        BALoad => out.push(0x33),
        CALoad => out.push(0x34),
        IAStore => out.push(0x4f),
        LAStore => out.push(0x50),
        FAStore => out.push(0x51),
        DAStore => out.push(0x52),
        AAStore => out.push(0x53),
        BAStore => out.push(0x54),
        CAStore => out.push(0x55),
        New(c) => {
            let idx = pool.class(&prog.class(*c).name);
            out.push(0xbb);
            out.extend_from_slice(&idx.to_be_bytes());
        }
        GetField(c, f) | PutField(c, f) | GetStatic(c, f) | PutStatic(c, f) => {
            let field = prog.field(*c, *f);
            let desc = descriptor(prog, &field.ty);
            let idx = pool.field_ref(&prog.class(*c).name, &field.name, &desc);
            out.push(match op {
                GetStatic(_, _) => 0xb2,
                PutStatic(_, _) => 0xb3,
                GetField(_, _) => 0xb4,
                _ => 0xb5,
            });
            out.extend_from_slice(&idx.to_be_bytes());
        }
        InvokeVirtual(c, m) | InvokeSpecial(c, m) | InvokeStatic(c, m) => {
            let meta = prog.method(*c, *m);
            let desc = method_descriptor(prog, &meta.params, &meta.ret);
            let idx = pool.method_ref(&prog.class(*c).name, &meta.name, &desc);
            out.push(match op {
                InvokeVirtual(_, _) => 0xb6,
                InvokeSpecial(_, _) => 0xb7,
                _ => 0xb8,
            });
            out.extend_from_slice(&idx.to_be_bytes());
        }
        CheckCast(t) | InstanceOf(t) => {
            let name = descriptor(prog, &code.types[*t as usize]);
            let idx = pool.class(&name);
            out.push(if matches!(op, CheckCast(_)) {
                0xc0
            } else {
                0xc1
            });
            out.extend_from_slice(&idx.to_be_bytes());
        }
        AThrow => out.push(0xbf),
        IReturn => out.push(0xac),
        LReturn => out.push(0xad),
        FReturn => out.push(0xae),
        DReturn => out.push(0xaf),
        AReturn => out.push(0xb0),
        Return => out.push(0xb1),
    }
    debug_assert_eq!(
        out.len() - start,
        op.encoded_len(),
        "encoded length mismatch for {op:?}"
    );
}

fn encode_slot(out: &mut Vec<u8>, base: u8, slot: u16) {
    match slot {
        0..=3 => {
            // xload_<n> opcodes are laid out in blocks of 4 after 0x1a.
            let block = match base {
                0x15 => 0x1a, // iload_0
                0x16 => 0x1e,
                0x17 => 0x22,
                0x18 => 0x26,
                0x19 => 0x2a,
                0x36 => 0x3b, // istore_0
                0x37 => 0x3f,
                0x38 => 0x43,
                0x39 => 0x47,
                _ => 0x4b,
            };
            out.push(block + slot as u8);
        }
        4..=255 => {
            out.push(base);
            out.push(slot as u8);
        }
        _ => {
            out.push(0xc4); // wide
            out.push(base);
            out.extend_from_slice(&slot.to_be_bytes());
        }
    }
}
