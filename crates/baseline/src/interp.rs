//! The baseline stack-machine interpreter (a miniature JVM).
//!
//! Booleans and chars live as ints on the operand stack (JVM
//! convention); conversions to typed heap/intrinsic values happen at
//! field, array, and call boundaries.

use crate::compile::CompiledProgram;
use crate::opcode::{ArrayKind, Code, Op};
use safetsa_frontend::hir::{
    ClassIdx, FieldIdx, Intrinsic as HIntr, MethodIdx, MethodKind, PrimTy, Program, Ty,
};
use safetsa_rt::heap::{ArrData, Obj};
use safetsa_rt::intrinsics::{self, Intrinsic};
use safetsa_rt::layout::{ClassShape, Layout, Statics};
use safetsa_rt::{Heap, HeapRef, Output, Trap, Value};
use std::collections::HashMap;
use std::fmt;

/// A baseline-VM failure.
#[derive(Debug, Clone, PartialEq)]
pub enum BvmError {
    /// Missing entry point or malformed code.
    Load(String),
    /// Uncaught exception.
    Uncaught(Trap),
}

impl fmt::Display for BvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BvmError::Load(s) => write!(f, "load error: {s}"),
            BvmError::Uncaught(t) => write!(f, "uncaught exception: {t}"),
        }
    }
}

impl std::error::Error for BvmError {}

/// The baseline virtual machine.
pub struct Bvm<'p> {
    prog: &'p Program,
    code: &'p CompiledProgram,
    layout: Layout,
    statics: Statics,
    str_pool: HashMap<String, HeapRef>,
    /// Array type tags: interned HIR types (per VM).
    array_tags: Vec<Ty>,
    /// The heap.
    pub heap: Heap,
    /// Captured output.
    pub output: Output,
    /// Remaining instruction budget.
    pub fuel: u64,
    /// Instructions executed.
    pub steps: u64,
}

impl<'p> Bvm<'p> {
    /// Creates a VM over a compiled program.
    pub fn load(prog: &'p Program, code: &'p CompiledProgram) -> Self {
        let shapes: Vec<ClassShape> = prog
            .classes
            .iter()
            .map(|c| ClassShape {
                superclass: c.superclass,
                instance_fields: c.fields.iter().filter(|f| !f.is_static).count(),
                static_fields: c.fields.len(),
            })
            .collect();
        let layout = Layout::build(&shapes);
        let mut statics = Statics::build(&shapes);
        for (ci, c) in prog.classes.iter().enumerate() {
            for (fi, f) in c.fields.iter().enumerate() {
                if f.is_static {
                    statics.init_default(ci, fi, default_value(&f.ty));
                }
            }
        }
        Bvm {
            prog,
            code,
            layout,
            statics,
            str_pool: HashMap::new(),
            array_tags: Vec::new(),
            heap: Heap::new(),
            output: Output::new(),
            fuel: u64::MAX,
            steps: 0,
        }
    }

    /// Sets the instruction budget.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Runs every `<clinit>` in class order.
    ///
    /// # Errors
    ///
    /// Propagates uncaught traps.
    pub fn run_clinits(&mut self) -> Result<(), BvmError> {
        for (ci, c) in self.prog.classes.iter().enumerate() {
            for (mi, m) in c.methods.iter().enumerate() {
                if m.name == "<clinit>" && m.body.is_some() {
                    self.invoke(ci, mi, vec![]).map_err(BvmError::Uncaught)?;
                }
            }
        }
        Ok(())
    }

    /// Runs static initializers, then `"Class.method"`.
    ///
    /// # Errors
    ///
    /// Returns load errors for unknown entries and uncaught traps.
    pub fn run_entry(&mut self, name: &str) -> Result<Option<Value>, BvmError> {
        self.run_clinits()?;
        let (cname, mname) = name
            .split_once('.')
            .ok_or_else(|| BvmError::Load(format!("bad entry name {name}")))?;
        let ci = self
            .prog
            .find_class(cname)
            .ok_or_else(|| BvmError::Load(format!("no class {cname}")))?;
        let mi = self.prog.classes[ci]
            .methods
            .iter()
            .position(|m| m.name == mname)
            .ok_or_else(|| BvmError::Load(format!("no method {name}")))?;
        self.invoke(ci, mi, vec![]).map_err(BvmError::Uncaught)
    }

    fn tag_of(&mut self, t: &Ty) -> u64 {
        if let Some(i) = self.array_tags.iter().position(|x| x == t) {
            return i as u64;
        }
        self.array_tags.push(t.clone());
        (self.array_tags.len() - 1) as u64
    }

    fn intern_str(&mut self, s: &str) -> HeapRef {
        if let Some(&r) = self.str_pool.get(s) {
            return r;
        }
        let r = self.heap.alloc_str(s.to_string());
        self.str_pool.insert(s.to_string(), r);
        r
    }

    /// Invokes a method with typed argument values (receiver first for
    /// instance methods).
    ///
    /// # Errors
    ///
    /// Returns traps (caught by enclosing exception tables as control
    /// returns through `exec`).
    pub fn invoke(
        &mut self,
        class: ClassIdx,
        method: MethodIdx,
        args: Vec<Value>,
    ) -> Result<Option<Value>, Trap> {
        let m = &self.prog.classes[class].methods[method];
        if m.body.is_none() {
            // Intrinsic.
            let intr = m
                .intrinsic
                .map(map_intrinsic)
                .ok_or_else(|| Trap::Internal("method without body or intrinsic".into()))?;
            let (recv, rest) = if m.kind == MethodKind::Static {
                (None, &args[..])
            } else {
                (Some(args[0]), &args[1..])
            };
            return intrinsics::invoke(intr, &mut self.heap, &mut self.output, recv, rest);
        }
        let code = self
            .code
            .code(class, method)
            .ok_or_else(|| Trap::Internal("body not compiled".into()))?;
        self.exec(class, method, code, args)
    }

    fn exec(
        &mut self,
        class: ClassIdx,
        method: MethodIdx,
        code: &Code,
        args: Vec<Value>,
    ) -> Result<Option<Value>, Trap> {
        let m = &self.prog.classes[class].methods[method];
        let mut locals: Vec<Value> = vec![Value::NULL; code.max_locals as usize];
        // Place arguments in slots (wide types burn two).
        {
            let mut slot = 0usize;
            let mut tys: Vec<Ty> = Vec::new();
            if m.kind != MethodKind::Static {
                tys.push(Ty::Ref(class));
            }
            tys.extend(m.params.iter().cloned());
            for (a, t) in args.into_iter().zip(&tys) {
                locals[slot] = to_stack(a);
                slot += match t {
                    Ty::Prim(PrimTy::Long | PrimTy::Double) => 2,
                    _ => 1,
                };
            }
        }
        let mut stack: Vec<Value> = Vec::with_capacity(code.max_stack as usize + 4);
        let mut pc: usize = 0;
        loop {
            if self.fuel == 0 {
                return Err(Trap::OutOfFuel);
            }
            self.fuel -= 1;
            self.steps += 1;
            let op = &code.ops[pc];
            match self.step(code, op, &mut stack, &mut locals, &mut pc)? {
                StepResult::Next => {}
                StepResult::Return(v) => return Ok(v),
                StepResult::Throw(trap) => {
                    // Exception dispatch through the table.
                    let exc_class = self.trap_class(&trap);
                    let exc_obj = match trap {
                        Trap::User(r) => r,
                        _ => {
                            let Some(c) = exc_class else {
                                return Err(trap);
                            };
                            self.alloc_instance(c)
                        }
                    };
                    let runtime_class = self.heap.instance_class(exc_obj)?;
                    let mut handled = false;
                    for e in &code.ex_table {
                        if (pc as u32) >= e.start
                            && (pc as u32) < e.end
                            && self.prog.is_subclass(runtime_class, e.class)
                        {
                            stack.clear();
                            stack.push(Value::Ref(Some(exc_obj)));
                            pc = e.handler as usize;
                            handled = true;
                            break;
                        }
                    }
                    if !handled {
                        return Err(Trap::User(exc_obj));
                    }
                    continue;
                }
            }
        }
    }

    fn trap_class(&self, t: &Trap) -> Option<ClassIdx> {
        Some(match t {
            Trap::DivByZero => self.prog.arithmetic_exception,
            Trap::NullPointer => self.prog.null_pointer_exception,
            Trap::IndexOutOfBounds => self.prog.index_exception,
            Trap::ClassCast => self.prog.cast_exception,
            Trap::NegativeArraySize => self.prog.negative_size_exception,
            Trap::OutOfMemory => self.prog.oom_error,
            Trap::StackOverflow => self.prog.stack_overflow_error,
            Trap::User(_) => return None, // class read from the object
            Trap::Internal(_) | Trap::OutOfFuel | Trap::DeadlineExceeded => return None,
        })
    }

    fn alloc_instance(&mut self, class: ClassIdx) -> HeapRef {
        let mut fields = Vec::with_capacity(self.layout.instance_size(class));
        // typed defaults along the chain
        let mut chain = Vec::new();
        let mut cur = Some(class);
        while let Some(c) = cur {
            chain.push(c);
            cur = self.prog.classes[c].superclass;
        }
        for c in chain.into_iter().rev() {
            for f in &self.prog.classes[c].fields {
                if !f.is_static {
                    fields.push(default_value(&f.ty));
                }
            }
        }
        self.heap.alloc(Obj::Instance {
            class,
            fields,
            msg: None,
        })
    }

    fn field_slot(&self, class: ClassIdx, field: FieldIdx) -> usize {
        let before = self.prog.classes[class].fields[..field]
            .iter()
            .filter(|f| !f.is_static)
            .count();
        self.layout.field_slot(class, before)
    }

    fn is_instance_of(&self, r: HeapRef, target: &Ty) -> bool {
        match (self.heap.get(r), target) {
            (Obj::Instance { class, .. }, Ty::Ref(t)) => self.prog.is_subclass(*class, *t),
            (Obj::Str(_), Ty::Ref(t)) => self.prog.is_subclass(self.prog.string, *t),
            (Obj::Array { .. }, Ty::Ref(t)) => *t == self.prog.object,
            (Obj::Array { type_tag, .. }, t @ Ty::Array(_)) => {
                self.array_tags.get(*type_tag as usize) == Some(t)
            }
            _ => false,
        }
    }

    #[allow(clippy::too_many_lines)]
    fn step(
        &mut self,
        code: &Code,
        op: &Op,
        stack: &mut Vec<Value>,
        locals: &mut [Value],
        pc: &mut usize,
    ) -> Result<StepResult, Trap> {
        use Op::*;
        macro_rules! pop {
            () => {
                stack
                    .pop()
                    .ok_or_else(|| Trap::Internal("stack underflow".into()))?
            };
        }
        macro_rules! binop_i {
            ($f:expr) => {{
                let b = pop!().as_i();
                let a = pop!().as_i();
                stack.push(Value::I($f(a, b)));
            }};
        }
        macro_rules! binop_j {
            ($f:expr) => {{
                let b = pop!().as_j();
                let a = pop!().as_j();
                stack.push(Value::J($f(a, b)));
            }};
        }
        macro_rules! branch_if {
            ($cond:expr, $t:expr) => {{
                if $cond {
                    *pc = $t as usize;
                } else {
                    *pc += 1;
                }
                return Ok(StepResult::Next);
            }};
        }
        match op {
            IConst(v) => stack.push(Value::I(*v)),
            LConst(v) => stack.push(Value::J(*v)),
            FConst(v) => stack.push(Value::F(*v)),
            DConst(v) => stack.push(Value::D(*v)),
            SConst(i) => {
                let s = code.strings[*i as usize].clone();
                let r = self.intern_str(&s);
                stack.push(Value::Ref(Some(r)));
            }
            AConstNull => stack.push(Value::NULL),
            ILoad(s) | LLoad(s) | FLoad(s) | DLoad(s) | ALoad(s) => {
                stack.push(locals[*s as usize]);
            }
            IStore(s) | LStore(s) | FStore(s) | DStore(s) | AStore(s) => {
                locals[*s as usize] = pop!();
            }
            IInc(s, c) => {
                let v = locals[*s as usize].as_i();
                locals[*s as usize] = Value::I(v.wrapping_add(*c as i32));
            }
            Pop => {
                pop!();
            }
            Pop2 => {
                // wide values are a single entry in this model
                pop!();
            }
            Dup | Dup2 => {
                let v = *stack
                    .last()
                    .ok_or_else(|| Trap::Internal("underflow".into()))?;
                stack.push(v);
            }
            DupX1 | Dup2X1 => {
                let a = pop!();
                let b = pop!();
                stack.push(a);
                stack.push(b);
                stack.push(a);
            }
            DupX2 | Dup2X2 => {
                let a = pop!();
                let b = pop!();
                let c = pop!();
                stack.push(a);
                stack.push(c);
                stack.push(b);
                stack.push(a);
            }
            Swap => {
                let a = pop!();
                let b = pop!();
                stack.push(a);
                stack.push(b);
            }
            IAdd => binop_i!(i32::wrapping_add),
            ISub => binop_i!(i32::wrapping_sub),
            IMul => binop_i!(i32::wrapping_mul),
            IDiv => {
                let b = pop!().as_i();
                let a = pop!().as_i();
                if b == 0 {
                    return Ok(StepResult::Throw(Trap::DivByZero));
                }
                stack.push(Value::I(a.wrapping_div(b)));
            }
            IRem => {
                let b = pop!().as_i();
                let a = pop!().as_i();
                if b == 0 {
                    return Ok(StepResult::Throw(Trap::DivByZero));
                }
                stack.push(Value::I(a.wrapping_rem(b)));
            }
            INeg => {
                let a = pop!().as_i();
                stack.push(Value::I(a.wrapping_neg()));
            }
            IShl => binop_i!(|a: i32, b: i32| a.wrapping_shl(b as u32 & 31)),
            IShr => binop_i!(|a: i32, b: i32| a.wrapping_shr(b as u32 & 31)),
            IUshr => binop_i!(|a: i32, b: i32| ((a as u32) >> (b as u32 & 31)) as i32),
            IAnd => binop_i!(|a, b| a & b),
            IOr => binop_i!(|a, b| a | b),
            IXor => binop_i!(|a, b| a ^ b),
            LAdd => binop_j!(i64::wrapping_add),
            LSub => binop_j!(i64::wrapping_sub),
            LMul => binop_j!(i64::wrapping_mul),
            LDiv => {
                let b = pop!().as_j();
                let a = pop!().as_j();
                if b == 0 {
                    return Ok(StepResult::Throw(Trap::DivByZero));
                }
                stack.push(Value::J(a.wrapping_div(b)));
            }
            LRem => {
                let b = pop!().as_j();
                let a = pop!().as_j();
                if b == 0 {
                    return Ok(StepResult::Throw(Trap::DivByZero));
                }
                stack.push(Value::J(a.wrapping_rem(b)));
            }
            LNeg => {
                let a = pop!().as_j();
                stack.push(Value::J(a.wrapping_neg()));
            }
            LShl => {
                let b = pop!().as_i();
                let a = pop!().as_j();
                stack.push(Value::J(a.wrapping_shl(b as u32 & 63)));
            }
            LShr => {
                let b = pop!().as_i();
                let a = pop!().as_j();
                stack.push(Value::J(a.wrapping_shr(b as u32 & 63)));
            }
            LUshr => {
                let b = pop!().as_i();
                let a = pop!().as_j();
                stack.push(Value::J(((a as u64) >> (b as u32 & 63)) as i64));
            }
            LAnd => binop_j!(|a, b| a & b),
            LOr => binop_j!(|a, b| a | b),
            LXor => binop_j!(|a, b| a ^ b),
            FAdd | FSub | FMul | FDiv | FRem => {
                let b = pop!().as_f();
                let a = pop!().as_f();
                stack.push(Value::F(match op {
                    FAdd => a + b,
                    FSub => a - b,
                    FMul => a * b,
                    FDiv => a / b,
                    _ => a % b,
                }));
            }
            FNeg => {
                let a = pop!().as_f();
                stack.push(Value::F(-a));
            }
            DAdd | DSub | DMul | DDiv | DRem => {
                let b = pop!().as_d();
                let a = pop!().as_d();
                stack.push(Value::D(match op {
                    DAdd => a + b,
                    DSub => a - b,
                    DMul => a * b,
                    DDiv => a / b,
                    _ => a % b,
                }));
            }
            DNeg => {
                let a = pop!().as_d();
                stack.push(Value::D(-a));
            }
            I2L => {
                let a = pop!().as_i();
                stack.push(Value::J(a as i64));
            }
            I2F => {
                let a = pop!().as_i();
                stack.push(Value::F(a as f32));
            }
            I2D => {
                let a = pop!().as_i();
                stack.push(Value::D(a as f64));
            }
            I2C => {
                let a = pop!().as_i();
                stack.push(Value::I(a as u16 as i32));
            }
            L2I => {
                let a = pop!().as_j();
                stack.push(Value::I(a as i32));
            }
            L2F => {
                let a = pop!().as_j();
                stack.push(Value::F(a as f32));
            }
            L2D => {
                let a = pop!().as_j();
                stack.push(Value::D(a as f64));
            }
            F2I => {
                let a = pop!().as_f();
                stack.push(Value::I(a as i32));
            }
            F2L => {
                let a = pop!().as_f();
                stack.push(Value::J(a as i64));
            }
            F2D => {
                let a = pop!().as_f();
                stack.push(Value::D(a as f64));
            }
            D2I => {
                let a = pop!().as_d();
                stack.push(Value::I(a as i32));
            }
            D2L => {
                let a = pop!().as_d();
                stack.push(Value::J(a as i64));
            }
            D2F => {
                let a = pop!().as_d();
                stack.push(Value::F(a as f32));
            }
            LCmp => {
                let b = pop!().as_j();
                let a = pop!().as_j();
                stack.push(Value::I(match a.cmp(&b) {
                    std::cmp::Ordering::Less => -1,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                }));
            }
            FCmpL | FCmpG => {
                let b = pop!().as_f();
                let a = pop!().as_f();
                let v = if a.is_nan() || b.is_nan() {
                    if matches!(op, FCmpG) {
                        1
                    } else {
                        -1
                    }
                } else if a < b {
                    -1
                } else if a > b {
                    1
                } else {
                    0
                };
                stack.push(Value::I(v));
            }
            DCmpL | DCmpG => {
                let b = pop!().as_d();
                let a = pop!().as_d();
                let v = if a.is_nan() || b.is_nan() {
                    if matches!(op, DCmpG) {
                        1
                    } else {
                        -1
                    }
                } else if a < b {
                    -1
                } else if a > b {
                    1
                } else {
                    0
                };
                stack.push(Value::I(v));
            }
            IfEq(t) => branch_if!(pop!().as_i() == 0, *t),
            IfNe(t) => branch_if!(pop!().as_i() != 0, *t),
            IfLt(t) => branch_if!(pop!().as_i() < 0, *t),
            IfLe(t) => branch_if!(pop!().as_i() <= 0, *t),
            IfGt(t) => branch_if!(pop!().as_i() > 0, *t),
            IfGe(t) => branch_if!(pop!().as_i() >= 0, *t),
            IfICmpEq(t) => {
                let b = pop!().as_i();
                let a = pop!().as_i();
                branch_if!(a == b, *t)
            }
            IfICmpNe(t) => {
                let b = pop!().as_i();
                let a = pop!().as_i();
                branch_if!(a != b, *t)
            }
            IfICmpLt(t) => {
                let b = pop!().as_i();
                let a = pop!().as_i();
                branch_if!(a < b, *t)
            }
            IfICmpLe(t) => {
                let b = pop!().as_i();
                let a = pop!().as_i();
                branch_if!(a <= b, *t)
            }
            IfICmpGt(t) => {
                let b = pop!().as_i();
                let a = pop!().as_i();
                branch_if!(a > b, *t)
            }
            IfICmpGe(t) => {
                let b = pop!().as_i();
                let a = pop!().as_i();
                branch_if!(a >= b, *t)
            }
            IfACmpEq(t) => {
                let b = pop!().as_ref();
                let a = pop!().as_ref();
                branch_if!(a == b, *t)
            }
            IfACmpNe(t) => {
                let b = pop!().as_ref();
                let a = pop!().as_ref();
                branch_if!(a != b, *t)
            }
            IfNull(t) => branch_if!(pop!().as_ref().is_none(), *t),
            IfNonNull(t) => branch_if!(pop!().as_ref().is_some(), *t),
            Goto(t) => {
                *pc = *t as usize;
                return Ok(StepResult::Next);
            }
            NewArray(kind, tid) => {
                let len = pop!().as_i();
                if len < 0 {
                    return Ok(StepResult::Throw(Trap::NegativeArraySize));
                }
                let n = len as usize;
                let data = match kind {
                    ArrayKind::Bool => ArrData::Z(vec![false; n]),
                    ArrayKind::Char => ArrData::C(vec![0; n]),
                    ArrayKind::Int => ArrData::I(vec![0; n]),
                    ArrayKind::Long => ArrData::J(vec![0; n]),
                    ArrayKind::Float => ArrData::F(vec![0.0; n]),
                    ArrayKind::Double => ArrData::D(vec![0.0; n]),
                    ArrayKind::Ref => ArrData::R(vec![None; n]),
                };
                let ty = code.types[*tid as usize].clone();
                let tag = self.tag_of(&ty);
                let r = self.heap.alloc(Obj::Array {
                    type_tag: tag,
                    data,
                });
                stack.push(Value::Ref(Some(r)));
            }
            ArrayLength => {
                let r = pop!().as_ref().ok_or(Trap::NullPointer);
                let r = match r {
                    Ok(r) => r,
                    Err(t) => return Ok(StepResult::Throw(t)),
                };
                match self.heap.get(r) {
                    Obj::Array { data, .. } => stack.push(Value::I(data.len() as i32)),
                    _ => return Err(Trap::Internal("arraylength on non-array".into())),
                }
            }
            IALoad | LALoad | FALoad | DALoad | AALoad | BALoad | CALoad => {
                let i = pop!().as_i();
                let Some(r) = pop!().as_ref() else {
                    return Ok(StepResult::Throw(Trap::NullPointer));
                };
                let v = match self.heap.get(r) {
                    Obj::Array { data, .. } => {
                        if i < 0 {
                            return Ok(StepResult::Throw(Trap::IndexOutOfBounds));
                        }
                        match data.get(i as usize) {
                            Ok(v) => v,
                            Err(t) => return Ok(StepResult::Throw(t)),
                        }
                    }
                    _ => return Err(Trap::Internal("aload on non-array".into())),
                };
                stack.push(to_stack(v));
            }
            IAStore | LAStore | FAStore | DAStore | AAStore | BAStore | CAStore => {
                let v = pop!();
                let i = pop!().as_i();
                let Some(r) = pop!().as_ref() else {
                    return Ok(StepResult::Throw(Trap::NullPointer));
                };
                let typed = match op {
                    BAStore => Value::Z(v.as_i() != 0),
                    CAStore => Value::C(v.as_i() as u16),
                    _ => v,
                };
                match self.heap.get_mut(r) {
                    Obj::Array { data, .. } => {
                        if i < 0 {
                            return Ok(StepResult::Throw(Trap::IndexOutOfBounds));
                        }
                        if let Err(t) = data.set(i as usize, typed) {
                            return Ok(StepResult::Throw(t));
                        }
                    }
                    _ => return Err(Trap::Internal("astore on non-array".into())),
                }
            }
            New(c) => {
                let r = self.alloc_instance(*c);
                stack.push(Value::Ref(Some(r)));
            }
            GetField(c, f) => {
                let Some(r) = pop!().as_ref() else {
                    return Ok(StepResult::Throw(Trap::NullPointer));
                };
                let slot = self.field_slot(*c, *f);
                match self.heap.get(r) {
                    Obj::Instance { fields, .. } => stack.push(to_stack(fields[slot])),
                    _ => return Err(Trap::Internal("getfield on non-instance".into())),
                }
            }
            PutField(c, f) => {
                let v = pop!();
                let Some(r) = pop!().as_ref() else {
                    return Ok(StepResult::Throw(Trap::NullPointer));
                };
                let slot = self.field_slot(*c, *f);
                let typed = from_stack(v, &self.prog.field(*c, *f).ty);
                match self.heap.get_mut(r) {
                    Obj::Instance { fields, .. } => fields[slot] = typed,
                    _ => return Err(Trap::Internal("putfield on non-instance".into())),
                }
            }
            GetStatic(c, f) => {
                stack.push(to_stack(self.statics.get(*c, *f)));
            }
            PutStatic(c, f) => {
                let v = pop!();
                let typed = from_stack(v, &self.prog.field(*c, *f).ty);
                self.statics.set(*c, *f, typed);
            }
            InvokeStatic(c, m) => {
                let meta = self.prog.method(*c, *m);
                let (args, _) = self.collect_args(stack, &meta.params.clone(), false)?;
                let ret = meta.ret.clone();
                let r = self.invoke(*c, *m, args);
                return self.finish_call(stack, r, &ret, pc);
            }
            InvokeSpecial(c, m) => {
                let meta = self.prog.method(*c, *m);
                let (args, recv_null) = self.collect_args(stack, &meta.params.clone(), true)?;
                if recv_null {
                    return Ok(StepResult::Throw(Trap::NullPointer));
                }
                let ret = meta.ret.clone();
                let r = self.invoke(*c, *m, args);
                return self.finish_call(stack, r, &ret, pc);
            }
            InvokeVirtual(c, m) => {
                let meta = self.prog.method(*c, *m);
                let slot = meta
                    .vtable_slot
                    .ok_or_else(|| Trap::Internal("virtual without slot".into()))?;
                let (args, recv_null) = self.collect_args(stack, &meta.params.clone(), true)?;
                if recv_null {
                    return Ok(StepResult::Throw(Trap::NullPointer));
                }
                let ret = meta.ret.clone();
                let recv = args[0].as_ref().expect("checked above");
                let runtime_class = match self.heap.get(recv) {
                    Obj::Instance { class, .. } => *class,
                    Obj::Str(_) => self.prog.string,
                    Obj::Array { .. } => self.prog.object,
                };
                let (ic, im) = self.prog.classes[runtime_class].vtable[slot];
                let r = self.invoke(ic, im, args);
                return self.finish_call(stack, r, &ret, pc);
            }
            CheckCast(tid) => {
                let v = *stack
                    .last()
                    .ok_or_else(|| Trap::Internal("underflow".into()))?;
                if let Some(r) = v.as_ref() {
                    let target = code.types[*tid as usize].clone();
                    if !self.is_instance_of(r, &target) {
                        return Ok(StepResult::Throw(Trap::ClassCast));
                    }
                }
            }
            InstanceOf(tid) => {
                let v = pop!();
                let res = match v.as_ref() {
                    None => false,
                    Some(r) => {
                        let target = code.types[*tid as usize].clone();
                        self.is_instance_of(r, &target)
                    }
                };
                stack.push(Value::I(i32::from(res)));
            }
            AThrow => {
                let Some(r) = pop!().as_ref() else {
                    return Ok(StepResult::Throw(Trap::NullPointer));
                };
                return Ok(StepResult::Throw(Trap::User(r)));
            }
            IReturn | LReturn | FReturn | DReturn | AReturn => {
                let v = pop!();
                return Ok(StepResult::Return(Some(v)));
            }
            Return => return Ok(StepResult::Return(None)),
        }
        *pc += 1;
        Ok(StepResult::Next)
    }

    /// Pops call arguments (converting to the callee's typed values) and
    /// the receiver; returns `(args_with_receiver_first, receiver_null)`.
    fn collect_args(
        &mut self,
        stack: &mut Vec<Value>,
        params: &[Ty],
        has_receiver: bool,
    ) -> Result<(Vec<Value>, bool), Trap> {
        let mut args = Vec::with_capacity(params.len() + 1);
        for p in params.iter().rev() {
            let v = stack
                .pop()
                .ok_or_else(|| Trap::Internal("stack underflow in call".into()))?;
            args.push(from_stack(v, p));
        }
        let mut recv_null = false;
        if has_receiver {
            let r = stack
                .pop()
                .ok_or_else(|| Trap::Internal("stack underflow (receiver)".into()))?;
            recv_null = r.as_ref().is_none();
            args.push(r);
        }
        args.reverse();
        Ok((args, recv_null))
    }

    /// Completes a call: pushes the result and advances `pc` on
    /// success; on a throw, `pc` stays at the call site so the
    /// exception-table range check sees the faulting instruction.
    fn finish_call(
        &mut self,
        stack: &mut Vec<Value>,
        r: Result<Option<Value>, Trap>,
        ret: &Ty,
        pc: &mut usize,
    ) -> Result<StepResult, Trap> {
        match r {
            Ok(Some(v)) => {
                let _ = ret;
                stack.push(to_stack(v));
                *pc += 1;
                Ok(StepResult::Next)
            }
            Ok(None) => {
                *pc += 1;
                Ok(StepResult::Next)
            }
            Err(t @ (Trap::Internal(_) | Trap::OutOfFuel | Trap::DeadlineExceeded)) => Err(t),
            Err(t) => Ok(StepResult::Throw(t)),
        }
    }
}

enum StepResult {
    Next,
    Return(Option<Value>),
    Throw(Trap),
}

/// Converts a typed value to its stack representation (bool/char → int).
fn to_stack(v: Value) -> Value {
    match v {
        Value::Z(b) => Value::I(i32::from(b)),
        Value::C(c) => Value::I(c as i32),
        other => other,
    }
}

/// Converts a stack value to the typed representation demanded by `ty`.
fn from_stack(v: Value, ty: &Ty) -> Value {
    match (ty, v) {
        (Ty::Prim(PrimTy::Bool), Value::I(x)) => Value::Z(x != 0),
        (Ty::Prim(PrimTy::Char), Value::I(x)) => Value::C(x as u16),
        _ => v,
    }
}

fn default_value(ty: &Ty) -> Value {
    match ty {
        Ty::Prim(PrimTy::Bool) => Value::Z(false),
        Ty::Prim(PrimTy::Char) => Value::C(0),
        Ty::Prim(PrimTy::Int) => Value::I(0),
        Ty::Prim(PrimTy::Long) => Value::J(0),
        Ty::Prim(PrimTy::Float) => Value::F(0.0),
        Ty::Prim(PrimTy::Double) => Value::D(0.0),
        _ => Value::NULL,
    }
}

/// Maps the front-end intrinsic tags onto the runtime's.
fn map_intrinsic(i: HIntr) -> Intrinsic {
    use Intrinsic as R;
    match i {
        HIntr::ObjectCtor => R::ObjectCtor,
        HIntr::MathSqrt => R::MathSqrt,
        HIntr::MathAbsI => R::MathAbsI,
        HIntr::MathAbsL => R::MathAbsL,
        HIntr::MathAbsD => R::MathAbsD,
        HIntr::MathMinI => R::MathMinI,
        HIntr::MathMaxI => R::MathMaxI,
        HIntr::MathMinD => R::MathMinD,
        HIntr::MathMaxD => R::MathMaxD,
        HIntr::MathFloor => R::MathFloor,
        HIntr::MathCeil => R::MathCeil,
        HIntr::MathPow => R::MathPow,
        HIntr::SysPrintI => R::SysPrintI,
        HIntr::SysPrintL => R::SysPrintL,
        HIntr::SysPrintD => R::SysPrintD,
        HIntr::SysPrintC => R::SysPrintC,
        HIntr::SysPrintB => R::SysPrintB,
        HIntr::SysPrintS => R::SysPrintS,
        HIntr::SysPrintlnI => R::SysPrintlnI,
        HIntr::SysPrintlnL => R::SysPrintlnL,
        HIntr::SysPrintlnD => R::SysPrintlnD,
        HIntr::SysPrintlnC => R::SysPrintlnC,
        HIntr::SysPrintlnB => R::SysPrintlnB,
        HIntr::SysPrintlnS => R::SysPrintlnS,
        HIntr::SysPrintln => R::SysPrintln,
        HIntr::StrLength => R::StrLength,
        HIntr::StrCharAt => R::StrCharAt,
        HIntr::StrConcat => R::StrConcat,
        HIntr::StrEquals => R::StrEquals,
        HIntr::StrCompareTo => R::StrCompareTo,
        HIntr::StrIndexOfChar => R::StrIndexOfChar,
        HIntr::StrSubstring => R::StrSubstring,
        HIntr::StrValueOfI => R::StrValueOfI,
        HIntr::StrValueOfL => R::StrValueOfL,
        HIntr::StrValueOfD => R::StrValueOfD,
        HIntr::StrValueOfC => R::StrValueOfC,
        HIntr::StrValueOfB => R::StrValueOfB,
        HIntr::ThrowableCtor => R::ThrowableCtor,
        HIntr::ThrowableCtorMsg => R::ThrowableCtorMsg,
        HIntr::ThrowableGetMessage => R::ThrowableGetMessage,
    }
}
