//! # safetsa-baseline
//!
//! The comparison baseline: a from-scratch JVM-subset toolchain
//! standing in for the paper's `javac -g:none` + JVM measurements
//! (Figure 5's "Java Bytecode" columns and the §9 verification-cost
//! discussion). See DESIGN.md for the substitution rationale.
//!
//! * [`compile`] — javac-style one-pass stack-code generation
//! * [`classfile`] — class-file byte images (symbolic constant pool)
//! * [`verify`] — the iterative dataflow bytecode verifier
//! * [`interp`] — an operand-stack interpreter sharing `safetsa-rt`
//!
//! # Examples
//!
//! ```
//! use safetsa_baseline::{compile, interp, verify};
//!
//! let prog = safetsa_frontend::compile(
//!     "class Main { static int main() { return 6 * 7; } }",
//! )?;
//! let mut code = compile::compile_program(&prog);
//! verify::verify_program(&prog, &mut code)?;
//! let mut vm = interp::Bvm::load(&prog, &code);
//! let r = vm.run_entry("Main.main")?;
//! assert_eq!(r, Some(safetsa_rt::Value::I(42)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod classfile;
pub mod compile;
pub mod interp;
pub mod opcode;
pub mod verify;
