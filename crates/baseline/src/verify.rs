//! The baseline bytecode verifier: the iterative dataflow analysis that
//! every JVM-style consumer must run before trusting code — inferring
//! the operand-stack shape and local-variable types at every program
//! point, merging states at control-flow joins until a fixpoint.
//!
//! This is exactly the cost the paper's §9 attributes to the JVM
//! ("checking that all operand accesses to the stack are valid — which
//! requires a data flow analysis"), and the cost SafeTSA avoids by
//! construction. `benches/verify.rs` compares the two.

use crate::opcode::{Code, Op};
use safetsa_frontend::hir::{MethodKind, PrimTy, Program, Ty};
use std::collections::VecDeque;
use std::fmt;

/// Abstract value types of the dataflow lattice (wide values occupy two
/// stack words, mirrored here with the `*2` second-word markers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VType {
    /// int/boolean/char/byte/short word.
    Int,
    /// float word.
    Float,
    /// First word of a long.
    Long,
    /// Second word of a long.
    Long2,
    /// First word of a double.
    Double,
    /// Second word of a double.
    Double2,
    /// Any reference (classes are not tracked — stack/locals shape is
    /// the expensive part being measured).
    Ref,
}

impl VType {
    fn width(self) -> usize {
        match self {
            VType::Long | VType::Double => 2,
            _ => 1,
        }
    }
}

/// A verification failure.
#[derive(Debug, Clone, PartialEq)]
pub struct BVerifyError(pub String);

impl fmt::Display for BVerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bytecode verification: {}", self.0)
    }
}

impl std::error::Error for BVerifyError {}

/// Statistics of one verification run (for the cost comparison).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BVerifyStats {
    /// Dataflow iterations (worklist pops).
    pub iterations: usize,
    /// State merges performed.
    pub merges: usize,
    /// Maximum operand stack depth observed (in words).
    pub max_stack: u16,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct State {
    stack: Vec<VType>,
    locals: Vec<Option<VType>>,
}

fn vtype_of(ty: &Ty) -> VType {
    match ty {
        Ty::Prim(PrimTy::Long) => VType::Long,
        Ty::Prim(PrimTy::Float) => VType::Float,
        Ty::Prim(PrimTy::Double) => VType::Double,
        Ty::Prim(_) => VType::Int,
        _ => VType::Ref,
    }
}

/// Verifies one compiled method body by abstract interpretation.
///
/// # Errors
///
/// Returns a [`BVerifyError`] on stack underflow/overflow, type
/// mismatches, undefined local reads, or inconsistent merge states.
pub fn verify_method(
    prog: &Program,
    class: usize,
    method: usize,
    code: &Code,
) -> Result<BVerifyStats, BVerifyError> {
    let meta = prog.method(class, method);
    let n = code.ops.len();
    if n == 0 {
        return Err(BVerifyError("empty code".into()));
    }
    // Entry state.
    let mut locals: Vec<Option<VType>> = vec![None; code.max_locals as usize];
    {
        let mut slot = 0usize;
        let mut tys: Vec<Ty> = Vec::new();
        if meta.kind != MethodKind::Static {
            tys.push(Ty::Ref(class));
        }
        tys.extend(meta.params.iter().cloned());
        for t in &tys {
            let v = vtype_of(t);
            if slot >= locals.len() {
                return Err(BVerifyError("parameters exceed max_locals".into()));
            }
            locals[slot] = Some(v);
            slot += v.width();
            if v.width() == 2 {
                if slot > locals.len() {
                    return Err(BVerifyError("wide parameter exceeds max_locals".into()));
                }
                locals[slot - 1] = Some(match v {
                    VType::Long => VType::Long2,
                    _ => VType::Double2,
                });
            }
        }
    }
    let mut states: Vec<Option<State>> = vec![None; n];
    states[0] = Some(State {
        stack: Vec::new(),
        locals,
    });
    let mut work: VecDeque<usize> = VecDeque::new();
    work.push_back(0);
    let mut stats = BVerifyStats::default();

    // Pre-compute handler entries: any pc in [start,end) can transfer to
    // handler with stack [Ref] and the locals observed at that pc.
    while let Some(pc) = work.pop_front() {
        stats.iterations += 1;
        if stats.iterations > 200 * n + 1000 {
            return Err(BVerifyError("verification does not converge".into()));
        }
        let state = states[pc].clone().expect("queued pc has state");
        stats.max_stack = stats.max_stack.max(state.stack.len() as u16);
        let op = &code.ops[pc];
        let mut s = state.clone();
        transfer(prog, code, op, &mut s)
            .map_err(|e| BVerifyError(format!("at {pc} ({op:?}): {e}")))?;
        stats.max_stack = stats.max_stack.max(s.stack.len() as u16);
        // Exception edges from this pc.
        for e in &code.ex_table {
            if (pc as u32) >= e.start && (pc as u32) < e.end {
                let h = State {
                    stack: vec![VType::Ref],
                    locals: state.locals.clone(),
                };
                merge_into(&mut states, e.handler as usize, h, &mut work, &mut stats)?;
            }
        }
        // Normal successors.
        if let Some(t) = op.branch_target() {
            merge_into(&mut states, t as usize, s.clone(), &mut work, &mut stats)?;
        }
        let falls_through = !op.is_terminator();
        if falls_through {
            let next = pc + 1;
            if next >= n {
                return Err(BVerifyError("control falls off the end".into()));
            }
            merge_into(&mut states, next, s, &mut work, &mut stats)?;
        }
    }
    Ok(stats)
}

fn merge_into(
    states: &mut [Option<State>],
    target: usize,
    incoming: State,
    work: &mut VecDeque<usize>,
    stats: &mut BVerifyStats,
) -> Result<(), BVerifyError> {
    if target >= states.len() {
        return Err(BVerifyError(format!("branch target {target} out of range")));
    }
    match &mut states[target] {
        slot @ None => {
            *slot = Some(incoming);
            work.push_back(target);
        }
        Some(existing) => {
            stats.merges += 1;
            if existing.stack.len() != incoming.stack.len() {
                return Err(BVerifyError(format!(
                    "stack depth mismatch at {target}: {} vs {}",
                    existing.stack.len(),
                    incoming.stack.len()
                )));
            }
            let mut changed = false;
            for (a, b) in existing.stack.iter().zip(&incoming.stack) {
                if a != b {
                    return Err(BVerifyError(format!(
                        "stack type mismatch at {target}: {a:?} vs {b:?}"
                    )));
                }
            }
            for (a, b) in existing.locals.iter_mut().zip(&incoming.locals) {
                if *a != *b && a.is_some() {
                    // conflicting local becomes undefined
                    *a = None;
                    changed = true;
                }
            }
            if changed {
                work.push_back(target);
            }
        }
    }
    Ok(())
}

fn pop(s: &mut State, want: VType) -> Result<(), String> {
    match s.stack.pop() {
        None => Err("stack underflow".into()),
        Some(got) if got == want => Ok(()),
        Some(got) => Err(format!("expected {want:?}, found {got:?}")),
    }
}

fn push(s: &mut State, v: VType) {
    s.stack.push(v);
}

fn load(s: &mut State, slot: u16, want: VType) -> Result<(), String> {
    match s.locals.get(slot as usize) {
        Some(Some(t)) if *t == want => {
            push(s, want);
            Ok(())
        }
        Some(Some(t)) => Err(format!("local {slot} holds {t:?}, expected {want:?}")),
        _ => Err(format!("read of undefined local {slot}")),
    }
}

fn store(s: &mut State, slot: u16, v: VType) -> Result<(), String> {
    pop(s, v)?;
    let idx = slot as usize;
    if idx + v.width() > s.locals.len() {
        return Err(format!("store to local {slot} out of range"));
    }
    s.locals[idx] = Some(v);
    if v.width() == 2 {
        s.locals[idx + 1] = Some(match v {
            VType::Long => VType::Long2,
            _ => VType::Double2,
        });
    }
    Ok(())
}

#[allow(clippy::too_many_lines)]
fn transfer(prog: &Program, code: &Code, op: &Op, s: &mut State) -> Result<(), String> {
    use Op::*;
    use VType::*;
    match op {
        IConst(_) => push(s, Int),
        LConst(_) => push(s, Long),
        FConst(_) => push(s, Float),
        DConst(_) => push(s, Double),
        SConst(_) | AConstNull => push(s, Ref),
        ILoad(x) => return load(s, *x, Int),
        LLoad(x) => return load(s, *x, Long),
        FLoad(x) => return load(s, *x, Float),
        DLoad(x) => return load(s, *x, Double),
        ALoad(x) => return load(s, *x, Ref),
        IStore(x) => return store(s, *x, Int),
        LStore(x) => return store(s, *x, Long),
        FStore(x) => return store(s, *x, Float),
        DStore(x) => return store(s, *x, Double),
        AStore(x) => return store(s, *x, Ref),
        IInc(x, _) => match s.locals.get(*x as usize) {
            Some(Some(Int)) => {}
            _ => return Err(format!("iinc on non-int local {x}")),
        },
        Pop => {
            let v = s.stack.pop().ok_or("stack underflow")?;
            if v.width() != 1 {
                return Err("pop of wide value".into());
            }
        }
        Pop2 => {
            let v = s.stack.pop().ok_or("stack underflow")?;
            if v.width() == 1 {
                let w = s.stack.pop().ok_or("stack underflow")?;
                if w.width() != 1 {
                    return Err("pop2 splitting a wide value".into());
                }
            }
        }
        Dup => {
            let v = *s.stack.last().ok_or("stack underflow")?;
            if v.width() != 1 {
                return Err("dup of wide value".into());
            }
            push(s, v);
        }
        Dup2 => {
            let v = *s.stack.last().ok_or("stack underflow")?;
            if v.width() == 2 {
                push(s, v);
            } else {
                let n = s.stack.len();
                if n < 2 {
                    return Err("stack underflow".into());
                }
                let a = s.stack[n - 2];
                let b = s.stack[n - 1];
                push(s, a);
                push(s, b);
            }
        }
        DupX1 => {
            let a = s.stack.pop().ok_or("underflow")?;
            let b = s.stack.pop().ok_or("underflow")?;
            if a.width() != 1 || b.width() != 1 {
                return Err("dup_x1 on wide values".into());
            }
            push(s, a);
            push(s, b);
            push(s, a);
        }
        Dup2X1 => {
            // our compiler only uses this for wide a over 1-slot b
            let a = s.stack.pop().ok_or("underflow")?;
            let b = s.stack.pop().ok_or("underflow")?;
            push(s, a);
            push(s, b);
            push(s, a);
        }
        DupX2 => {
            let a = s.stack.pop().ok_or("underflow")?;
            let b = s.stack.pop().ok_or("underflow")?;
            let c = s.stack.pop().ok_or("underflow")?;
            push(s, a);
            push(s, c);
            push(s, b);
            push(s, a);
        }
        Dup2X2 => {
            let a = s.stack.pop().ok_or("underflow")?;
            let b = s.stack.pop().ok_or("underflow")?;
            let c = s.stack.pop().ok_or("underflow")?;
            push(s, a);
            push(s, c);
            push(s, b);
            push(s, a);
        }
        Swap => {
            let a = s.stack.pop().ok_or("underflow")?;
            let b = s.stack.pop().ok_or("underflow")?;
            push(s, a);
            push(s, b);
        }
        IAdd | ISub | IMul | IDiv | IRem | IShl | IShr | IUshr | IAnd | IOr | IXor => {
            pop(s, Int)?;
            pop(s, Int)?;
            push(s, Int);
        }
        INeg => {
            pop(s, Int)?;
            push(s, Int);
        }
        LAdd | LSub | LMul | LDiv | LRem | LAnd | LOr | LXor => {
            pop(s, Long)?;
            pop(s, Long)?;
            push(s, Long);
        }
        LShl | LShr | LUshr => {
            pop(s, Int)?;
            pop(s, Long)?;
            push(s, Long);
        }
        LNeg => {
            pop(s, Long)?;
            push(s, Long);
        }
        FAdd | FSub | FMul | FDiv | FRem => {
            pop(s, Float)?;
            pop(s, Float)?;
            push(s, Float);
        }
        FNeg => {
            pop(s, Float)?;
            push(s, Float);
        }
        DAdd | DSub | DMul | DDiv | DRem => {
            pop(s, Double)?;
            pop(s, Double)?;
            push(s, Double);
        }
        DNeg => {
            pop(s, Double)?;
            push(s, Double);
        }
        I2L => {
            pop(s, Int)?;
            push(s, Long);
        }
        I2F => {
            pop(s, Int)?;
            push(s, Float);
        }
        I2D => {
            pop(s, Int)?;
            push(s, Double);
        }
        I2C => {
            pop(s, Int)?;
            push(s, Int);
        }
        L2I => {
            pop(s, Long)?;
            push(s, Int);
        }
        L2F => {
            pop(s, Long)?;
            push(s, Float);
        }
        L2D => {
            pop(s, Long)?;
            push(s, Double);
        }
        F2I => {
            pop(s, Float)?;
            push(s, Int);
        }
        F2L => {
            pop(s, Float)?;
            push(s, Long);
        }
        F2D => {
            pop(s, Float)?;
            push(s, Double);
        }
        D2I => {
            pop(s, Double)?;
            push(s, Int);
        }
        D2L => {
            pop(s, Double)?;
            push(s, Long);
        }
        D2F => {
            pop(s, Double)?;
            push(s, Float);
        }
        LCmp => {
            pop(s, Long)?;
            pop(s, Long)?;
            push(s, Int);
        }
        FCmpL | FCmpG => {
            pop(s, Float)?;
            pop(s, Float)?;
            push(s, Int);
        }
        DCmpL | DCmpG => {
            pop(s, Double)?;
            pop(s, Double)?;
            push(s, Int);
        }
        IfEq(_) | IfNe(_) | IfLt(_) | IfLe(_) | IfGt(_) | IfGe(_) => pop(s, Int)?,
        IfICmpEq(_) | IfICmpNe(_) | IfICmpLt(_) | IfICmpLe(_) | IfICmpGt(_) | IfICmpGe(_) => {
            pop(s, Int)?;
            pop(s, Int)?;
        }
        IfACmpEq(_) | IfACmpNe(_) => {
            pop(s, Ref)?;
            pop(s, Ref)?;
        }
        IfNull(_) | IfNonNull(_) => pop(s, Ref)?,
        Goto(_) => {}
        NewArray(_, _) => {
            pop(s, Int)?;
            push(s, Ref);
        }
        ArrayLength => {
            pop(s, Ref)?;
            push(s, Int);
        }
        IALoad | BALoad | CALoad => {
            pop(s, Int)?;
            pop(s, Ref)?;
            push(s, Int);
        }
        LALoad => {
            pop(s, Int)?;
            pop(s, Ref)?;
            push(s, Long);
        }
        FALoad => {
            pop(s, Int)?;
            pop(s, Ref)?;
            push(s, Float);
        }
        DALoad => {
            pop(s, Int)?;
            pop(s, Ref)?;
            push(s, Double);
        }
        AALoad => {
            pop(s, Int)?;
            pop(s, Ref)?;
            push(s, Ref);
        }
        IAStore | BAStore | CAStore => {
            pop(s, Int)?;
            pop(s, Int)?;
            pop(s, Ref)?;
        }
        LAStore => {
            pop(s, Long)?;
            pop(s, Int)?;
            pop(s, Ref)?;
        }
        FAStore => {
            pop(s, Float)?;
            pop(s, Int)?;
            pop(s, Ref)?;
        }
        DAStore => {
            pop(s, Double)?;
            pop(s, Int)?;
            pop(s, Ref)?;
        }
        AAStore => {
            pop(s, Ref)?;
            pop(s, Int)?;
            pop(s, Ref)?;
        }
        New(_) => push(s, Ref),
        GetField(c, f) => {
            pop(s, Ref)?;
            push(s, vtype_of(&prog.field(*c, *f).ty));
        }
        PutField(c, f) => {
            pop(s, vtype_of(&prog.field(*c, *f).ty))?;
            pop(s, Ref)?;
        }
        GetStatic(c, f) => push(s, vtype_of(&prog.field(*c, *f).ty)),
        PutStatic(c, f) => pop(s, vtype_of(&prog.field(*c, *f).ty))?,
        InvokeStatic(c, m) | InvokeSpecial(c, m) | InvokeVirtual(c, m) => {
            let meta = prog.method(*c, *m);
            for p in meta.params.iter().rev() {
                pop(s, vtype_of(p))?;
            }
            if !matches!(op, InvokeStatic(_, _)) {
                pop(s, Ref)?;
            }
            if meta.ret != Ty::Void {
                push(s, vtype_of(&meta.ret));
            }
        }
        CheckCast(t) => {
            pop(s, Ref)?;
            let _ = code.types.get(*t as usize).ok_or("bad type index")?;
            push(s, Ref);
        }
        InstanceOf(t) => {
            pop(s, Ref)?;
            let _ = code.types.get(*t as usize).ok_or("bad type index")?;
            push(s, Int);
        }
        AThrow => pop(s, Ref)?,
        IReturn => pop(s, Int)?,
        LReturn => pop(s, Long)?,
        FReturn => pop(s, Float)?,
        DReturn => pop(s, Double)?,
        AReturn => pop(s, Ref)?,
        Return => {}
    }
    Ok(())
}

/// Verifies every compiled method and fills in `max_stack`.
///
/// # Errors
///
/// Returns the first method that fails verification.
pub fn verify_program(
    prog: &Program,
    compiled: &mut crate::compile::CompiledProgram,
) -> Result<BVerifyStats, BVerifyError> {
    let mut total = BVerifyStats::default();
    let keys: Vec<(usize, usize)> = compiled.methods.keys().copied().collect();
    for (c, m) in keys {
        let code = compiled.methods.get(&(c, m)).expect("key exists").clone();
        let stats = verify_method(prog, c, m, &code)?;
        let entry = compiled.methods.get_mut(&(c, m)).expect("key exists");
        entry.max_stack = stats.max_stack;
        total.iterations += stats.iterations;
        total.merges += stats.merges;
        total.max_stack = total.max_stack.max(stats.max_stack);
    }
    Ok(total)
}
