//! Host intrinsics: the native implementations of the imported
//! classes' methods (`Math`, `Sys`, `String`, `Throwable`).
//!
//! Engines resolve a method to an intrinsic by a descriptor key of the
//! form `Class.name(SIG)` where `SIG` uses JVM-style letters
//! (`Z C I J F D` for primitives, `L` for any reference).

use crate::format;
use crate::heap::{Heap, HeapRef, Obj};
use crate::value::Value;
use crate::{Output, Trap};

/// The intrinsic operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Intrinsic {
    ObjectCtor,
    MathSqrt,
    MathAbsI,
    MathAbsL,
    MathAbsD,
    MathMinI,
    MathMaxI,
    MathMinD,
    MathMaxD,
    MathFloor,
    MathCeil,
    MathPow,
    SysPrintI,
    SysPrintL,
    SysPrintD,
    SysPrintC,
    SysPrintB,
    SysPrintS,
    SysPrintlnI,
    SysPrintlnL,
    SysPrintlnD,
    SysPrintlnC,
    SysPrintlnB,
    SysPrintlnS,
    SysPrintln,
    StrLength,
    StrCharAt,
    StrConcat,
    StrEquals,
    StrCompareTo,
    StrIndexOfChar,
    StrSubstring,
    StrValueOfI,
    StrValueOfL,
    StrValueOfD,
    StrValueOfC,
    StrValueOfB,
    ThrowableCtor,
    ThrowableCtorMsg,
    ThrowableGetMessage,
}

/// Resolves a descriptor key (`"Math.sqrt(D)"`, `"String.charAt(I)"`).
/// Receivers are not part of the signature. The throwable-hierarchy
/// classes all share the `Throwable` constructors, so any class name is
/// accepted for `<init>()` / `<init>(L)` / `getMessage()` when the
/// specific key is unknown.
pub fn resolve(class: &str, method: &str, sig: &str) -> Option<Intrinsic> {
    use Intrinsic::*;
    let key = (class, method, sig);
    Some(match key {
        ("Object", "<init>", "") => ObjectCtor,
        ("Math", "sqrt", "D") => MathSqrt,
        ("Math", "abs", "I") => MathAbsI,
        ("Math", "abs", "J") => MathAbsL,
        ("Math", "abs", "D") => MathAbsD,
        ("Math", "min", "II") => MathMinI,
        ("Math", "max", "II") => MathMaxI,
        ("Math", "min", "DD") => MathMinD,
        ("Math", "max", "DD") => MathMaxD,
        ("Math", "floor", "D") => MathFloor,
        ("Math", "ceil", "D") => MathCeil,
        ("Math", "pow", "DD") => MathPow,
        ("Sys", "print", "I") => SysPrintI,
        ("Sys", "print", "J") => SysPrintL,
        ("Sys", "print", "D") => SysPrintD,
        ("Sys", "print", "C") => SysPrintC,
        ("Sys", "print", "Z") => SysPrintB,
        ("Sys", "print", "L") => SysPrintS,
        ("Sys", "println", "I") => SysPrintlnI,
        ("Sys", "println", "J") => SysPrintlnL,
        ("Sys", "println", "D") => SysPrintlnD,
        ("Sys", "println", "C") => SysPrintlnC,
        ("Sys", "println", "Z") => SysPrintlnB,
        ("Sys", "println", "L") => SysPrintlnS,
        ("Sys", "println", "") => SysPrintln,
        ("String", "length", "") => StrLength,
        ("String", "charAt", "I") => StrCharAt,
        ("String", "concat", "L") => StrConcat,
        ("String", "equals", "L") => StrEquals,
        ("String", "compareTo", "L") => StrCompareTo,
        ("String", "indexOf", "C") => StrIndexOfChar,
        ("String", "substring", "II") => StrSubstring,
        ("String", "valueOf", "I") => StrValueOfI,
        ("String", "valueOf", "J") => StrValueOfL,
        ("String", "valueOf", "D") => StrValueOfD,
        ("String", "valueOf", "C") => StrValueOfC,
        ("String", "valueOf", "Z") => StrValueOfB,
        (_, "<init>", "") => ThrowableCtor,
        (_, "<init>", "L") => ThrowableCtorMsg,
        (_, "getMessage", "") => ThrowableGetMessage,
        _ => return None,
    })
}

fn str_of(heap: &Heap, v: Value) -> Result<std::rc::Rc<str>, Trap> {
    match v.as_ref() {
        None => Err(Trap::NullPointer),
        Some(r) => Ok(heap.str(r)?.clone()),
    }
}

/// Invokes an intrinsic. `recv` carries the receiver for instance
/// intrinsics (already null-checked by the caller for SafeTSA; the
/// baseline checks here).
///
/// # Errors
///
/// Traps on null receivers/arguments and string index violations.
pub fn invoke(
    i: Intrinsic,
    heap: &mut Heap,
    out: &mut Output,
    recv: Option<Value>,
    args: &[Value],
) -> Result<Option<Value>, Trap> {
    use Intrinsic::*;
    let recv_ref = || -> Result<HeapRef, Trap> {
        recv.ok_or_else(|| Trap::Internal("missing receiver".into()))?
            .as_ref()
            .ok_or(Trap::NullPointer)
    };
    Ok(match i {
        ObjectCtor | ThrowableCtor => None,
        ThrowableCtorMsg => {
            let r = recv_ref()?;
            let msg = args[0].as_ref();
            match heap.get_mut(r) {
                Obj::Instance { msg: slot, .. } => *slot = msg,
                _ => return Err(Trap::Internal("throwable ctor on non-instance".into())),
            }
            None
        }
        ThrowableGetMessage => {
            let r = recv_ref()?;
            match heap.get(r) {
                Obj::Instance { msg, .. } => Some(Value::Ref(*msg)),
                _ => return Err(Trap::Internal("getMessage on non-instance".into())),
            }
        }
        MathSqrt => Some(Value::D(args[0].as_d().sqrt())),
        MathAbsI => Some(Value::I(args[0].as_i().wrapping_abs())),
        MathAbsL => Some(Value::J(args[0].as_j().wrapping_abs())),
        MathAbsD => Some(Value::D(args[0].as_d().abs())),
        MathMinI => Some(Value::I(args[0].as_i().min(args[1].as_i()))),
        MathMaxI => Some(Value::I(args[0].as_i().max(args[1].as_i()))),
        MathMinD => {
            let (a, b) = (args[0].as_d(), args[1].as_d());
            Some(Value::D(if a.is_nan() || b.is_nan() {
                f64::NAN
            } else {
                a.min(b)
            }))
        }
        MathMaxD => {
            let (a, b) = (args[0].as_d(), args[1].as_d());
            Some(Value::D(if a.is_nan() || b.is_nan() {
                f64::NAN
            } else {
                a.max(b)
            }))
        }
        MathFloor => Some(Value::D(args[0].as_d().floor())),
        MathCeil => Some(Value::D(args[0].as_d().ceil())),
        MathPow => Some(Value::D(args[0].as_d().powf(args[1].as_d()))),
        SysPrintI => {
            out.push(&format::fmt_int(args[0].as_i()));
            None
        }
        SysPrintL => {
            out.push(&format::fmt_long(args[0].as_j()));
            None
        }
        SysPrintD => {
            out.push(&format::fmt_double(args[0].as_d()));
            None
        }
        SysPrintC => {
            out.push(&format::fmt_char(args[0].as_c()));
            None
        }
        SysPrintB => {
            out.push(&format::fmt_bool(args[0].as_z()));
            None
        }
        SysPrintS => {
            let s = str_of(heap, args[0])?;
            out.push(&s);
            None
        }
        SysPrintlnI => {
            out.push(&format::fmt_int(args[0].as_i()));
            out.newline();
            None
        }
        SysPrintlnL => {
            out.push(&format::fmt_long(args[0].as_j()));
            out.newline();
            None
        }
        SysPrintlnD => {
            out.push(&format::fmt_double(args[0].as_d()));
            out.newline();
            None
        }
        SysPrintlnC => {
            out.push(&format::fmt_char(args[0].as_c()));
            out.newline();
            None
        }
        SysPrintlnB => {
            out.push(&format::fmt_bool(args[0].as_z()));
            out.newline();
            None
        }
        SysPrintlnS => {
            let s = str_of(heap, args[0])?;
            out.push(&s);
            out.newline();
            None
        }
        SysPrintln => {
            out.newline();
            None
        }
        StrLength => {
            let r = recv_ref()?;
            let s = heap.str(r)?.clone();
            Some(Value::I(s.encode_utf16().count() as i32))
        }
        StrCharAt => {
            let r = recv_ref()?;
            let s = heap.str(r)?.clone();
            let i = args[0].as_i();
            if i < 0 {
                return Err(Trap::IndexOutOfBounds);
            }
            let u = s
                .encode_utf16()
                .nth(i as usize)
                .ok_or(Trap::IndexOutOfBounds)?;
            Some(Value::C(u))
        }
        StrConcat => {
            let r = recv_ref()?;
            let a = heap.str(r)?.clone();
            let b = str_of(heap, args[0])?;
            let joined: String = format!("{a}{b}");
            Some(Value::Ref(Some(heap.try_alloc_str(joined)?)))
        }
        StrEquals => {
            let r = recv_ref()?;
            let a = heap.str(r)?.clone();
            // Java's equals(null) is false; equals(non-string) too.
            let eq = match args[0].as_ref() {
                None => false,
                Some(o) => match heap.get(o) {
                    Obj::Str(b) => *a == **b,
                    _ => false,
                },
            };
            Some(Value::Z(eq))
        }
        StrCompareTo => {
            let r = recv_ref()?;
            let a = heap.str(r)?.clone();
            let b = str_of(heap, args[0])?;
            // UTF-16 code unit comparison like Java.
            let av: Vec<u16> = a.encode_utf16().collect();
            let bv: Vec<u16> = b.encode_utf16().collect();
            let ord = match av.cmp(&bv) {
                std::cmp::Ordering::Less => -1,
                std::cmp::Ordering::Equal => 0,
                std::cmp::Ordering::Greater => 1,
            };
            Some(Value::I(ord))
        }
        StrIndexOfChar => {
            let r = recv_ref()?;
            let s = heap.str(r)?.clone();
            let c = args[0].as_c();
            let pos = s
                .encode_utf16()
                .position(|u| u == c)
                .map(|p| p as i32)
                .unwrap_or(-1);
            Some(Value::I(pos))
        }
        StrSubstring => {
            let r = recv_ref()?;
            let s = heap.str(r)?.clone();
            let units: Vec<u16> = s.encode_utf16().collect();
            let (b, e) = (args[0].as_i(), args[1].as_i());
            if b < 0 || e < b || e as usize > units.len() {
                return Err(Trap::IndexOutOfBounds);
            }
            let sub = String::from_utf16_lossy(&units[b as usize..e as usize]);
            Some(Value::Ref(Some(heap.try_alloc_str(sub)?)))
        }
        StrValueOfI => Some(Value::Ref(Some(
            heap.try_alloc_str(format::fmt_int(args[0].as_i()))?,
        ))),
        StrValueOfL => Some(Value::Ref(Some(
            heap.try_alloc_str(format::fmt_long(args[0].as_j()))?,
        ))),
        StrValueOfD => Some(Value::Ref(Some(
            heap.try_alloc_str(format::fmt_double(args[0].as_d()))?,
        ))),
        StrValueOfC => Some(Value::Ref(Some(
            heap.try_alloc_str(format::fmt_char(args[0].as_c()))?,
        ))),
        StrValueOfB => Some(Value::Ref(Some(
            heap.try_alloc_str(format::fmt_bool(args[0].as_z()))?,
        ))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_descriptors() {
        assert_eq!(resolve("Math", "sqrt", "D"), Some(Intrinsic::MathSqrt));
        assert_eq!(resolve("Math", "min", "II"), Some(Intrinsic::MathMinI));
        assert_eq!(resolve("Sys", "println", ""), Some(Intrinsic::SysPrintln));
        assert_eq!(
            resolve("ArithmeticException", "<init>", "L"),
            Some(Intrinsic::ThrowableCtorMsg)
        );
        assert_eq!(resolve("Math", "nope", "D"), None);
    }

    #[test]
    fn math_and_prints() {
        let mut heap = Heap::new();
        let mut out = Output::new();
        let v = invoke(
            Intrinsic::MathSqrt,
            &mut heap,
            &mut out,
            None,
            &[Value::D(9.0)],
        )
        .unwrap();
        assert_eq!(v, Some(Value::D(3.0)));
        invoke(
            Intrinsic::SysPrintlnI,
            &mut heap,
            &mut out,
            None,
            &[Value::I(7)],
        )
        .unwrap();
        assert_eq!(out.text(), "7\n");
    }

    #[test]
    fn string_ops() {
        let mut heap = Heap::new();
        let mut out = Output::new();
        let a = heap.alloc_str("abc");
        let b = heap.alloc_str("def");
        let joined = invoke(
            Intrinsic::StrConcat,
            &mut heap,
            &mut out,
            Some(Value::Ref(Some(a))),
            &[Value::Ref(Some(b))],
        )
        .unwrap()
        .unwrap();
        let j = joined.as_ref().unwrap();
        assert_eq!(&**heap.str(j).unwrap(), "abcdef");
        let len = invoke(
            Intrinsic::StrLength,
            &mut heap,
            &mut out,
            Some(Value::Ref(Some(j))),
            &[],
        )
        .unwrap();
        assert_eq!(len, Some(Value::I(6)));
        let ch = invoke(
            Intrinsic::StrCharAt,
            &mut heap,
            &mut out,
            Some(Value::Ref(Some(j))),
            &[Value::I(3)],
        )
        .unwrap();
        assert_eq!(ch, Some(Value::C(b'd' as u16)));
        let oob = invoke(
            Intrinsic::StrCharAt,
            &mut heap,
            &mut out,
            Some(Value::Ref(Some(j))),
            &[Value::I(10)],
        );
        assert_eq!(oob, Err(Trap::IndexOutOfBounds));
    }

    #[test]
    fn throwable_message_round_trip() {
        let mut heap = Heap::new();
        let mut out = Output::new();
        let msg = heap.alloc_str("boom");
        let obj = heap.alloc(Obj::Instance {
            class: 3,
            fields: vec![],
            msg: None,
        });
        invoke(
            Intrinsic::ThrowableCtorMsg,
            &mut heap,
            &mut out,
            Some(Value::Ref(Some(obj))),
            &[Value::Ref(Some(msg))],
        )
        .unwrap();
        let got = invoke(
            Intrinsic::ThrowableGetMessage,
            &mut heap,
            &mut out,
            Some(Value::Ref(Some(obj))),
            &[],
        )
        .unwrap();
        assert_eq!(got, Some(Value::Ref(Some(msg))));
    }

    #[test]
    fn null_receiver_traps() {
        let mut heap = Heap::new();
        let mut out = Output::new();
        let r = invoke(
            Intrinsic::StrLength,
            &mut heap,
            &mut out,
            Some(Value::NULL),
            &[],
        );
        assert_eq!(r, Err(Trap::NullPointer));
    }
}
