//! Java-style textual formatting of primitive values, shared by the
//! print intrinsics and `String.valueOf` so both engines print
//! identically.

/// Formats an `int` like Java.
pub fn fmt_int(v: i32) -> String {
    v.to_string()
}

/// Formats a `long` like Java (no suffix).
pub fn fmt_long(v: i64) -> String {
    v.to_string()
}

/// Formats a `boolean` like Java.
pub fn fmt_bool(v: bool) -> String {
    v.to_string()
}

/// Formats a `char` like Java (the raw character).
pub fn fmt_char(v: u16) -> String {
    char::from_u32(v as u32).unwrap_or('\u{FFFD}').to_string()
}

/// Formats a `double` approximating `Double.toString`: integral values
/// keep a trailing `.0`, NaN/infinities use Java spellings. (Exact
/// shortest-repr digits differ from the JLS in corner cases; the
/// differential tests only compare engine-vs-engine, where this is
/// shared.)
pub fn fmt_double(v: f64) -> String {
    if v.is_nan() {
        return "NaN".to_string();
    }
    if v.is_infinite() {
        return if v > 0.0 { "Infinity" } else { "-Infinity" }.to_string();
    }
    if v == v.trunc() && v.abs() < 1e16 {
        // Integral: Java prints "4.0".
        let mut s = format!("{v:.1}");
        if s == "-0.0" && v.is_sign_negative() {
            // keep Java's -0.0
        } else if v == 0.0 && v.is_sign_negative() {
            s = "-0.0".to_string();
        }
        s
    } else {
        format!("{v}")
    }
}

/// Formats a `float` (via the same scheme as doubles).
pub fn fmt_float(v: f32) -> String {
    if v.is_nan() {
        return "NaN".to_string();
    }
    if v.is_infinite() {
        return if v > 0.0 { "Infinity" } else { "-Infinity" }.to_string();
    }
    if v == v.trunc() && v.abs() < 1e7 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ints_and_longs() {
        assert_eq!(fmt_int(-42), "-42");
        assert_eq!(fmt_long(1i64 << 40), "1099511627776");
    }

    #[test]
    fn doubles_keep_point_zero() {
        assert_eq!(fmt_double(4.0), "4.0");
        assert_eq!(fmt_double(-0.5), "-0.5");
        assert_eq!(fmt_double(f64::NAN), "NaN");
        assert_eq!(fmt_double(f64::INFINITY), "Infinity");
        assert_eq!(fmt_double(f64::NEG_INFINITY), "-Infinity");
        assert_eq!(fmt_double(-0.0), "-0.0");
    }

    #[test]
    fn chars() {
        assert_eq!(fmt_char(b'x' as u16), "x");
        assert_eq!(fmt_bool(true), "true");
    }
}
