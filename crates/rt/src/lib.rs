//! # safetsa-rt
//!
//! The shared runtime substrate for the two execution engines of the
//! reproduction: the SafeTSA interpreter (`safetsa-vm`) and the Java
//! bytecode baseline interpreter (`safetsa-baseline`). Sharing the
//! heap, value, intrinsic, and formatting machinery guarantees that the
//! differential tests compare the *code representations*, not two
//! divergent library implementations.

#![warn(missing_docs)]

pub mod format;
pub mod heap;
pub mod intrinsics;
pub mod layout;
pub mod value;

pub use heap::{Heap, HeapRef, Obj};
pub use value::Value;

/// The runtime-level exceptional conditions; the engines map these to
/// instances of the built-in exception classes.
#[derive(Debug, Clone, PartialEq)]
pub enum Trap {
    /// Integer division or remainder by zero.
    DivByZero,
    /// Dereference of `null`.
    NullPointer,
    /// Array index out of bounds (also string index intrinsics).
    IndexOutOfBounds,
    /// Failed checked cast.
    ClassCast,
    /// `new T[n]` with negative `n`.
    NegativeArraySize,
    /// A user `throw` (payload: the thrown object).
    User(HeapRef),
    /// Executing engine detected an internal inconsistency — never
    /// expected for verified input.
    Internal(String),
    /// Execution exceeded the configured step budget (guards tests
    /// against accidental infinite loops).
    OutOfFuel,
    /// Execution ran past its wall-clock deadline. Like [`Trap::OutOfFuel`]
    /// this is an engine-level abort, not a catchable guest exception —
    /// a handler would itself run past the deadline.
    DeadlineExceeded,
    /// An allocation exceeded the configured heap byte budget; the
    /// engines map this to `OutOfMemoryError`, so governed code can
    /// catch it like real Java.
    OutOfMemory,
    /// The call depth exceeded the configured stack budget; mapped to
    /// `StackOverflowError`.
    StackOverflow,
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Trap::DivByZero => write!(f, "division by zero"),
            Trap::NullPointer => write!(f, "null pointer"),
            Trap::IndexOutOfBounds => write!(f, "index out of bounds"),
            Trap::ClassCast => write!(f, "class cast"),
            Trap::NegativeArraySize => write!(f, "negative array size"),
            Trap::User(r) => write!(f, "user exception at {r:?}"),
            Trap::Internal(s) => write!(f, "internal: {s}"),
            Trap::OutOfFuel => write!(f, "out of fuel"),
            Trap::DeadlineExceeded => write!(f, "deadline exceeded"),
            Trap::OutOfMemory => write!(f, "out of memory"),
            Trap::StackOverflow => write!(f, "stack overflow"),
        }
    }
}

impl std::error::Error for Trap {}

/// Captured program output (`Sys.print*`), shared by both engines so
/// differential tests can compare byte-for-byte.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Output {
    buffer: String,
}

impl Output {
    /// Creates an empty output buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw text.
    pub fn push(&mut self, s: &str) {
        self.buffer.push_str(s);
    }

    /// Appends a newline.
    pub fn newline(&mut self) {
        self.buffer.push('\n');
    }

    /// The captured text.
    pub fn text(&self) -> &str {
        &self.buffer
    }

    /// Consumes the buffer.
    pub fn into_text(self) -> String {
        self.buffer
    }
}
