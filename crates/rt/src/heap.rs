//! The shared heap: class instances, typed arrays, and strings.

use crate::value::Value;
use crate::Trap;
use std::rc::Rc;

/// A heap handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HeapRef(pub u32);

/// Element storage of an array (typed, as a real VM would lay out).
#[derive(Debug, Clone, PartialEq)]
pub enum ArrData {
    /// `boolean[]`.
    Z(Vec<bool>),
    /// `char[]`.
    C(Vec<u16>),
    /// `int[]`.
    I(Vec<i32>),
    /// `long[]`.
    J(Vec<i64>),
    /// `float[]`.
    F(Vec<f32>),
    /// `double[]`.
    D(Vec<f64>),
    /// Reference arrays (classes, strings, nested arrays).
    R(Vec<Option<HeapRef>>),
}

impl ArrData {
    /// The per-element storage width in bytes of this array's kind.
    pub fn elem_width(&self) -> u64 {
        match self {
            ArrData::Z(_) => 1,
            ArrData::C(_) => 2,
            ArrData::I(_) | ArrData::F(_) => 4,
            ArrData::J(_) | ArrData::D(_) | ArrData::R(_) => 8,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            ArrData::Z(v) => v.len(),
            ArrData::C(v) => v.len(),
            ArrData::I(v) => v.len(),
            ArrData::J(v) => v.len(),
            ArrData::F(v) => v.len(),
            ArrData::D(v) => v.len(),
            ArrData::R(v) => v.len(),
        }
    }

    /// Whether the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads element `i`.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::IndexOutOfBounds`] when out of range.
    pub fn get(&self, i: usize) -> Result<Value, Trap> {
        if i >= self.len() {
            return Err(Trap::IndexOutOfBounds);
        }
        Ok(match self {
            ArrData::Z(v) => Value::Z(v[i]),
            ArrData::C(v) => Value::C(v[i]),
            ArrData::I(v) => Value::I(v[i]),
            ArrData::J(v) => Value::J(v[i]),
            ArrData::F(v) => Value::F(v[i]),
            ArrData::D(v) => Value::D(v[i]),
            ArrData::R(v) => Value::Ref(v[i]),
        })
    }

    /// Writes element `i`.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::IndexOutOfBounds`] when out of range, or
    /// [`Trap::Internal`] on a kind mismatch (verified code never does).
    pub fn set(&mut self, i: usize, v: Value) -> Result<(), Trap> {
        if i >= self.len() {
            return Err(Trap::IndexOutOfBounds);
        }
        match (self, v) {
            (ArrData::Z(a), Value::Z(x)) => a[i] = x,
            (ArrData::C(a), Value::C(x)) => a[i] = x,
            (ArrData::I(a), Value::I(x)) => a[i] = x,
            (ArrData::J(a), Value::J(x)) => a[i] = x,
            (ArrData::F(a), Value::F(x)) => a[i] = x,
            (ArrData::D(a), Value::D(x)) => a[i] = x,
            (ArrData::R(a), Value::Ref(x)) => a[i] = x,
            _ => return Err(Trap::Internal("array element kind mismatch".into())),
        }
        Ok(())
    }
}

/// One heap object.
#[derive(Debug, Clone, PartialEq)]
pub enum Obj {
    /// A class instance with flattened fields (superclass fields first).
    Instance {
        /// Class index (engine-specific class table).
        class: usize,
        /// Flattened instance fields.
        fields: Vec<Value>,
        /// Message slot of throwables (hidden host field).
        msg: Option<HeapRef>,
    },
    /// An array. `elem_class` distinguishes reference element types for
    /// `instanceof`/checked casts on arrays (unused for primitives).
    Array {
        /// A compact type tag assigned by the engine (opaque to rt).
        type_tag: u64,
        /// Elements.
        data: ArrData,
    },
    /// An immutable string.
    Str(Rc<str>),
}

/// Fixed per-object byte overhead of the size model (a stand-in for a
/// real VM's object header).
pub const OBJ_HEADER_BYTES: u64 = 16;

/// The modelled byte cost of an array of `len` elements each
/// `elem_width` bytes wide (saturating, so hostile lengths cannot
/// overflow the accounting itself).
pub fn array_size_bytes(elem_width: u64, len: u64) -> u64 {
    OBJ_HEADER_BYTES.saturating_add(elem_width.saturating_mul(len))
}

impl Obj {
    /// The modelled byte cost of this object: a fixed header plus the
    /// payload (8 bytes per instance field, the element width for
    /// arrays, the UTF-8 length for strings).
    pub fn size_bytes(&self) -> u64 {
        match self {
            Obj::Instance { fields, .. } => {
                OBJ_HEADER_BYTES.saturating_add(8u64.saturating_mul(fields.len() as u64))
            }
            Obj::Array { data, .. } => array_size_bytes(data.elem_width(), data.len() as u64),
            Obj::Str(s) => OBJ_HEADER_BYTES.saturating_add(s.len() as u64),
        }
    }
}

/// The heap: a growable object store (no GC — the workloads are
/// bounded; a real system would plug a collector in here). Every
/// allocation is accounted in bytes against an optional budget; the
/// budgeted entry points ([`Heap::try_alloc`], [`Heap::try_alloc_str`],
/// [`Heap::try_reserve`]) turn exhaustion into [`Trap::OutOfMemory`],
/// while the infallible ones ([`Heap::alloc`], [`Heap::alloc_str`]) are
/// reserved for host-side allocations (e.g. the trap exception objects
/// themselves) and still account their bytes.
#[derive(Debug, Clone, Default)]
pub struct Heap {
    objects: Vec<Obj>,
    bytes: u64,
    budget: Option<u64>,
}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Total modelled bytes allocated so far (cumulative — there is no
    /// collector, so this is also the live size).
    pub fn bytes_allocated(&self) -> u64 {
        self.bytes
    }

    /// Sets (or clears) the allocation byte budget. Already-allocated
    /// bytes count against it.
    pub fn set_budget(&mut self, budget: Option<u64>) {
        self.budget = budget;
    }

    /// The configured byte budget, if any.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Checks that `extra` more bytes would fit in the budget without
    /// committing anything. Callers use this to reject oversized
    /// allocations *before* constructing their payload.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::OutOfMemory`] when the budget would be exceeded.
    pub fn try_reserve(&self, extra: u64) -> Result<(), Trap> {
        match self.budget {
            Some(b) if self.bytes.saturating_add(extra) > b => Err(Trap::OutOfMemory),
            _ => Ok(()),
        }
    }

    /// Allocates an object against the byte budget.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::OutOfMemory`] when the budget would be exceeded
    /// (the object is dropped and the heap is unchanged).
    pub fn try_alloc(&mut self, obj: Obj) -> Result<HeapRef, Trap> {
        self.try_reserve(obj.size_bytes())?;
        Ok(self.alloc(obj))
    }

    /// Allocates a string against the byte budget.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::OutOfMemory`] when the budget would be exceeded.
    pub fn try_alloc_str(&mut self, s: impl Into<Rc<str>>) -> Result<HeapRef, Trap> {
        self.try_alloc(Obj::Str(s.into()))
    }

    /// Allocates an object unconditionally (host-reserved path: ignores
    /// the budget but still accounts the bytes).
    pub fn alloc(&mut self, obj: Obj) -> HeapRef {
        self.bytes = self.bytes.saturating_add(obj.size_bytes());
        let r = HeapRef(self.objects.len() as u32);
        self.objects.push(obj);
        r
    }

    /// Allocates a string unconditionally (host-reserved path).
    pub fn alloc_str(&mut self, s: impl Into<Rc<str>>) -> HeapRef {
        self.alloc(Obj::Str(s.into()))
    }

    /// Reads an object.
    ///
    /// # Panics
    ///
    /// Panics on a dangling handle (cannot happen without unsafe code).
    pub fn get(&self, r: HeapRef) -> &Obj {
        &self.objects[r.0 as usize]
    }

    /// Mutable object access.
    ///
    /// # Panics
    ///
    /// Panics on a dangling handle.
    pub fn get_mut(&mut self, r: HeapRef) -> &mut Obj {
        &mut self.objects[r.0 as usize]
    }

    /// Reads a string object's contents.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::Internal`] if the object is not a string.
    pub fn str(&self, r: HeapRef) -> Result<&Rc<str>, Trap> {
        match self.get(r) {
            Obj::Str(s) => Ok(s),
            _ => Err(Trap::Internal("expected string object".into())),
        }
    }

    /// The class of an instance.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::Internal`] if the object is not an instance.
    pub fn instance_class(&self, r: HeapRef) -> Result<usize, Trap> {
        match self.get(r) {
            Obj::Instance { class, .. } => Ok(*class),
            _ => Err(Trap::Internal("expected instance".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_access() {
        let mut h = Heap::new();
        let s = h.alloc_str("hi");
        assert_eq!(&**h.str(s).unwrap(), "hi");
        let a = h.alloc(Obj::Array {
            type_tag: 0,
            data: ArrData::I(vec![0; 3]),
        });
        if let Obj::Array { data, .. } = h.get_mut(a) {
            data.set(1, Value::I(42)).unwrap();
            assert_eq!(data.get(1).unwrap(), Value::I(42));
            assert_eq!(data.get(3), Err(Trap::IndexOutOfBounds));
        } else {
            panic!("not an array");
        }
    }

    #[test]
    fn array_kind_mismatch_is_internal() {
        let mut d = ArrData::I(vec![0]);
        assert!(matches!(d.set(0, Value::Z(true)), Err(Trap::Internal(_))));
    }

    #[test]
    fn byte_accounting_and_budget() {
        let mut h = Heap::new();
        assert_eq!(h.bytes_allocated(), 0);
        h.alloc_str("hi"); // 16 + 2
        assert_eq!(h.bytes_allocated(), 18);
        h.alloc(Obj::Array {
            type_tag: 0,
            data: ArrData::I(vec![0; 4]), // 16 + 4*4
        });
        assert_eq!(h.bytes_allocated(), 50);

        h.set_budget(Some(66));
        // 16 + 8*1 = 24 would exceed 66.
        let r = h.try_alloc(Obj::Instance {
            class: 0,
            fields: vec![Value::I(0)],
            msg: None,
        });
        assert_eq!(r, Err(Trap::OutOfMemory));
        assert_eq!(h.bytes_allocated(), 50, "failed alloc must not account");
        // An empty instance (16 bytes) still fits.
        assert!(h
            .try_alloc(Obj::Instance {
                class: 0,
                fields: vec![],
                msg: None,
            })
            .is_ok());
        assert_eq!(h.bytes_allocated(), 66);
        // The unbudgeted path ignores the (now exhausted) budget.
        assert_eq!(h.try_reserve(1), Err(Trap::OutOfMemory));
        h.alloc_str("overflow is allowed on the host path");
        assert!(h.bytes_allocated() > 66);
    }

    #[test]
    fn array_size_projection_matches_obj_size() {
        let data = ArrData::D(vec![0.0; 7]);
        let projected = array_size_bytes(data.elem_width(), 7);
        let obj = Obj::Array { type_tag: 0, data };
        assert_eq!(obj.size_bytes(), projected);
        assert_eq!(projected, 16 + 8 * 7);
    }

    #[test]
    fn instance_fields() {
        let mut h = Heap::new();
        let o = h.alloc(Obj::Instance {
            class: 5,
            fields: vec![Value::I(0), Value::NULL],
            msg: None,
        });
        assert_eq!(h.instance_class(o).unwrap(), 5);
        if let Obj::Instance { fields, .. } = h.get_mut(o) {
            fields[0] = Value::I(9);
        }
        if let Obj::Instance { fields, .. } = h.get(o) {
            assert_eq!(fields[0], Value::I(9));
        }
    }
}
