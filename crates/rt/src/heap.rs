//! The shared heap: class instances, typed arrays, and strings.

use crate::value::Value;
use crate::Trap;
use std::rc::Rc;

/// A heap handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HeapRef(pub u32);

/// Element storage of an array (typed, as a real VM would lay out).
#[derive(Debug, Clone, PartialEq)]
pub enum ArrData {
    /// `boolean[]`.
    Z(Vec<bool>),
    /// `char[]`.
    C(Vec<u16>),
    /// `int[]`.
    I(Vec<i32>),
    /// `long[]`.
    J(Vec<i64>),
    /// `float[]`.
    F(Vec<f32>),
    /// `double[]`.
    D(Vec<f64>),
    /// Reference arrays (classes, strings, nested arrays).
    R(Vec<Option<HeapRef>>),
}

impl ArrData {
    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            ArrData::Z(v) => v.len(),
            ArrData::C(v) => v.len(),
            ArrData::I(v) => v.len(),
            ArrData::J(v) => v.len(),
            ArrData::F(v) => v.len(),
            ArrData::D(v) => v.len(),
            ArrData::R(v) => v.len(),
        }
    }

    /// Whether the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads element `i`.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::IndexOutOfBounds`] when out of range.
    pub fn get(&self, i: usize) -> Result<Value, Trap> {
        if i >= self.len() {
            return Err(Trap::IndexOutOfBounds);
        }
        Ok(match self {
            ArrData::Z(v) => Value::Z(v[i]),
            ArrData::C(v) => Value::C(v[i]),
            ArrData::I(v) => Value::I(v[i]),
            ArrData::J(v) => Value::J(v[i]),
            ArrData::F(v) => Value::F(v[i]),
            ArrData::D(v) => Value::D(v[i]),
            ArrData::R(v) => Value::Ref(v[i]),
        })
    }

    /// Writes element `i`.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::IndexOutOfBounds`] when out of range, or
    /// [`Trap::Internal`] on a kind mismatch (verified code never does).
    pub fn set(&mut self, i: usize, v: Value) -> Result<(), Trap> {
        if i >= self.len() {
            return Err(Trap::IndexOutOfBounds);
        }
        match (self, v) {
            (ArrData::Z(a), Value::Z(x)) => a[i] = x,
            (ArrData::C(a), Value::C(x)) => a[i] = x,
            (ArrData::I(a), Value::I(x)) => a[i] = x,
            (ArrData::J(a), Value::J(x)) => a[i] = x,
            (ArrData::F(a), Value::F(x)) => a[i] = x,
            (ArrData::D(a), Value::D(x)) => a[i] = x,
            (ArrData::R(a), Value::Ref(x)) => a[i] = x,
            _ => return Err(Trap::Internal("array element kind mismatch".into())),
        }
        Ok(())
    }
}

/// One heap object.
#[derive(Debug, Clone, PartialEq)]
pub enum Obj {
    /// A class instance with flattened fields (superclass fields first).
    Instance {
        /// Class index (engine-specific class table).
        class: usize,
        /// Flattened instance fields.
        fields: Vec<Value>,
        /// Message slot of throwables (hidden host field).
        msg: Option<HeapRef>,
    },
    /// An array. `elem_class` distinguishes reference element types for
    /// `instanceof`/checked casts on arrays (unused for primitives).
    Array {
        /// A compact type tag assigned by the engine (opaque to rt).
        type_tag: u64,
        /// Elements.
        data: ArrData,
    },
    /// An immutable string.
    Str(Rc<str>),
}

/// The heap: a growable object store (no GC — the workloads are
/// bounded; a real system would plug a collector in here).
#[derive(Debug, Clone, Default)]
pub struct Heap {
    objects: Vec<Obj>,
}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Allocates an object.
    pub fn alloc(&mut self, obj: Obj) -> HeapRef {
        let r = HeapRef(self.objects.len() as u32);
        self.objects.push(obj);
        r
    }

    /// Allocates a string.
    pub fn alloc_str(&mut self, s: impl Into<Rc<str>>) -> HeapRef {
        self.alloc(Obj::Str(s.into()))
    }

    /// Reads an object.
    ///
    /// # Panics
    ///
    /// Panics on a dangling handle (cannot happen without unsafe code).
    pub fn get(&self, r: HeapRef) -> &Obj {
        &self.objects[r.0 as usize]
    }

    /// Mutable object access.
    ///
    /// # Panics
    ///
    /// Panics on a dangling handle.
    pub fn get_mut(&mut self, r: HeapRef) -> &mut Obj {
        &mut self.objects[r.0 as usize]
    }

    /// Reads a string object's contents.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::Internal`] if the object is not a string.
    pub fn str(&self, r: HeapRef) -> Result<&Rc<str>, Trap> {
        match self.get(r) {
            Obj::Str(s) => Ok(s),
            _ => Err(Trap::Internal("expected string object".into())),
        }
    }

    /// The class of an instance.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::Internal`] if the object is not an instance.
    pub fn instance_class(&self, r: HeapRef) -> Result<usize, Trap> {
        match self.get(r) {
            Obj::Instance { class, .. } => Ok(*class),
            _ => Err(Trap::Internal("expected instance".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_access() {
        let mut h = Heap::new();
        let s = h.alloc_str("hi");
        assert_eq!(&**h.str(s).unwrap(), "hi");
        let a = h.alloc(Obj::Array {
            type_tag: 0,
            data: ArrData::I(vec![0; 3]),
        });
        if let Obj::Array { data, .. } = h.get_mut(a) {
            data.set(1, Value::I(42)).unwrap();
            assert_eq!(data.get(1).unwrap(), Value::I(42));
            assert_eq!(data.get(3), Err(Trap::IndexOutOfBounds));
        } else {
            panic!("not an array");
        }
    }

    #[test]
    fn array_kind_mismatch_is_internal() {
        let mut d = ArrData::I(vec![0]);
        assert!(matches!(d.set(0, Value::Z(true)), Err(Trap::Internal(_))));
    }

    #[test]
    fn instance_fields() {
        let mut h = Heap::new();
        let o = h.alloc(Obj::Instance {
            class: 5,
            fields: vec![Value::I(0), Value::NULL],
            msg: None,
        });
        assert_eq!(h.instance_class(o).unwrap(), 5);
        if let Obj::Instance { fields, .. } = h.get_mut(o) {
            fields[0] = Value::I(9);
        }
        if let Obj::Instance { fields, .. } = h.get(o) {
            assert_eq!(fields[0], Value::I(9));
        }
    }
}
