//! Runtime values.

use crate::heap::HeapRef;

/// A runtime value. References use `Ref(None)` for `null`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// `boolean`.
    Z(bool),
    /// `char`.
    C(u16),
    /// `int`.
    I(i32),
    /// `long`.
    J(i64),
    /// `float`.
    F(f32),
    /// `double`.
    D(f64),
    /// A reference (`None` = `null`).
    Ref(Option<HeapRef>),
}

impl Value {
    /// The canonical `null`.
    pub const NULL: Value = Value::Ref(None);

    /// Extracts an `int`.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an `int` (verified code never does).
    pub fn as_i(self) -> i32 {
        match self {
            Value::I(v) => v,
            other => panic!("expected int, found {other:?}"),
        }
    }

    /// Extracts a `long`.
    ///
    /// # Panics
    ///
    /// Panics on a non-`long`.
    pub fn as_j(self) -> i64 {
        match self {
            Value::J(v) => v,
            other => panic!("expected long, found {other:?}"),
        }
    }

    /// Extracts a `float`.
    ///
    /// # Panics
    ///
    /// Panics on a non-`float`.
    pub fn as_f(self) -> f32 {
        match self {
            Value::F(v) => v,
            other => panic!("expected float, found {other:?}"),
        }
    }

    /// Extracts a `double`.
    ///
    /// # Panics
    ///
    /// Panics on a non-`double`.
    pub fn as_d(self) -> f64 {
        match self {
            Value::D(v) => v,
            other => panic!("expected double, found {other:?}"),
        }
    }

    /// Extracts a `boolean`.
    ///
    /// # Panics
    ///
    /// Panics on a non-`boolean`.
    pub fn as_z(self) -> bool {
        match self {
            Value::Z(v) => v,
            other => panic!("expected boolean, found {other:?}"),
        }
    }

    /// Extracts a `char`.
    ///
    /// # Panics
    ///
    /// Panics on a non-`char`.
    pub fn as_c(self) -> u16 {
        match self {
            Value::C(v) => v,
            other => panic!("expected char, found {other:?}"),
        }
    }

    /// Extracts a reference (possibly null).
    ///
    /// # Panics
    ///
    /// Panics on a non-reference.
    pub fn as_ref(self) -> Option<HeapRef> {
        match self {
            Value::Ref(r) => r,
            other => panic!("expected reference, found {other:?}"),
        }
    }

    /// Bit-level equality (used by differential tests so `NaN == NaN`).
    pub fn bits_eq(self, other: Value) -> bool {
        match (self, other) {
            (Value::F(a), Value::F(b)) => a.to_bits() == b.to_bits(),
            (Value::D(a), Value::D(b)) => a.to_bits() == b.to_bits(),
            (a, b) => a == b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::I(3).as_i(), 3);
        assert_eq!(Value::J(-1).as_j(), -1);
        assert!(Value::Z(true).as_z());
        assert_eq!(Value::C(65).as_c(), 65);
        assert_eq!(Value::NULL.as_ref(), None);
    }

    #[test]
    #[should_panic(expected = "expected int")]
    fn wrong_kind_panics() {
        Value::Z(false).as_i();
    }

    #[test]
    fn nan_bits_eq() {
        assert!(Value::D(f64::NAN).bits_eq(Value::D(f64::NAN)));
        assert!(!Value::D(0.0).bits_eq(Value::D(-0.0)));
        assert!(Value::I(5).bits_eq(Value::I(5)));
    }
}
