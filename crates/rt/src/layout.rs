//! Object layout: flattened instance-field offsets and static storage.
//!
//! Both engines describe their class tables through [`ClassShape`] and
//! get identical layouts, so heap objects are interchangeable between
//! them in tests.

use crate::value::Value;

/// Minimal class description needed for layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassShape {
    /// Superclass index, if any.
    pub superclass: Option<usize>,
    /// Declared instance-field count.
    pub instance_fields: usize,
    /// Declared static-field count.
    pub static_fields: usize,
}

/// Computed layout for a class table.
#[derive(Debug, Clone, Default)]
pub struct Layout {
    /// Field offset base per class (inherited fields come first).
    base: Vec<usize>,
    /// Total instance slots per class.
    total: Vec<usize>,
}

impl Layout {
    /// Computes the layout for `shapes` (indices must be closed under
    /// `superclass`).
    pub fn build(shapes: &[ClassShape]) -> Layout {
        let n = shapes.len();
        let mut base = vec![usize::MAX; n];
        let mut total = vec![usize::MAX; n];
        fn fill(i: usize, shapes: &[ClassShape], base: &mut [usize], total: &mut [usize]) -> usize {
            if total[i] != usize::MAX {
                return total[i];
            }
            let b = match shapes[i].superclass {
                Some(s) => fill(s, shapes, base, total),
                None => 0,
            };
            base[i] = b;
            total[i] = b + shapes[i].instance_fields;
            total[i]
        }
        for i in 0..n {
            fill(i, shapes, &mut base, &mut total);
        }
        Layout { base, total }
    }

    /// The flattened slot of field `field_idx` declared by `class`.
    pub fn field_slot(&self, class: usize, field_idx: usize) -> usize {
        self.base[class] + field_idx
    }

    /// Number of instance slots an instance of `class` needs.
    pub fn instance_size(&self, class: usize) -> usize {
        self.total[class]
    }

    /// Fresh zero/null-initialized field storage for `class`, given a
    /// per-slot default supplier.
    pub fn fresh_fields(&self, class: usize, default: impl Fn(usize) -> Value) -> Vec<Value> {
        (0..self.instance_size(class)).map(default).collect()
    }
}

/// Static-field storage: one vector of values per class.
#[derive(Debug, Clone, Default)]
pub struct Statics {
    slots: Vec<Vec<Value>>,
}

impl Statics {
    /// Creates storage sized by `shapes` with `Value::NULL` defaults
    /// (engines overwrite with typed defaults before running clinit).
    pub fn build(shapes: &[ClassShape]) -> Statics {
        Statics {
            slots: shapes
                .iter()
                .map(|s| vec![Value::NULL; s.static_fields])
                .collect(),
        }
    }

    /// Reads a static field.
    pub fn get(&self, class: usize, field: usize) -> Value {
        self.slots[class][field]
    }

    /// Writes a static field.
    pub fn set(&mut self, class: usize, field: usize, v: Value) {
        self.slots[class][field] = v;
    }

    /// Overwrites the default value of one slot (typed zero).
    pub fn init_default(&mut self, class: usize, field: usize, v: Value) {
        self.slots[class][field] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inherited_fields_come_first() {
        // 0: Object (0 fields), 1: A (2 fields), 2: B extends A (1 field)
        let shapes = vec![
            ClassShape {
                superclass: None,
                instance_fields: 0,
                static_fields: 0,
            },
            ClassShape {
                superclass: Some(0),
                instance_fields: 2,
                static_fields: 1,
            },
            ClassShape {
                superclass: Some(1),
                instance_fields: 1,
                static_fields: 0,
            },
        ];
        let l = Layout::build(&shapes);
        assert_eq!(l.instance_size(0), 0);
        assert_eq!(l.instance_size(1), 2);
        assert_eq!(l.instance_size(2), 3);
        assert_eq!(l.field_slot(1, 0), 0);
        assert_eq!(l.field_slot(1, 1), 1);
        assert_eq!(l.field_slot(2, 0), 2);
    }

    #[test]
    fn forward_superclass_reference() {
        // 0: B extends A(1), 1: A (declared after its subclass).
        let shapes = vec![
            ClassShape {
                superclass: Some(1),
                instance_fields: 1,
                static_fields: 0,
            },
            ClassShape {
                superclass: None,
                instance_fields: 2,
                static_fields: 0,
            },
        ];
        let l = Layout::build(&shapes);
        assert_eq!(l.instance_size(0), 3);
        assert_eq!(l.field_slot(0, 0), 2);
    }

    #[test]
    fn statics_storage() {
        let shapes = vec![ClassShape {
            superclass: None,
            instance_fields: 0,
            static_fields: 2,
        }];
        let mut s = Statics::build(&shapes);
        s.init_default(0, 0, Value::I(0));
        s.set(0, 1, Value::I(7));
        assert_eq!(s.get(0, 0), Value::I(0));
        assert_eq!(s.get(0, 1), Value::I(7));
    }
}
